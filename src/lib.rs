//! `vardelay` — a behavioral Rust reproduction of *"Variable Delay of
//! Multi-Gigahertz Digital Signals for Deskew and Jitter-Injection Test
//! Applications"* (Keezer, Minier, Ducharme — DATE 2008).
//!
//! The paper builds a picosecond-resolution variable delay circuit for
//! wide-bandwidth data signals: four cascaded variable-gain buffers whose
//! amplitude-dependent propagation delay gives a continuously adjustable
//! ~50 ps, plus a passive 4-tap coarse section with 33 ps steps, for a
//! ~140 ps total range — used to deskew 6.4 Gb/s ATE channels to <5 ps and
//! to inject controlled jitter for receiver tolerance tests.
//!
//! This crate re-exports the whole workspace:
//!
//! * [`units`] — typed time/voltage/frequency quantities.
//! * [`siggen`] — PRBS patterns, edge streams, jitter models.
//! * [`waveform`] — the sampled analog waveform engine.
//! * [`analog`] — behavioral buffer/line/mux blocks and chain
//!   characterization.
//! * [`measure`] — eyes, TIE, TJ, dual-Dirac, bathtubs, linearity.
//! * [`core`] — **the paper's circuit**: fine line, coarse taps, combined
//!   circuit, DAC, calibration, jitter injector.
//! * [`ate`] — tester channels, parallel buses, a DUT receiver and the
//!   closed-loop deskew application.
//! * [`backend`] — pluggable delay backends: the `DelayBackend` trait,
//!   the byte-identical circuit reference, and the Vernier / DLL
//!   behavioral models (DESIGN.md §17).
//!
//! # Quickstart
//!
//! Program a calibrated delay and verify it is realized:
//!
//! ```
//! use vardelay::core::{CombinedDelayCircuit, ModelConfig};
//! use vardelay::units::Time;
//!
//! let mut circuit = CombinedDelayCircuit::new(&ModelConfig::paper_prototype(), 1);
//! circuit.calibrate();
//! let setting = circuit.set_delay(Time::from_ps(75.0))?;
//! assert!(setting.predicted_error.abs() < Time::from_ps(1.0));
//! # Ok::<(), vardelay::core::SetDelayError>(())
//! ```
//!
//! See the `examples/` directory for runnable scenarios (bus deskew,
//! jitter injection, the frequency sweep of Fig. 15, ASCII eye diagrams)
//! and `DESIGN.md` / `EXPERIMENTS.md` for the experiment index.

pub use vardelay_analog as analog;
pub use vardelay_ate as ate;
pub use vardelay_backend as backend;
pub use vardelay_core as core;
pub use vardelay_measure as measure;
pub use vardelay_siggen as siggen;
pub use vardelay_units as units;
pub use vardelay_waveform as waveform;
