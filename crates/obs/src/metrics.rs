//! Counters, streaming histograms, span timers and the global registry.
//!
//! Everything here is designed for hot paths inside the parallel runner
//! and the characterization cache: recording is atomics-only (no locks,
//! no allocation), and the registry lock is taken only on the *first*
//! use of each metric name (entries are leaked to `&'static`, so repeat
//! lookups can be cached by the caller or resolved through one short
//! map probe).
//!
//! Instrumentation is observational by contract: it must never perturb
//! experiment results. The [`enabled`] gate (default on, `VARDELAY_OBS=0`
//! or [`set_enabled`]`(false)` to disable) exists so the determinism
//! tests can assert byte-identical CSVs with spans/counters on and off.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Enable gate
// ---------------------------------------------------------------------------

/// 0 = undecided (read env on first query), 1 = on, 2 = off.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether instrumentation records anything. Defaults to **on**;
/// `VARDELAY_OBS=0` (or `off`/`false`) in the environment disables it,
/// and [`set_enabled`] overrides either way at runtime.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = !matches!(
                std::env::var("VARDELAY_OBS").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            );
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Forces instrumentation on or off, overriding the environment. Meant
/// for tests (the determinism suite flips it both ways) and for callers
/// that must guarantee a quiet registry.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A named monotonic counter (wrapping add; `u64` will not wrap in any
/// realistic run).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter (registry use; prefer [`counter`]).
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds 1 (no-op while [`enabled`] is off).
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n` (no-op while [`enabled`] is off).
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (tests and between-run resets).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`; bucket 0 holds `0`.
const BUCKETS: usize = 65;

/// A streaming log₂-bucketed histogram of non-negative integers
/// (microseconds by convention — suffix metric names with `_us`).
///
/// Recording is a handful of relaxed atomic ops; quantiles are
/// approximate (bucket upper bound, i.e. within 2× of the true value),
/// which is the right fidelity for spotting scheduling imbalance and
/// cache-miss cost without a lock or a sorted reservoir.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A point-in-time digest of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Mean sample (0.0 when empty).
    pub mean: f64,
    /// Approximate median (bucket upper bound).
    pub p50: u64,
    /// Approximate 99th percentile (bucket upper bound).
    pub p99: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (registry use; prefer [`histogram`]).
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Upper bound of bucket `i` (inclusive), used for quantile reads.
    fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample (no-op while [`enabled`] is off).
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// first bucket whose cumulative count reaches `q · count`. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// A point-in-time digest (not atomic across fields — counters may
    /// advance between reads; fine for reporting).
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let sum = self.sum();
        HistogramSummary {
            count,
            sum,
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
        }
    }

    /// Empties the histogram (tests and between-run resets).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The process-wide metric registry: name → leaked `&'static` metric.
///
/// Names are dot-separated, lowercase, with a `_us` suffix for
/// microsecond histograms (`runner.batch_us`, `analog.cache_hits`). The
/// set of distinct names is small and fixed, so leaking each metric once
/// is bounded and makes the hot path borrow-free.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, digest)` for every histogram, name-sorted.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl Registry {
    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut map = self.counters.lock().expect("obs counter registry lock");
        if let Some(c) = map.get(name) {
            return c;
        }
        let leaked: &'static Counter = Box::leak(Box::new(Counter::new()));
        map.insert(name.to_owned(), leaked);
        leaked
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut map = self.histograms.lock().expect("obs histogram registry lock");
        if let Some(h) = map.get(name) {
            return h;
        }
        let leaked: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        map.insert(name.to_owned(), leaked);
        leaked
    }

    /// Copies every metric's current value.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .expect("obs counter registry lock")
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("obs histogram registry lock")
                .iter()
                .map(|(n, h)| (n.clone(), h.summary()))
                .collect(),
        }
    }

    /// Zeroes every registered metric (tests).
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .expect("obs counter registry lock")
            .values()
        {
            c.reset();
        }
        for h in self
            .histograms
            .lock()
            .expect("obs histogram registry lock")
            .values()
        {
            h.reset();
        }
    }
}

/// The global [`Registry`].
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Shorthand for [`registry()`]`.counter(name)`.
pub fn counter(name: &str) -> &'static Counter {
    registry().counter(name)
}

/// Shorthand for [`registry()`]`.histogram(name)`.
pub fn histogram(name: &str) -> &'static Histogram {
    registry().histogram(name)
}

/// Shorthand for [`registry()`]`.snapshot()`.
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// A microsecond span timer: created by [`span`], records its elapsed
/// time into the named histogram when dropped. While [`enabled`] is off
/// the span is inert (no clock read, nothing recorded).
#[derive(Debug)]
pub struct Span {
    target: Option<(&'static Histogram, Instant)>,
}

impl Span {
    /// Microseconds since the span started (0 when instrumentation is
    /// off).
    pub fn elapsed_us(&self) -> u64 {
        self.target
            .as_ref()
            .map_or(0, |(_, start)| start.elapsed().as_micros() as u64)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((histo, start)) = self.target.take() {
            histo.record(start.elapsed().as_micros() as u64);
        }
    }
}

/// Starts a span that records its duration (µs) into `histogram(name)`
/// on drop.
pub fn span(name: &str) -> Span {
    Span {
        target: enabled().then(|| (histogram(name), Instant::now())),
    }
}

impl fmt::Display for Snapshot {
    /// Human-readable block, one metric per line (used by `repro`'s
    /// `--metrics` style output).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.counters {
            writeln!(f, "{name} = {value}")?;
        }
        for (name, s) in &self.histograms {
            writeln!(
                f,
                "{name}: n={} mean={:.1} min={} p50~{} p99~{} max={}",
                s.count, s.mean, s.min, s.p50, s.p99, s.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `set_enabled` is process-global, so tests that flip it (or that
    /// assert on recorded values) must not interleave.
    static GATE: Mutex<()> = Mutex::new(());

    fn gate() -> std::sync::MutexGuard<'static, ()> {
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn counters_register_and_count() {
        let _g = gate();
        set_enabled(true);
        let c = counter("test.metrics.counter_a");
        let before = c.get();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        // Same name resolves to the same counter.
        assert_eq!(counter("test.metrics.counter_a").get(), before + 5);
    }

    #[test]
    fn disabled_gate_mutes_recording() {
        let _g = gate();
        set_enabled(true);
        let c = counter("test.metrics.gated");
        let h = histogram("test.metrics.gated_us");
        set_enabled(false);
        c.incr();
        h.record(100);
        set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.incr();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let _g = gate();
        set_enabled(true);
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 7);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.sum, 1_001_106);
        // p50 lands in the bucket holding the 4th sample (value 3).
        assert!(s.p50 >= 3 && s.p50 < 8, "p50 {}", s.p50);
        // p99 is the max-most bucket, clamped to the observed max.
        assert_eq!(s.p99, 1_000_000);
    }

    #[test]
    fn histogram_empty_is_zeroed() {
        let s = Histogram::new().summary();
        assert_eq!(
            s,
            HistogramSummary {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                p50: 0,
                p99: 0
            }
        );
    }

    #[test]
    fn span_records_on_drop() {
        let _g = gate();
        set_enabled(true);
        let h = histogram("test.metrics.span_us");
        let before = h.count();
        {
            let _s = span("test.metrics.span_us");
        }
        assert_eq!(h.count(), before + 1);
    }

    #[test]
    fn snapshot_lists_registered_metrics() {
        let _g = gate();
        set_enabled(true);
        counter("test.metrics.snap").incr();
        histogram("test.metrics.snap_us").record(5);
        let snap = snapshot();
        assert!(snap.counters.iter().any(|(n, _)| n == "test.metrics.snap"));
        assert!(snap
            .histograms
            .iter()
            .any(|(n, _)| n == "test.metrics.snap_us"));
        let text = snap.to_string();
        assert!(text.contains("test.metrics.snap"));
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }
}
