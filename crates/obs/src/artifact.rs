//! Crash-safe artifact writes (DESIGN.md §11, §16).
//!
//! A process killed mid-`fs::write` leaves a half-written file that is
//! indistinguishable from a complete one — the worst possible failure
//! for outputs that are byte-compared across runs (repro CSVs) or
//! reloaded as ground truth after a restart (serve calibration
//! snapshots). Every such artifact therefore goes through
//! [`write_atomic`]: the bytes land in a sibling `<file>.tmp` first,
//! are fsynced, and are published with a single `rename`, which POSIX
//! guarantees is atomic within a filesystem. A crash leaves either the
//! old complete file, the new complete file, or a stale `.tmp` that the
//! next run sweeps away ([`sweep_stale_tmp`]) — never a torn artifact
//! under the real name.
//!
//! [`digest`] is the FNV-1a content hash checkpoints and snapshots use
//! to prove a file on disk is exactly the one that was written. It is
//! byte-for-byte the same function `vardelay_analog::Fingerprint`
//! computes for a single `push_str` (length-prefixed fold), so digests
//! recorded by older checkpoints stay valid — but it lives here, at the
//! bottom of the crate graph, so `vardelay-serve` can use it without
//! dragging in the analog stack.
//!
//! These helpers lived in `vardelay-bench::artifact` through PR 8; they
//! moved here (re-exported from bench, so call sites are unchanged)
//! once the serving layer's durability subsystem needed them too.

use std::io;
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit offset basis (the hash family used across the
/// workspace for cache keys, checkpoints, and snapshot digests).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The sibling temporary path [`write_atomic`] stages into
/// (`fig07.csv` → `fig07.csv.tmp`).
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_owned());
    name.push_str(".tmp");
    path.with_file_name(name)
}

/// Writes `contents` to `path` atomically: stage into [`tmp_path`],
/// fsync the staged bytes, then `rename` over the destination. Readers
/// never observe a torn file, and a rename that was observed implies
/// the bytes behind it are durable.
///
/// # Errors
///
/// The underlying I/O error from the staging write, the fsync, or the
/// rename (the staged `.tmp` is cleaned up on a failed rename).
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = tmp_path(path);
    std::fs::write(&tmp, contents)?;
    // Durability ordering (DESIGN.md §16): the data must be on disk
    // *before* the rename publishes it, or a power cut after the rename
    // could expose a complete-looking file with garbage bytes.
    match std::fs::File::open(&tmp).and_then(|f| f.sync_all()) {
        Ok(()) => {}
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
    }
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// FNV-1a digest of an artifact's contents — the proof that a file on
/// disk is byte-identical to the one recorded. Identical to folding the
/// same string through `vardelay_analog::Fingerprint::push_str` (the
/// length is folded first, then the raw bytes), so checkpoint digests
/// written before this function moved crates still verify.
pub fn digest(contents: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in (contents.len() as u64).to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    for &b in contents.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Removes every `*.tmp` file under `dir` (recursively), returning how
/// many were swept. A `.tmp` can only exist if a previous run died
/// between staging and renaming — it is garbage by construction, and the
/// acceptance bar is that an interrupted campaign never leaves one
/// behind after the next run. Counted in `repro.stale_tmp_swept`.
///
/// # Errors
///
/// The underlying I/O error from walking `dir` (a missing `dir` is not
/// an error — there is nothing to sweep).
pub fn sweep_stale_tmp(dir: &Path) -> io::Result<usize> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut swept = 0;
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            swept += sweep_stale_tmp(&path)?;
        } else if path.extension().is_some_and(|e| e == "tmp") {
            std::fs::remove_file(&path)?;
            crate::counter("repro.stale_tmp_swept").incr();
            swept += 1;
        }
    }
    Ok(swept)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!(
            "vardelay_obs_artifact_{name}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_publishes_and_leaves_no_tmp() {
        let dir = scratch("atomic");
        let path = dir.join("out.csv");
        write_atomic(&path, "a,b\n1,2\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        assert!(!tmp_path(&path).exists(), "staging file renamed away");
        // Overwrite goes through the same protocol.
        write_atomic(&path, "a,b\n3,4\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n3,4\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_removes_only_tmp_files_recursively() {
        let dir = scratch("sweep");
        std::fs::create_dir_all(dir.join("checkpoints")).unwrap();
        std::fs::write(dir.join("keep.csv"), "data").unwrap();
        std::fs::write(dir.join("dead.csv.tmp"), "torn").unwrap();
        std::fs::write(dir.join("checkpoints/ck.json.tmp"), "torn").unwrap();
        assert_eq!(sweep_stale_tmp(&dir).unwrap(), 2);
        assert!(dir.join("keep.csv").exists());
        assert!(!dir.join("dead.csv.tmp").exists());
        assert!(!dir.join("checkpoints/ck.json.tmp").exists());
        // Missing directory sweeps nothing.
        assert_eq!(sweep_stale_tmp(&dir.join("absent")).unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn digest_is_content_stable_and_sensitive() {
        assert_eq!(digest("x,y\n1,2\n"), digest("x,y\n1,2\n"));
        assert_ne!(digest("x,y\n1,2\n"), digest("x,y\n1,3\n"));
        // Length-prefixed: a string is not confused with its prefix
        // continued by other content of the same total bytes.
        assert_ne!(digest(""), digest("\0"));
    }

    #[test]
    fn digest_matches_the_historical_fingerprint_fold() {
        // Hand-folded FNV-1a of push_usize(len) ++ bytes for "abc":
        // checkpoints written by PR 4 used vardelay_analog::Fingerprint,
        // and must still verify against this implementation.
        let mut h = FNV_OFFSET;
        for b in 3u64.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        for b in b"abc" {
            h = (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME);
        }
        assert_eq!(digest("abc"), h);
    }
}
