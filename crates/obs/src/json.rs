//! A hand-rolled JSON value, renderer and parser.
//!
//! The workspace is dependency-free (no `serde`); this module is the one
//! place JSON is produced or consumed. It covers the full JSON grammar
//! (objects, arrays, strings with escapes, numbers, booleans, null) with
//! two deliberate simplifications that match the benchmark-journal use:
//! numbers are `f64` (every value we store is well inside the 2⁵³
//! integer-exact range), and object keys keep insertion order (so a
//! rendered record round-trips byte-stable).

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (integers exact up to 2⁵³).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered `(key, value)` pairs.
    Obj(Vec<(String, Value)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.reason
        )
    }
}

impl std::error::Error for ParseError {}

impl Value {
    /// An empty object (builder entry point).
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Appends `key: value` to an object (panics on non-objects —
    /// builder misuse, not data-dependent).
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> Value {
        match &mut self {
            Value::Obj(pairs) => pairs.push((key.to_owned(), value.into())),
            other => panic!("Value::with on non-object {other:?}"),
        }
        self
    }

    /// Member lookup (`None` on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact single-line JSON (the JSONL journal format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    // Integers render without a trailing ".0" so counters
                    // look like counters.
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (rejecting trailing non-whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with the byte offset of the first
    /// violation.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            reason: reason.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(&format!("invalid number {text:?}")))
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates render as the replacement char —
                            // the journal never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).expect("input was a &str");
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_renders_compact() {
        let v = Value::obj()
            .with("name", "fig9")
            .with("threads", 4u64)
            .with("wall_s", 1.25)
            .with("ok", true)
            .with("nested", Value::obj().with("a", 1u64));
        assert_eq!(
            v.render(),
            r#"{"name":"fig9","threads":4,"wall_s":1.25,"ok":true,"nested":{"a":1}}"#
        );
    }

    #[test]
    fn round_trips() {
        let src = r#"{"a":[1,2.5,-3,"x\n\"y\"",null,true,false],"b":{"c":[]}}"#;
        let v = Value::parse(src).unwrap();
        assert_eq!(Value::parse(&v.render()).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 7);
    }

    #[test]
    fn parses_pretty_whitespace_and_escapes() {
        let src =
            "{\n  \"experiments\": \"all\",\n  \"wall_s\": 6.5,\n  \"unicode\": \"\\u00e9\"\n}\n";
        let v = Value::parse(src).unwrap();
        assert_eq!(v.get("experiments").unwrap().as_str(), Some("all"));
        assert_eq!(v.get("wall_s").unwrap().as_f64(), Some(6.5));
        assert_eq!(v.get("unicode").unwrap().as_str(), Some("é"));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::Num(20.0).render(), "20");
        assert_eq!(Value::Num(0.125).render(), "0.125");
        assert_eq!(Value::Num(-7.0).render(), "-7");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Value::Num(3.0).as_u64(), Some(3));
        assert_eq!(Value::Num(3.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("{\"a\":}").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{} trailing").is_err());
        assert!(Value::parse("\"unterminated").is_err());
    }

    #[test]
    fn exponent_numbers_parse() {
        assert_eq!(Value::parse("1.5e3").unwrap().as_f64(), Some(1500.0));
        assert_eq!(Value::parse("-2E-2").unwrap().as_f64(), Some(-0.02));
    }
}
