//! The append-only benchmark journal and its regression gate.
//!
//! `BENCH_repro.json` is a JSONL file: **one JSON object per line, one
//! line per `repro` run**, appended — never overwritten — so the
//! repository's performance trajectory is a real time series. A
//! `fig9`-only run can no longer clobber the record of a full `all` run;
//! it just adds a line keyed by its own `experiments` field.
//!
//! Record schema (`schema: 1`), all fields flat except
//! `per_experiment_s`:
//!
//! ```json
//! {"schema":1,"experiments":"all","threads":4,"git":"d813bb2",
//!  "unix_ms":1754550000000,"wall_s":6.5,"csv_files":12,
//!  "csv_points":1934,"points_per_s":297.5,"cache_hits":20,
//!  "cache_misses":7,"single_flight_waits":0,
//!  "per_experiment_s":{"fig7":0.9}}
//! ```
//!
//! [`load`] also accepts the legacy format (one pretty-printed object
//! spanning the whole file) so a pre-journal `BENCH_repro.json` reads as
//! a one-record journal.
//!
//! The gate: [`compare_latest`] takes the latest two records of the same
//! experiment set (same thread count — wall clock across different
//! widths is not comparable) and flags a regression when the newer wall
//! clock exceeds the older by more than the threshold. `repro compare`
//! wires this to CI.

use std::fmt;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::Path;

use crate::json::Value;

/// Version stamped into every record's `schema` field.
pub const SCHEMA_VERSION: u64 = 1;

/// Default regression-gate threshold: newer wall clock more than 10 %
/// above the older one fails.
pub const DEFAULT_THRESHOLD: f64 = 0.10;

/// Appends one record as a single JSONL line, creating the file if
/// missing. The write is a single `write_all` of `line + "\n"` through
/// `O_APPEND`, so concurrent appenders interleave whole lines.
///
/// A legacy pre-journal file (one pretty-printed object spanning the
/// whole file) is first migrated in place to a one-line JSONL record, so
/// appending to it never produces an unparseable hybrid.
///
/// # Errors
///
/// Returns the underlying I/O error (callers report and continue; a
/// benchmark run must not die on a read-only checkout).
pub fn append(path: &Path, record: &Value) -> io::Result<()> {
    migrate_legacy(path)?;
    let mut line = record.render();
    line.push('\n');
    OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?
        .write_all(line.as_bytes())
}

/// Rewrites a legacy whole-file JSON object as one compact JSONL line.
/// JSONL files (first line parses on its own), missing files and
/// unparseable files are left untouched.
fn migrate_legacy(path: &Path) -> io::Result<()> {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    if content.trim().is_empty() {
        return Ok(());
    }
    let first_line_is_record = content
        .lines()
        .next()
        .is_some_and(|l| Value::parse(l).is_ok());
    if first_line_is_record {
        return Ok(());
    }
    if let Ok(legacy) = Value::parse(&content) {
        std::fs::write(path, legacy.render() + "\n")?;
    }
    Ok(())
}

/// A journal that could not be read or parsed.
#[derive(Debug)]
pub enum JournalError {
    /// The file could not be read (missing file is **not** an error —
    /// [`load`] returns an empty journal).
    Io(io::Error),
    /// A line (1-based; 0 for whole-file legacy parse) failed to parse.
    Parse {
        /// 1-based line number, 0 when the whole file failed as one
        /// document.
        line: usize,
        /// The parser's diagnosis.
        error: crate::json::ParseError,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Parse { line, error } => {
                write!(f, "journal line {line}: {error}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Loads every record in the journal, oldest first. A missing file is an
/// empty journal. A file that parses as one JSON document (the legacy
/// pre-journal format, or a one-line journal) yields one record.
///
/// # Errors
///
/// [`JournalError::Io`] on unreadable files, [`JournalError::Parse`]
/// with the offending line number on malformed records.
pub fn load(path: &Path) -> Result<Vec<Value>, JournalError> {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    if content.trim().is_empty() {
        return Ok(Vec::new());
    }
    // Legacy tolerance: the whole file as one document (also covers a
    // one-line journal — identical result either way).
    if let Ok(single) = Value::parse(&content) {
        return Ok(vec![single]);
    }
    content
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| Value::parse(l).map_err(|error| JournalError::Parse { line: i + 1, error }))
        .collect()
}

/// The latest-two-records wall-clock comparison `repro compare` prints
/// and gates on.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// `experiments` key both records share.
    pub experiments: String,
    /// Thread count both records share.
    pub threads: u64,
    /// Wall clock of the older record (seconds).
    pub older_wall_s: f64,
    /// Wall clock of the newer record (seconds).
    pub newer_wall_s: f64,
    /// `newer / older` (∞ when the older wall clock is 0).
    pub ratio: f64,
    /// The gate threshold the comparison was made against.
    pub threshold: f64,
    /// Whether the newer run exceeds the older by more than `threshold`.
    pub regressed: bool,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3} s -> {:.3} s ({:+.1} % on {} thread(s); gate \u{00b1}{:.0} %): {}",
            self.experiments,
            self.older_wall_s,
            self.newer_wall_s,
            (self.ratio - 1.0) * 100.0,
            self.threads,
            self.threshold * 100.0,
            if self.regressed { "REGRESSED" } else { "ok" }
        )
    }
}

/// Why two comparable records could not be found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompareError {
    /// Fewer than two records match the experiment set.
    TooFewRecords {
        /// Matching records found.
        found: usize,
        /// The experiment set looked for.
        experiments: String,
    },
    /// The latest two matching records ran at different thread counts, so
    /// their wall clocks are not comparable.
    ThreadMismatch {
        /// Older record's thread count.
        older: u64,
        /// Newer record's thread count.
        newer: u64,
    },
    /// A matching record is missing a required numeric field.
    MissingField(&'static str),
}

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompareError::TooFewRecords { found, experiments } => write!(
                f,
                "need two {experiments:?} journal records to compare, found {found} \
                 (run `repro {experiments}` twice)"
            ),
            CompareError::ThreadMismatch { older, newer } => write!(
                f,
                "latest runs used different thread counts ({older} vs {newer}); \
                 wall clocks are not comparable"
            ),
            CompareError::MissingField(field) => {
                write!(f, "journal record is missing numeric field {field:?}")
            }
        }
    }
}

impl std::error::Error for CompareError {}

/// Compares the latest two records whose `experiments` field equals
/// `experiments`, flagging a regression when the newer wall clock
/// exceeds the older by more than `threshold` (fractional, e.g. `0.10`).
///
/// # Errors
///
/// See [`CompareError`] — fewer than two matching records, a thread-count
/// mismatch between them, or records without `wall_s`/`threads`.
pub fn compare_latest(
    records: &[Value],
    experiments: &str,
    threshold: f64,
) -> Result<Comparison, CompareError> {
    let matching: Vec<&Value> = records
        .iter()
        .filter(|r| r.get("experiments").and_then(Value::as_str) == Some(experiments))
        .collect();
    let [.., older, newer] = matching.as_slice() else {
        return Err(CompareError::TooFewRecords {
            found: matching.len(),
            experiments: experiments.to_owned(),
        });
    };
    let threads = |r: &Value| {
        r.get("threads")
            .and_then(Value::as_u64)
            .ok_or(CompareError::MissingField("threads"))
    };
    let wall = |r: &Value| {
        r.get("wall_s")
            .and_then(Value::as_f64)
            .ok_or(CompareError::MissingField("wall_s"))
    };
    let (older_threads, newer_threads) = (threads(older)?, threads(newer)?);
    if older_threads != newer_threads {
        return Err(CompareError::ThreadMismatch {
            older: older_threads,
            newer: newer_threads,
        });
    }
    let (older_wall_s, newer_wall_s) = (wall(older)?, wall(newer)?);
    let ratio = if older_wall_s > 0.0 {
        newer_wall_s / older_wall_s
    } else if newer_wall_s > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    Ok(Comparison {
        experiments: experiments.to_owned(),
        threads: newer_threads,
        older_wall_s,
        newer_wall_s,
        ratio,
        threshold,
        regressed: ratio > 1.0 + threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(experiments: &str, threads: u64, wall_s: f64) -> Value {
        Value::obj()
            .with("schema", SCHEMA_VERSION)
            .with("experiments", experiments)
            .with("threads", threads)
            .with("wall_s", wall_s)
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "vardelay_obs_journal_{name}_{}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn append_accumulates_lines() {
        let path = temp_path("append");
        let _ = std::fs::remove_file(&path);
        append(&path, &record("all", 1, 6.5)).unwrap();
        append(&path, &record("fig9", 1, 0.01)).unwrap();
        append(&path, &record("all", 1, 6.4)).unwrap();
        let records = load(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(
            records[1].get("experiments").unwrap().as_str(),
            Some("fig9")
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_empty_journal() {
        assert!(load(Path::new("/nonexistent/vardelay.jsonl"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn legacy_single_object_loads_as_one_record() {
        let path = temp_path("legacy");
        std::fs::write(
            &path,
            "{\n  \"experiments\": \"fig9\",\n  \"threads\": 1,\n  \"wall_s\": 0.011\n}\n",
        )
        .unwrap();
        let records = load(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].get("wall_s").unwrap().as_f64(), Some(0.011));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appending_to_a_legacy_file_migrates_it() {
        let path = temp_path("migrate");
        std::fs::write(
            &path,
            "{\n  \"experiments\": \"all\",\n  \"threads\": 1,\n  \"wall_s\": 6.5\n}\n",
        )
        .unwrap();
        append(&path, &record("fig9", 1, 0.01)).unwrap();
        let records = load(&path).unwrap();
        assert_eq!(records.len(), 2, "legacy record + appended record");
        assert_eq!(records[0].get("experiments").unwrap().as_str(), Some("all"));
        assert_eq!(records[0].get("wall_s").unwrap().as_f64(), Some(6.5));
        assert_eq!(
            records[1].get("experiments").unwrap().as_str(),
            Some("fig9")
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_line_reports_its_number() {
        let path = temp_path("malformed");
        std::fs::write(&path, "{\"experiments\":\"all\"}\nnot json\n").unwrap();
        match load(&path) {
            Err(JournalError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compare_picks_latest_two_matching() {
        let records = vec![
            record("all", 1, 10.0),
            record("fig9", 1, 0.01), // interleaved single-figure run: ignored
            record("all", 1, 6.0),
            record("all", 1, 6.3),
        ];
        let c = compare_latest(&records, "all", DEFAULT_THRESHOLD).unwrap();
        assert_eq!(c.older_wall_s, 6.0);
        assert_eq!(c.newer_wall_s, 6.3);
        assert!(!c.regressed, "{c}");
    }

    #[test]
    fn compare_flags_regression_over_threshold() {
        let records = vec![record("all", 1, 6.0), record("all", 1, 6.61)];
        let c = compare_latest(&records, "all", 0.10).unwrap();
        assert!(c.regressed, "{c}");
        // And just inside the gate passes.
        let records = vec![record("all", 1, 6.0), record("all", 1, 6.59)];
        assert!(!compare_latest(&records, "all", 0.10).unwrap().regressed);
    }

    #[test]
    fn compare_requires_two_records_and_equal_threads() {
        assert_eq!(
            compare_latest(&[record("all", 1, 6.0)], "all", 0.1),
            Err(CompareError::TooFewRecords {
                found: 1,
                experiments: "all".to_owned()
            })
        );
        assert_eq!(
            compare_latest(&[record("all", 1, 6.0), record("all", 4, 2.0)], "all", 0.1),
            Err(CompareError::ThreadMismatch { older: 1, newer: 4 })
        );
    }
}
