//! The append-only benchmark journal and its regression gate.
//!
//! `BENCH_repro.json` is a JSONL file: **one JSON object per line, one
//! line per `repro` run**, appended — never overwritten — so the
//! repository's performance trajectory is a real time series. A
//! `fig9`-only run can no longer clobber the record of a full `all` run;
//! it just adds a line keyed by its own `experiments` field.
//!
//! Record schema (`schema: 1`), all fields flat except
//! `per_experiment_s`:
//!
//! ```json
//! {"schema":1,"experiments":"all","threads":4,"git":"d813bb2",
//!  "unix_ms":1754550000000,"wall_s":6.5,"csv_files":12,
//!  "csv_points":1934,"points_per_s":297.5,"cache_hits":20,
//!  "cache_misses":7,"single_flight_waits":0,
//!  "per_experiment_s":{"fig7":0.9}}
//! ```
//!
//! [`load`] also accepts the legacy format (one pretty-printed object
//! spanning the whole file) so a pre-journal `BENCH_repro.json` reads as
//! a one-record journal.
//!
//! The gate: [`compare_latest`] takes the latest two records of the same
//! experiment set (same thread count — wall clock across different
//! widths is not comparable) and flags a regression when the newer wall
//! clock exceeds the older by more than the threshold. `repro compare`
//! wires this to CI.

use std::fmt;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::json::Value;

/// Version stamped into every record's `schema` field.
pub const SCHEMA_VERSION: u64 = 1;

/// Default regression-gate threshold: newer wall clock more than 10 %
/// above the older one fails.
pub const DEFAULT_THRESHOLD: f64 = 0.10;

/// How long [`JournalLock::acquire`] spins before giving up.
const LOCK_TIMEOUT: Duration = Duration::from_secs(2);

/// A lock file whose holder cannot be proven alive after this age is
/// considered abandoned (fallback for lock files without a readable pid,
/// e.g. written by a foreign tool).
const LOCK_STALE_AGE: Duration = Duration::from_secs(30);

/// An advisory inter-process lock guarding journal mutations.
///
/// The lock is a sibling `<journal>.lock` file created with
/// `O_CREAT | O_EXCL` and holding the owner's pid; it is removed on
/// [`Drop`]. Two concurrent `repro` processes therefore serialize their
/// appends (and the legacy-migration / torn-tail-repair rewrites, which
/// are *not* atomic on their own). A lock whose recorded pid is no
/// longer alive — the holder crashed between create and remove — is
/// broken automatically, so a killed campaign never wedges the journal.
#[derive(Debug)]
pub struct JournalLock {
    lock_path: PathBuf,
}

impl JournalLock {
    /// Acquires the advisory lock for `journal`, spinning (5 ms steps)
    /// up to [`LOCK_TIMEOUT`] and breaking stale locks left by dead
    /// holders.
    ///
    /// # Errors
    ///
    /// `TimedOut` when a live holder keeps the lock past the timeout, or
    /// the underlying I/O error from creating the lock file.
    pub fn acquire(journal: &Path) -> io::Result<JournalLock> {
        let lock_path = lock_path_for(journal);
        let deadline = Instant::now() + LOCK_TIMEOUT;
        loop {
            match OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&lock_path)
            {
                Ok(mut file) => {
                    // Best-effort pid tag: staleness detection reads it.
                    let _ = write!(file, "{}", std::process::id());
                    return Ok(JournalLock { lock_path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if lock_is_stale(&lock_path) {
                        crate::metrics::counter("journal.stale_locks_broken").incr();
                        let _ = std::fs::remove_file(&lock_path);
                        continue;
                    }
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!(
                                "journal lock {} held past {:?} by a live process",
                                lock_path.display(),
                                LOCK_TIMEOUT
                            ),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for JournalLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.lock_path);
    }
}

/// The sibling lock-file path for a journal (`BENCH_repro.json` →
/// `BENCH_repro.json.lock`).
pub fn lock_path_for(journal: &Path) -> PathBuf {
    let mut name = journal
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "journal".to_owned());
    name.push_str(".lock");
    journal.with_file_name(name)
}

/// Whether a lock file was abandoned by a dead holder: its recorded pid
/// no longer exists (checked via `/proc` where available), or — when no
/// pid can be read — the file is older than [`LOCK_STALE_AGE`].
fn lock_is_stale(lock_path: &Path) -> bool {
    if let Some(pid) = std::fs::read_to_string(lock_path)
        .ok()
        .and_then(|s| s.trim().parse::<u32>().ok())
    {
        if cfg!(target_os = "linux") {
            return !Path::new(&format!("/proc/{pid}")).exists();
        }
    }
    std::fs::metadata(lock_path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|mtime| mtime.elapsed().ok())
        .is_some_and(|age| age > LOCK_STALE_AGE)
}

/// Appends one record as a single JSONL line, creating the file if
/// missing. The write is a single `write_all` of `line + "\n"` through
/// `O_APPEND`, so concurrent appenders interleave whole lines; on top of
/// that the whole operation holds the [`JournalLock`], because the two
/// in-place repairs below are read-modify-write:
///
/// * a legacy pre-journal file (one pretty-printed object spanning the
///   whole file) is migrated to a one-line JSONL record, so appending to
///   it never produces an unparseable hybrid;
/// * a **torn final line** — a crash mid-append leaves a prefix with no
///   trailing newline — is truncated away (counted in the
///   `journal.torn_lines` counter) so the new record starts on its own
///   line instead of concatenating onto the wreckage.
///
/// # Errors
///
/// Returns the underlying I/O error (callers report and continue; a
/// benchmark run must not die on a read-only checkout).
pub fn append(path: &Path, record: &Value) -> io::Result<()> {
    let _lock = JournalLock::acquire(path)?;
    migrate_legacy(path)?;
    repair_torn_tail(path)?;
    let mut line = record.render();
    line.push('\n');
    OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?
        .write_all(line.as_bytes())
}

/// Truncates a torn final line (content after the last `\n`) so appends
/// land on a line boundary. A healthy journal (newline-terminated or
/// empty/missing) is untouched.
fn repair_torn_tail(path: &Path) -> io::Result<()> {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    if content.is_empty() || content.ends_with('\n') {
        return Ok(());
    }
    let keep = content.rfind('\n').map_or(0, |i| i + 1);
    crate::metrics::counter("journal.torn_lines").incr();
    std::fs::write(path, &content[..keep])
}

/// Rewrites a legacy whole-file JSON object as one compact JSONL line.
/// JSONL files (first line parses on its own), missing files and
/// unparseable files are left untouched.
fn migrate_legacy(path: &Path) -> io::Result<()> {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    if content.trim().is_empty() {
        return Ok(());
    }
    let first_line_is_record = content
        .lines()
        .next()
        .is_some_and(|l| Value::parse(l).is_ok());
    if first_line_is_record {
        return Ok(());
    }
    if let Ok(legacy) = Value::parse(&content) {
        std::fs::write(path, legacy.render() + "\n")?;
    }
    Ok(())
}

/// A journal that could not be read or parsed.
#[derive(Debug)]
pub enum JournalError {
    /// The file could not be read (missing file is **not** an error —
    /// [`load`] returns an empty journal).
    Io(io::Error),
    /// A line (1-based; 0 for whole-file legacy parse) failed to parse.
    Parse {
        /// 1-based line number, 0 when the whole file failed as one
        /// document.
        line: usize,
        /// The parser's diagnosis.
        error: crate::json::ParseError,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Parse { line, error } => {
                write!(f, "journal line {line}: {error}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Loads every record in the journal, oldest first. A missing file is an
/// empty journal. A file that parses as one JSON document (the legacy
/// pre-journal format, or a one-line journal) yields one record.
///
/// **Torn-tail recovery:** a crash mid-append leaves a final line that
/// is a prefix of a record with no trailing newline. Such a line — the
/// file does not end in `\n` *and* its last line fails to parse — is
/// dropped (counted in the `journal.torn_lines` counter) instead of
/// failing the whole load: the torn record's run died before reporting,
/// so there is nothing to preserve. A malformed line anywhere *else*
/// (newline-terminated garbage) is still a hard [`JournalError::Parse`]
/// — that is corruption, not tearing.
///
/// # Errors
///
/// [`JournalError::Io`] on unreadable files, [`JournalError::Parse`]
/// with the offending line number on malformed records.
pub fn load(path: &Path) -> Result<Vec<Value>, JournalError> {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    if content.trim().is_empty() {
        return Ok(Vec::new());
    }
    // Legacy tolerance: the whole file as one document (also covers a
    // one-line journal — identical result either way).
    if let Ok(single) = Value::parse(&content) {
        return Ok(vec![single]);
    }
    let torn_tail_possible = !content.ends_with('\n');
    let lines: Vec<(usize, &str)> = content
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let mut records = Vec::with_capacity(lines.len());
    for (pos, (i, l)) in lines.iter().enumerate() {
        match Value::parse(l) {
            Ok(v) => records.push(v),
            Err(_) if torn_tail_possible && pos == lines.len() - 1 => {
                crate::metrics::counter("journal.torn_lines").incr();
            }
            Err(error) => return Err(JournalError::Parse { line: i + 1, error }),
        }
    }
    Ok(records)
}

/// The latest-two-records wall-clock comparison `repro compare` prints
/// and gates on.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// `experiments` key both records share.
    pub experiments: String,
    /// Thread count both records share.
    pub threads: u64,
    /// Wall clock of the older record (seconds).
    pub older_wall_s: f64,
    /// Wall clock of the newer record (seconds).
    pub newer_wall_s: f64,
    /// `newer / older` (∞ when the older wall clock is 0).
    pub ratio: f64,
    /// The gate threshold the comparison was made against.
    pub threshold: f64,
    /// Whether the newer run exceeds the older by more than `threshold`.
    pub regressed: bool,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3} s -> {:.3} s ({:+.1} % on {} thread(s); gate \u{00b1}{:.0} %): {}",
            self.experiments,
            self.older_wall_s,
            self.newer_wall_s,
            (self.ratio - 1.0) * 100.0,
            self.threads,
            self.threshold * 100.0,
            if self.regressed { "REGRESSED" } else { "ok" }
        )
    }
}

/// Why two comparable records could not be found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompareError {
    /// Fewer than two *valid* records match the experiment set
    /// (zero-point records — `csv_points: 0`, e.g. a skipped campaign —
    /// are not valid comparison baselines and are filtered out first).
    TooFewRecords {
        /// Valid matching records found.
        found: usize,
        /// The experiment set looked for.
        experiments: String,
    },
    /// The latest two matching records ran at different thread counts, so
    /// their wall clocks are not comparable.
    ThreadMismatch {
        /// Older record's thread count.
        older: u64,
        /// Newer record's thread count.
        newer: u64,
    },
    /// A matching record is missing a required numeric field.
    MissingField(&'static str),
}

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompareError::TooFewRecords { found, experiments } => write!(
                f,
                "need two valid {experiments:?} journal records to compare, found {found} \
                 after ignoring zero-point and resumed records (run `repro {experiments}` twice)"
            ),
            CompareError::ThreadMismatch { older, newer } => write!(
                f,
                "latest runs used different thread counts ({older} vs {newer}); \
                 wall clocks are not comparable"
            ),
            CompareError::MissingField(field) => {
                write!(f, "journal record is missing numeric field {field:?}")
            }
        }
    }
}

impl std::error::Error for CompareError {}

/// Whether a record carries real measurement work. A record whose
/// `csv_points` is present and zero (a skipped campaign, e.g.
/// `VARDELAY_FAULTS=0`, or a fully-checkpointed `--resume` run) measures
/// nothing and must not become a comparison baseline — its near-zero
/// wall clock would flag every honest successor as a regression. Records
/// *without* a `csv_points` field (legacy) are kept.
pub fn is_zero_point(record: &Value) -> bool {
    record.get("csv_points").and_then(Value::as_u64) == Some(0)
}

/// Whether a record came from a `--resume` run that skipped
/// checkpointed experiments (`resumed: true`). Its wall clock covers
/// only the re-run remainder of the campaign, so it cannot serve as a
/// baseline for full runs.
pub fn is_resumed(record: &Value) -> bool {
    record.get("resumed").and_then(Value::as_bool) == Some(true)
}

/// Compares the latest two records whose `experiments` field equals
/// `experiments`, flagging a regression when the newer wall clock
/// exceeds the older by more than `threshold` (fractional, e.g. `0.10`).
/// Zero-point and partially-resumed records (see [`is_zero_point`],
/// [`is_resumed`]) are ignored — neither measures a full campaign.
///
/// # Errors
///
/// See [`CompareError`] — fewer than two valid matching records, a
/// thread-count mismatch between them, or records without
/// `wall_s`/`threads`.
pub fn compare_latest(
    records: &[Value],
    experiments: &str,
    threshold: f64,
) -> Result<Comparison, CompareError> {
    let matching: Vec<&Value> = records
        .iter()
        .filter(|r| r.get("experiments").and_then(Value::as_str) == Some(experiments))
        .filter(|r| !is_zero_point(r) && !is_resumed(r))
        .collect();
    let [.., older, newer] = matching.as_slice() else {
        return Err(CompareError::TooFewRecords {
            found: matching.len(),
            experiments: experiments.to_owned(),
        });
    };
    let threads = |r: &Value| {
        r.get("threads")
            .and_then(Value::as_u64)
            .ok_or(CompareError::MissingField("threads"))
    };
    let wall = |r: &Value| {
        r.get("wall_s")
            .and_then(Value::as_f64)
            .ok_or(CompareError::MissingField("wall_s"))
    };
    let (older_threads, newer_threads) = (threads(older)?, threads(newer)?);
    if older_threads != newer_threads {
        return Err(CompareError::ThreadMismatch {
            older: older_threads,
            newer: newer_threads,
        });
    }
    let (older_wall_s, newer_wall_s) = (wall(older)?, wall(newer)?);
    let ratio = if older_wall_s > 0.0 {
        newer_wall_s / older_wall_s
    } else if newer_wall_s > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    Ok(Comparison {
        experiments: experiments.to_owned(),
        threads: newer_threads,
        older_wall_s,
        newer_wall_s,
        ratio,
        threshold,
        regressed: ratio > 1.0 + threshold,
    })
}

/// Default threshold for the serving-SLO gate, as a fractional growth
/// bound on tail latency. Deliberately far looser than
/// [`DEFAULT_THRESHOLD`]: the p99 comes from a log₂-bucketed histogram
/// whose adjacent representable values differ by 2×, so a tight gate
/// would flap on bucket-boundary noise. `3.0` (ratio > 4×) only trips
/// on a real serving-path regression.
pub const SERVE_THRESHOLD: f64 = 3.0;

/// The latest-two-records serving comparison `repro compare` gates on:
/// p99 latency growth and throughput collapse.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeComparison {
    /// Worker count both records share.
    pub threads: u64,
    /// p99 latency of the older record, microseconds.
    pub older_p99_us: f64,
    /// p99 latency of the newer record, microseconds.
    pub newer_p99_us: f64,
    /// Throughput of the older record, requests per second.
    pub older_rps: f64,
    /// Throughput of the newer record, requests per second.
    pub newer_rps: f64,
    /// `newer_p99 / older_p99` (∞ when the older p99 is 0 and the
    /// newer is not).
    pub p99_ratio: f64,
    /// The gate threshold the comparison was made against.
    pub threshold: f64,
    /// Whether the newer run's p99 grew past the threshold or its
    /// throughput fell below `older / (1 + threshold)`.
    pub regressed: bool,
}

impl fmt::Display for ServeComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "serve-bench: p99 {:.0} \u{00b5}s -> {:.0} \u{00b5}s, {:.0} -> {:.0} req/s \
             ({} worker(s); gate {:.0}\u{00d7}): {}",
            self.older_p99_us,
            self.newer_p99_us,
            self.older_rps,
            self.newer_rps,
            self.threads,
            1.0 + self.threshold,
            if self.regressed { "REGRESSED" } else { "ok" }
        )
    }
}

/// Compares the latest two `serve-bench` records (the journal kind
/// written by `repro serve-bench`), flagging a regression when the
/// newer p99 latency exceeds the older by more than `threshold`
/// (fractional — see [`SERVE_THRESHOLD`] for why it is loose) **or**
/// the newer throughput falls below `older / (1 + threshold)`.
///
/// # Errors
///
/// Same shapes as [`compare_latest`]: [`CompareError::TooFewRecords`]
/// under two `serve-bench` records, [`CompareError::ThreadMismatch`]
/// when their worker counts differ, [`CompareError::MissingField`] on
/// records without `p99_us`/`throughput_rps`/`threads`.
pub fn compare_latest_serve(
    records: &[Value],
    threshold: f64,
) -> Result<ServeComparison, CompareError> {
    let matching: Vec<&Value> = records
        .iter()
        .filter(|r| r.get("experiments").and_then(Value::as_str) == Some("serve-bench"))
        .collect();
    let [.., older, newer] = matching.as_slice() else {
        return Err(CompareError::TooFewRecords {
            found: matching.len(),
            experiments: "serve-bench".to_owned(),
        });
    };
    let threads = |r: &Value| {
        r.get("threads")
            .and_then(Value::as_u64)
            .ok_or(CompareError::MissingField("threads"))
    };
    let p99 = |r: &Value| {
        r.get("p99_us")
            .and_then(Value::as_f64)
            .ok_or(CompareError::MissingField("p99_us"))
    };
    let rps = |r: &Value| {
        r.get("throughput_rps")
            .and_then(Value::as_f64)
            .ok_or(CompareError::MissingField("throughput_rps"))
    };
    let (older_threads, newer_threads) = (threads(older)?, threads(newer)?);
    if older_threads != newer_threads {
        return Err(CompareError::ThreadMismatch {
            older: older_threads,
            newer: newer_threads,
        });
    }
    let (older_p99_us, newer_p99_us) = (p99(older)?, p99(newer)?);
    let (older_rps, newer_rps) = (rps(older)?, rps(newer)?);
    let p99_ratio = if older_p99_us > 0.0 {
        newer_p99_us / older_p99_us
    } else if newer_p99_us > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    let throughput_collapsed = older_rps > 0.0 && newer_rps < older_rps / (1.0 + threshold);
    Ok(ServeComparison {
        threads: newer_threads,
        older_p99_us,
        newer_p99_us,
        older_rps,
        newer_rps,
        p99_ratio,
        threshold,
        regressed: p99_ratio > 1.0 + threshold || throughput_collapsed,
    })
}

/// Max/min per-tenant throughput ratio the multi-tenant fairness gate
/// tolerates. Under the seeded *balanced* load every tenant offers the
/// same request volume, so an honest scheduler completes them within a
/// small factor of each other; `2.0` leaves room for scheduling noise
/// while still tripping on a starved tenant (a 10× hot-tenant injection
/// lands near 10).
pub const FAIRNESS_THRESHOLD: f64 = 2.0;

/// The latest-two-records multi-tenant comparison: tail-latency growth
/// between runs plus the newest run's max/min per-tenant fairness
/// ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessComparison {
    /// Worker count both records share.
    pub threads: u64,
    /// Tenants in the newer campaign.
    pub tenants: u64,
    /// p99.9 latency of the older record, microseconds.
    pub older_p999_us: f64,
    /// p99.9 latency of the newer record, microseconds.
    pub newer_p999_us: f64,
    /// The newer record's max/min per-tenant throughput ratio.
    pub newer_fairness: f64,
    /// `newer_p999 / older_p999` (∞ when the older is 0 and the newer
    /// is not).
    pub p999_ratio: f64,
    /// Tail-latency growth bound (fractional, like [`SERVE_THRESHOLD`]).
    pub latency_threshold: f64,
    /// Absolute fairness-ratio bound (see [`FAIRNESS_THRESHOLD`]).
    pub fairness_threshold: f64,
    /// Whether the newer run's p99.9 grew past the latency threshold or
    /// its fairness ratio exceeded the fairness threshold.
    pub regressed: bool,
}

impl fmt::Display for FairnessComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "serve-bench-mt: p99.9 {:.0} \u{00b5}s -> {:.0} \u{00b5}s, fairness {:.2} \
             ({} tenant(s), {} worker(s); gates {:.0}\u{00d7} latency, \u{2264}{:.1} fairness): {}",
            self.older_p999_us,
            self.newer_p999_us,
            self.newer_fairness,
            self.tenants,
            self.threads,
            1.0 + self.latency_threshold,
            self.fairness_threshold,
            if self.regressed { "REGRESSED" } else { "ok" }
        )
    }
}

/// Compares the latest two `serve-bench-mt` records (the journal kind
/// written by `repro serve-bench mt`), flagging a regression when the
/// newer p99.9 latency exceeds the older by more than
/// `latency_threshold` (fractional, loose for the same log₂-histogram
/// reason as [`SERVE_THRESHOLD`]) **or** the newer record's max/min
/// per-tenant throughput ratio exceeds `fairness_threshold` (absolute —
/// fairness is a property of a single run, not a run-to-run delta, so a
/// starved-tenant injection trips the gate immediately rather than
/// poisoning the next baseline).
///
/// # Errors
///
/// Same shapes as [`compare_latest`]: [`CompareError::TooFewRecords`]
/// under two `serve-bench-mt` records, [`CompareError::ThreadMismatch`]
/// when their worker counts differ, [`CompareError::MissingField`] on
/// records without `p999_us`/`fairness_ratio`/`tenants`/`threads`.
pub fn compare_latest_fairness(
    records: &[Value],
    latency_threshold: f64,
    fairness_threshold: f64,
) -> Result<FairnessComparison, CompareError> {
    let matching: Vec<&Value> = records
        .iter()
        .filter(|r| r.get("experiments").and_then(Value::as_str) == Some("serve-bench-mt"))
        .collect();
    let [.., older, newer] = matching.as_slice() else {
        return Err(CompareError::TooFewRecords {
            found: matching.len(),
            experiments: "serve-bench-mt".to_owned(),
        });
    };
    let threads = |r: &Value| {
        r.get("threads")
            .and_then(Value::as_u64)
            .ok_or(CompareError::MissingField("threads"))
    };
    let p999 = |r: &Value| {
        r.get("p999_us")
            .and_then(Value::as_f64)
            .ok_or(CompareError::MissingField("p999_us"))
    };
    let (older_threads, newer_threads) = (threads(older)?, threads(newer)?);
    if older_threads != newer_threads {
        return Err(CompareError::ThreadMismatch {
            older: older_threads,
            newer: newer_threads,
        });
    }
    let (older_p999_us, newer_p999_us) = (p999(older)?, p999(newer)?);
    let newer_fairness = newer
        .get("fairness_ratio")
        .and_then(Value::as_f64)
        .ok_or(CompareError::MissingField("fairness_ratio"))?;
    let tenants = newer
        .get("tenants")
        .and_then(Value::as_u64)
        .ok_or(CompareError::MissingField("tenants"))?;
    let p999_ratio = if older_p999_us > 0.0 {
        newer_p999_us / older_p999_us
    } else if newer_p999_us > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    Ok(FairnessComparison {
        threads: newer_threads,
        tenants,
        older_p999_us,
        newer_p999_us,
        newer_fairness,
        p999_ratio,
        latency_threshold,
        fairness_threshold,
        regressed: p999_ratio > 1.0 + latency_threshold || newer_fairness > fairness_threshold,
    })
}

/// Availability floor for the chaos-soak gate: the fraction of healthy-
/// channel requests answered `ok` during a soak must stay at or above
/// this. Absolute, judged on the newest run alone — an outage cannot
/// hide behind a calm older baseline.
pub const SOAK_AVAILABILITY_FLOOR: f64 = 0.99;

/// Run-over-run MTTR growth bound for the chaos-soak gate (fractional,
/// like [`SERVE_THRESHOLD`]): only a >4× blowup of the p99 time-to-
/// recover trips it. Loose on purpose — recovery time is quantized by
/// the sentinel period and the re-admission round count, so small-
/// multiple noise between runs is expected.
pub const SOAK_MTTR_THRESHOLD: f64 = 3.0;

/// The latest-two-records chaos-soak comparison: the newest run's
/// absolute health (availability, unhealed incidents) plus run-over-run
/// MTTR growth.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakComparison {
    /// Worker count both records share.
    pub threads: u64,
    /// Drift incidents injected in the newer campaign.
    pub incidents: u64,
    /// Incidents of the newer campaign never healed by soak end.
    pub unhealed: u64,
    /// p99 mean-time-to-recover of the older record, microseconds.
    pub older_mttr_p99_us: f64,
    /// p99 mean-time-to-recover of the newer record, microseconds.
    pub newer_mttr_p99_us: f64,
    /// Healthy-channel availability of the newer record (0..=1).
    pub newer_availability: f64,
    /// `newer_mttr_p99 / older_mttr_p99` (∞ when the older is 0 and
    /// the newer is not).
    pub mttr_ratio: f64,
    /// MTTR growth bound (fractional — see [`SOAK_MTTR_THRESHOLD`]).
    pub mttr_threshold: f64,
    /// Absolute availability floor (see [`SOAK_AVAILABILITY_FLOOR`]).
    pub availability_floor: f64,
    /// Whether the newest soak dropped below the availability floor,
    /// left an incident unhealed, or grew MTTR past the threshold.
    pub regressed: bool,
}

impl fmt::Display for SoakComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "soak: mttr p99 {:.0} \u{00b5}s -> {:.0} \u{00b5}s, availability {:.4}, \
             {}/{} incident(s) unhealed ({} worker(s); gates {:.0}\u{00d7} mttr, \
             \u{2265}{:.2} availability, 0 unhealed): {}",
            self.older_mttr_p99_us,
            self.newer_mttr_p99_us,
            self.newer_availability,
            self.unhealed,
            self.incidents,
            self.threads,
            1.0 + self.mttr_threshold,
            self.availability_floor,
            if self.regressed { "REGRESSED" } else { "ok" }
        )
    }
}

/// Compares the latest two `soak` records (the journal kind written by
/// `repro soak`), flagging a regression when the newest run's healthy-
/// channel availability falls below `availability_floor`, when any
/// injected incident was never healed (the deterministic red leg: with
/// recalibration sabotaged, every incident stays unhealed), or when the
/// newer p99 MTTR exceeds the older by more than `mttr_threshold`
/// (fractional). Availability and unhealed-count are absolute gates on
/// the newest run alone, for the same reason the fairness ratio is — a
/// broken healing loop must trip the gate immediately, not poison the
/// next baseline.
///
/// # Errors
///
/// Same shapes as [`compare_latest`]: [`CompareError::TooFewRecords`]
/// under two `soak` records, [`CompareError::ThreadMismatch`] when
/// their worker counts differ, [`CompareError::MissingField`] on
/// records without `mttr_p99_us`/`availability`/`incidents`/`unhealed`.
pub fn compare_latest_soak(
    records: &[Value],
    mttr_threshold: f64,
    availability_floor: f64,
) -> Result<SoakComparison, CompareError> {
    let matching: Vec<&Value> = records
        .iter()
        .filter(|r| r.get("experiments").and_then(Value::as_str) == Some("soak"))
        .collect();
    let [.., older, newer] = matching.as_slice() else {
        return Err(CompareError::TooFewRecords {
            found: matching.len(),
            experiments: "soak".to_owned(),
        });
    };
    let threads = |r: &Value| {
        r.get("threads")
            .and_then(Value::as_u64)
            .ok_or(CompareError::MissingField("threads"))
    };
    let mttr = |r: &Value| {
        r.get("mttr_p99_us")
            .and_then(Value::as_f64)
            .ok_or(CompareError::MissingField("mttr_p99_us"))
    };
    let (older_threads, newer_threads) = (threads(older)?, threads(newer)?);
    if older_threads != newer_threads {
        return Err(CompareError::ThreadMismatch {
            older: older_threads,
            newer: newer_threads,
        });
    }
    let (older_mttr_p99_us, newer_mttr_p99_us) = (mttr(older)?, mttr(newer)?);
    let newer_availability = newer
        .get("availability")
        .and_then(Value::as_f64)
        .ok_or(CompareError::MissingField("availability"))?;
    let incidents = newer
        .get("incidents")
        .and_then(Value::as_u64)
        .ok_or(CompareError::MissingField("incidents"))?;
    let unhealed = newer
        .get("unhealed")
        .and_then(Value::as_u64)
        .ok_or(CompareError::MissingField("unhealed"))?;
    let mttr_ratio = if older_mttr_p99_us > 0.0 {
        newer_mttr_p99_us / older_mttr_p99_us
    } else if newer_mttr_p99_us > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    Ok(SoakComparison {
        threads: newer_threads,
        incidents,
        unhealed,
        older_mttr_p99_us,
        newer_mttr_p99_us,
        newer_availability,
        mttr_ratio,
        mttr_threshold,
        availability_floor,
        regressed: newer_availability < availability_floor
            || unhealed > 0
            || mttr_ratio > 1.0 + mttr_threshold,
    })
}

/// Default threshold for the hot-path solve-latency leg of the gate.
/// Like [`SERVE_THRESHOLD`], deliberately loose: `solve_p99_us` comes
/// from the log₂-bucketed `core.solve_us` histogram whose adjacent
/// representable values differ by 2×, so only a >4× blowup trips it.
pub const SOLVE_THRESHOLD: f64 = 3.0;

/// The latest-two-records hot-path comparison `repro compare` gates on:
/// per-request p99 solve time and allocations per request.
#[derive(Debug, Clone, PartialEq)]
pub struct HotpathComparison {
    /// Thread count both records share.
    pub threads: u64,
    /// p99 solve latency of the older record, microseconds.
    pub older_solve_p99_us: f64,
    /// p99 solve latency of the newer record, microseconds.
    pub newer_solve_p99_us: f64,
    /// Heap allocations per solve request in the older record.
    pub older_allocs_per_request: f64,
    /// Heap allocations per solve request in the newer record.
    pub newer_allocs_per_request: f64,
    /// `newer_p99 / older_p99` (∞ when the older p99 is 0 and the newer
    /// is not).
    pub p99_ratio: f64,
    /// `newer_allocs / older_allocs` (∞ when the older is 0 and the
    /// newer is not).
    pub allocs_ratio: f64,
    /// The solve-latency gate threshold.
    pub p99_threshold: f64,
    /// The allocations gate threshold.
    pub allocs_threshold: f64,
    /// Whether either dimension regressed past its threshold.
    pub regressed: bool,
}

impl fmt::Display for HotpathComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hotpath: solve p99 {:.0} \u{00b5}s -> {:.0} \u{00b5}s (gate {:.0}\u{00d7}), \
             {:.2} -> {:.2} allocs/request (gate \u{00b1}{:.0} %; {} thread(s)): {}",
            self.older_solve_p99_us,
            self.newer_solve_p99_us,
            1.0 + self.p99_threshold,
            self.older_allocs_per_request,
            self.newer_allocs_per_request,
            self.allocs_threshold * 100.0,
            self.threads,
            if self.regressed { "REGRESSED" } else { "ok" }
        )
    }
}

/// Compares the latest two `all` records that carry the hot-path
/// dimensions (`solve_p99_us`, `allocs_per_request` — present since the
/// solve fast path landed; older records and `VARDELAY_OBS=0` runs are
/// skipped, so the gate arms itself once two instrumented runs exist).
/// Flags a regression when the newer p99 solve time exceeds the older by
/// more than `p99_threshold` (see [`SOLVE_THRESHOLD`] for why it is
/// loose) **or** allocations per request grow past `allocs_threshold`.
///
/// # Errors
///
/// Same shapes as [`compare_latest`]: [`CompareError::TooFewRecords`]
/// under two instrumented `all` records, [`CompareError::ThreadMismatch`]
/// when their thread counts differ, [`CompareError::MissingField`] on
/// records without `threads`.
pub fn compare_latest_hotpath(
    records: &[Value],
    p99_threshold: f64,
    allocs_threshold: f64,
) -> Result<HotpathComparison, CompareError> {
    let matching: Vec<&Value> = records
        .iter()
        .filter(|r| r.get("experiments").and_then(Value::as_str) == Some("all"))
        .filter(|r| !is_zero_point(r) && !is_resumed(r))
        .filter(|r| {
            r.get("solve_p99_us").and_then(Value::as_f64).is_some()
                && r.get("allocs_per_request")
                    .and_then(Value::as_f64)
                    .is_some()
        })
        .collect();
    let [.., older, newer] = matching.as_slice() else {
        return Err(CompareError::TooFewRecords {
            found: matching.len(),
            experiments: "all".to_owned(),
        });
    };
    let threads = |r: &Value| {
        r.get("threads")
            .and_then(Value::as_u64)
            .ok_or(CompareError::MissingField("threads"))
    };
    let (older_threads, newer_threads) = (threads(older)?, threads(newer)?);
    if older_threads != newer_threads {
        return Err(CompareError::ThreadMismatch {
            older: older_threads,
            newer: newer_threads,
        });
    }
    // Presence was filtered above, so these cannot miss.
    let field = |r: &Value, name: &str| r.get(name).and_then(Value::as_f64).unwrap_or(0.0);
    let ratio = |older: f64, newer: f64| {
        if older > 0.0 {
            newer / older
        } else if newer > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    };
    let (older_solve_p99_us, newer_solve_p99_us) =
        (field(older, "solve_p99_us"), field(newer, "solve_p99_us"));
    let (older_allocs_per_request, newer_allocs_per_request) = (
        field(older, "allocs_per_request"),
        field(newer, "allocs_per_request"),
    );
    let p99_ratio = ratio(older_solve_p99_us, newer_solve_p99_us);
    let allocs_ratio = ratio(older_allocs_per_request, newer_allocs_per_request);
    Ok(HotpathComparison {
        threads: newer_threads,
        older_solve_p99_us,
        newer_solve_p99_us,
        older_allocs_per_request,
        newer_allocs_per_request,
        p99_ratio,
        allocs_ratio,
        p99_threshold,
        allocs_threshold,
        regressed: p99_ratio > 1.0 + p99_threshold || allocs_ratio > 1.0 + allocs_threshold,
    })
}

/// Run-over-run warm-start growth bound for the durable-restart gate
/// (fractional, like [`SERVE_THRESHOLD`]): only a >4× blowup of the
/// warm boot time trips it. Loose because a warm boot is dominated by
/// the per-channel sentinel verification sweep, whose wall clock is
/// quantized by scheduler noise at the few-millisecond scale.
pub const RESTART_THRESHOLD: f64 = 3.0;

/// The latest-two-records durable-restart comparison: the newest run's
/// absolute recovery correctness (banks restored from snapshots, zero
/// replay divergence, zero forced recalibrations, warm faster than
/// cold) plus run-over-run warm-start growth.
#[derive(Debug, Clone, PartialEq)]
pub struct RestartComparison {
    /// Worker count both records share.
    pub threads: u64,
    /// Cold (first-boot) start time of the newer record, microseconds.
    pub cold_start_us: f64,
    /// Warm (restarted) start time of the older record, microseconds.
    pub older_warm_start_us: f64,
    /// Warm start time of the newer record, microseconds.
    pub newer_warm_start_us: f64,
    /// Banks the newer run's warm boot restored from snapshots.
    pub banks_restored: u64,
    /// Banks the newer run's warm boot had to recalibrate despite an
    /// uncorrupted store (must be zero — the whole point of snapshots).
    pub banks_recalibrated: u64,
    /// WAL records the newer run's warm boot replayed.
    pub wal_records_replayed: u64,
    /// Post-restart answers that diverged byte-for-byte from the
    /// pre-restart answers (must be zero — never serve a wrong table).
    pub replay_mismatches: u64,
    /// `newer_warm_start / older_warm_start` (∞ when the older is 0
    /// and the newer is not).
    pub warm_ratio: f64,
    /// Warm-start growth bound (fractional — see [`RESTART_THRESHOLD`]).
    pub warm_threshold: f64,
    /// Whether the newest run restored nothing, diverged on replay,
    /// recalibrated an intact bank, warm-started slower than cold, or
    /// grew its warm start past the threshold.
    pub regressed: bool,
}

impl fmt::Display for RestartComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "restart: warm start {:.0} \u{00b5}s -> {:.0} \u{00b5}s (cold {:.0} \u{00b5}s), \
             {} bank(s) restored, {} recalibrated, {} wal record(s) replayed, \
             {} replay mismatch(es) ({} worker(s); gates {:.0}\u{00d7} warm growth, \
             warm<cold, \u{2265}1 restored, 0 recalibrated, 0 mismatches): {}",
            self.older_warm_start_us,
            self.newer_warm_start_us,
            self.cold_start_us,
            self.banks_restored,
            self.banks_recalibrated,
            self.wal_records_replayed,
            self.replay_mismatches,
            self.threads,
            1.0 + self.warm_threshold,
            if self.regressed { "REGRESSED" } else { "ok" }
        )
    }
}

/// Compares the latest two `restart` records (the journal kind written
/// by `repro restart`), flagging a regression when the newest run's
/// warm boot restored no bank, recalibrated a bank whose snapshots were
/// intact, served any post-restart answer that diverged byte-for-byte
/// from its pre-restart twin, warm-started slower than the cold boot,
/// or grew its warm start past `warm_threshold` (fractional) over the
/// previous run. The correctness legs are absolute gates on the newest
/// run alone — a recovery path that silently recalibrates or diverges
/// must trip immediately, not poison the next baseline.
///
/// # Errors
///
/// Same shapes as [`compare_latest`]: [`CompareError::TooFewRecords`]
/// under two `restart` records, [`CompareError::ThreadMismatch`] when
/// their worker counts differ, [`CompareError::MissingField`] on
/// records without the restart fields.
pub fn compare_latest_restart(
    records: &[Value],
    warm_threshold: f64,
) -> Result<RestartComparison, CompareError> {
    let matching: Vec<&Value> = records
        .iter()
        .filter(|r| r.get("experiments").and_then(Value::as_str) == Some("restart"))
        .collect();
    let [.., older, newer] = matching.as_slice() else {
        return Err(CompareError::TooFewRecords {
            found: matching.len(),
            experiments: "restart".to_owned(),
        });
    };
    let threads = |r: &Value| {
        r.get("threads")
            .and_then(Value::as_u64)
            .ok_or(CompareError::MissingField("threads"))
    };
    let (older_threads, newer_threads) = (threads(older)?, threads(newer)?);
    if older_threads != newer_threads {
        return Err(CompareError::ThreadMismatch {
            older: older_threads,
            newer: newer_threads,
        });
    }
    let f64_field = |r: &Value, name: &'static str| {
        r.get(name)
            .and_then(Value::as_f64)
            .ok_or(CompareError::MissingField(name))
    };
    let u64_field = |r: &Value, name: &'static str| {
        r.get(name)
            .and_then(Value::as_u64)
            .ok_or(CompareError::MissingField(name))
    };
    let older_warm_start_us = f64_field(older, "warm_start_us")?;
    let newer_warm_start_us = f64_field(newer, "warm_start_us")?;
    let cold_start_us = f64_field(newer, "cold_start_us")?;
    let banks_restored = u64_field(newer, "banks_restored")?;
    let banks_recalibrated = u64_field(newer, "banks_recalibrated")?;
    let wal_records_replayed = u64_field(newer, "wal_records_replayed")?;
    let replay_mismatches = u64_field(newer, "replay_mismatches")?;
    let warm_ratio = if older_warm_start_us > 0.0 {
        newer_warm_start_us / older_warm_start_us
    } else if newer_warm_start_us > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    Ok(RestartComparison {
        threads: newer_threads,
        cold_start_us,
        older_warm_start_us,
        newer_warm_start_us,
        banks_restored,
        banks_recalibrated,
        wal_records_replayed,
        replay_mismatches,
        warm_ratio,
        warm_threshold,
        regressed: banks_restored == 0
            || banks_recalibrated > 0
            || replay_mismatches > 0
            || newer_warm_start_us >= cold_start_us
            || warm_ratio > 1.0 + warm_threshold,
    })
}

/// What [`compare_latest_backends`] found in the newest `backends`
/// record.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendsComparison {
    /// Worker threads of the gated run.
    pub threads: u64,
    /// Backends that missed their advertised contract.
    pub contract_violations: u64,
    /// Whether the circuit row diverged from the directly-driven
    /// circuit baseline.
    pub reference_drift: bool,
    /// Backend-specific faults detected *and* healed.
    pub faults_detected: u64,
    /// Faults the campaign expected to detect (0 when masked).
    pub faults_expected: u64,
    /// Whether the gate fired.
    pub regressed: bool,
}

impl fmt::Display for BackendsComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "backends: {} contract violation(s), reference drift {}, \
             {}/{} fault(s) detected+healed ({} thread(s); gates 0 violations, \
             no drift, all faults caught): {}",
            self.contract_violations,
            if self.reference_drift { "yes" } else { "no" },
            self.faults_detected,
            self.faults_expected,
            self.threads,
            if self.regressed { "REGRESSED" } else { "ok" }
        )
    }
}

/// Gates the latest `backends` record (the journal kind written by
/// `repro backends`). Unlike the trend gates this one is *absolute* and
/// needs only a single record: every backend must meet its advertised
/// contract, the circuit reference must not drift from the
/// directly-driven baseline by a single byte, and every backend-specific
/// fault the campaign injected must have been detected and healed.
///
/// # Errors
///
/// [`CompareError::TooFewRecords`] when no `backends` record exists,
/// [`CompareError::MissingField`] on records without the backends
/// fields.
pub fn compare_latest_backends(records: &[Value]) -> Result<BackendsComparison, CompareError> {
    let matching: Vec<&Value> = records
        .iter()
        .filter(|r| r.get("experiments").and_then(Value::as_str) == Some("backends"))
        .collect();
    let [.., newer] = matching.as_slice() else {
        return Err(CompareError::TooFewRecords {
            found: 0,
            experiments: "backends".to_owned(),
        });
    };
    let u64_field = |name: &'static str| {
        newer
            .get(name)
            .and_then(Value::as_u64)
            .ok_or(CompareError::MissingField(name))
    };
    let threads = u64_field("threads")?;
    let contract_violations = u64_field("contract_violations")?;
    let reference_drift = newer
        .get("reference_drift")
        .and_then(Value::as_bool)
        .ok_or(CompareError::MissingField("reference_drift"))?;
    let faults_detected = u64_field("faults_detected")?;
    let faults_expected = u64_field("faults_expected")?;
    Ok(BackendsComparison {
        threads,
        contract_violations,
        reference_drift,
        faults_detected,
        faults_expected,
        regressed: contract_violations > 0 || reference_drift || faults_detected < faults_expected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(experiments: &str, threads: u64, wall_s: f64) -> Value {
        Value::obj()
            .with("schema", SCHEMA_VERSION)
            .with("experiments", experiments)
            .with("threads", threads)
            .with("wall_s", wall_s)
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "vardelay_obs_journal_{name}_{}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn append_accumulates_lines() {
        let path = temp_path("append");
        let _ = std::fs::remove_file(&path);
        append(&path, &record("all", 1, 6.5)).unwrap();
        append(&path, &record("fig9", 1, 0.01)).unwrap();
        append(&path, &record("all", 1, 6.4)).unwrap();
        let records = load(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(
            records[1].get("experiments").unwrap().as_str(),
            Some("fig9")
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_empty_journal() {
        assert!(load(Path::new("/nonexistent/vardelay.jsonl"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn legacy_single_object_loads_as_one_record() {
        let path = temp_path("legacy");
        std::fs::write(
            &path,
            "{\n  \"experiments\": \"fig9\",\n  \"threads\": 1,\n  \"wall_s\": 0.011\n}\n",
        )
        .unwrap();
        let records = load(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].get("wall_s").unwrap().as_f64(), Some(0.011));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appending_to_a_legacy_file_migrates_it() {
        let path = temp_path("migrate");
        std::fs::write(
            &path,
            "{\n  \"experiments\": \"all\",\n  \"threads\": 1,\n  \"wall_s\": 6.5\n}\n",
        )
        .unwrap();
        append(&path, &record("fig9", 1, 0.01)).unwrap();
        let records = load(&path).unwrap();
        assert_eq!(records.len(), 2, "legacy record + appended record");
        assert_eq!(records[0].get("experiments").unwrap().as_str(), Some("all"));
        assert_eq!(records[0].get("wall_s").unwrap().as_f64(), Some(6.5));
        assert_eq!(
            records[1].get("experiments").unwrap().as_str(),
            Some("fig9")
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_line_reports_its_number() {
        let path = temp_path("malformed");
        std::fs::write(&path, "{\"experiments\":\"all\"}\nnot json\n").unwrap();
        match load(&path) {
            Err(JournalError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_final_line_is_dropped_and_counted() {
        crate::set_enabled(true);
        let path = temp_path("torn");
        // A healthy record, then a crash mid-append: the second line is
        // truncated mid-byte with no trailing newline.
        let healthy = record("all", 1, 6.5).render();
        let torn = &record("all", 1, 6.6).render()[..20];
        std::fs::write(&path, format!("{healthy}\n{torn}")).unwrap();

        let before = crate::metrics::counter("journal.torn_lines").get();
        let records = load(&path).unwrap();
        assert_eq!(records.len(), 1, "exactly the torn line is dropped");
        assert_eq!(records[0].get("wall_s").and_then(Value::as_f64), Some(6.5));
        assert_eq!(
            crate::metrics::counter("journal.torn_lines").get(),
            before + 1,
            "torn line increments journal.torn_lines"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn newline_terminated_garbage_is_still_a_parse_error() {
        // Tearing can only truncate the trailing newline away; a garbage
        // line *with* its newline is corruption and must stay loud.
        let path = temp_path("garbage");
        std::fs::write(&path, "{\"experiments\":\"all\"}\nnot json\n").unwrap();
        match load(&path) {
            Err(JournalError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_repairs_a_torn_tail_before_writing() {
        let path = temp_path("repair");
        let healthy = record("all", 1, 6.5).render();
        std::fs::write(&path, format!("{healthy}\n{{\"experiments\":\"al")).unwrap();

        append(&path, &record("all", 1, 6.4)).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(
            !content.contains("{\"experiments\":\"al{"),
            "new record must not concatenate onto the torn tail: {content:?}"
        );
        let records = load(&path).unwrap();
        assert_eq!(records.len(), 2, "healthy + appended; torn tail gone");
        assert_eq!(records[1].get("wall_s").and_then(Value::as_f64), Some(6.4));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_lock_from_a_dead_pid_is_broken() {
        let path = temp_path("stale_lock");
        let _ = std::fs::remove_file(&path);
        // Plant a lock whose holder pid cannot exist.
        std::fs::write(lock_path_for(&path), "4294967294").unwrap();
        append(&path, &record("all", 1, 6.5)).unwrap();
        assert_eq!(load(&path).unwrap().len(), 1);
        assert!(!lock_path_for(&path).exists(), "lock released after append");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_appends_serialize_into_whole_lines() {
        let path = temp_path("concurrent");
        let _ = std::fs::remove_file(&path);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let path = &path;
                scope.spawn(move || {
                    for k in 0..4 {
                        append(path, &record("all", 1, (t * 10 + k) as f64)).unwrap();
                    }
                });
            }
        });
        let records = load(&path).unwrap();
        assert_eq!(records.len(), 32, "every append landed as its own line");
        assert!(!lock_path_for(&path).exists(), "no lock file left behind");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compare_ignores_zero_point_records() {
        let zero = record("all", 1, 0.0).with("csv_points", 0u64);
        assert!(is_zero_point(&zero));
        // A skipped-campaign record must be invisible to the gate: the
        // real baseline is the latest two records with actual points.
        let records = vec![
            record("all", 1, 6.0).with("csv_points", 172u64),
            record("all", 1, 6.2).with("csv_points", 172u64),
            zero.clone(),
        ];
        let c = compare_latest(&records, "all", DEFAULT_THRESHOLD).unwrap();
        assert_eq!(c.older_wall_s, 6.0);
        assert_eq!(c.newer_wall_s, 6.2);
        assert!(!c.regressed, "{c}");
        // With only one valid record left, the error is the clear
        // one-liner, not a bogus comparison against the zero record.
        let records = vec![record("all", 1, 6.0).with("csv_points", 172u64), zero];
        let err = compare_latest(&records, "all", DEFAULT_THRESHOLD).unwrap_err();
        assert_eq!(
            err,
            CompareError::TooFewRecords {
                found: 1,
                experiments: "all".to_owned()
            }
        );
        assert!(err.to_string().contains("zero-point"), "{err}");
        // Legacy records without csv_points stay comparable.
        assert!(!is_zero_point(&record("all", 1, 6.0)));
    }

    #[test]
    fn compare_ignores_partially_resumed_records() {
        // A --resume run only re-ran part of the campaign: its wall
        // clock would make every honest full run look regressed.
        let records = vec![
            record("all", 1, 6.0).with("csv_points", 172u64),
            record("all", 1, 1.8)
                .with("csv_points", 40u64)
                .with("resumed", true),
            record("all", 1, 6.2).with("csv_points", 172u64),
        ];
        let c = compare_latest(&records, "all", DEFAULT_THRESHOLD).unwrap();
        assert_eq!(c.older_wall_s, 6.0);
        assert_eq!(c.newer_wall_s, 6.2);
        assert!(!c.regressed, "{c}");
    }

    #[test]
    fn compare_picks_latest_two_matching() {
        let records = vec![
            record("all", 1, 10.0),
            record("fig9", 1, 0.01), // interleaved single-figure run: ignored
            record("all", 1, 6.0),
            record("all", 1, 6.3),
        ];
        let c = compare_latest(&records, "all", DEFAULT_THRESHOLD).unwrap();
        assert_eq!(c.older_wall_s, 6.0);
        assert_eq!(c.newer_wall_s, 6.3);
        assert!(!c.regressed, "{c}");
    }

    #[test]
    fn compare_flags_regression_over_threshold() {
        let records = vec![record("all", 1, 6.0), record("all", 1, 6.61)];
        let c = compare_latest(&records, "all", 0.10).unwrap();
        assert!(c.regressed, "{c}");
        // And just inside the gate passes.
        let records = vec![record("all", 1, 6.0), record("all", 1, 6.59)];
        assert!(!compare_latest(&records, "all", 0.10).unwrap().regressed);
    }

    #[test]
    fn compare_requires_two_records_and_equal_threads() {
        assert_eq!(
            compare_latest(&[record("all", 1, 6.0)], "all", 0.1),
            Err(CompareError::TooFewRecords {
                found: 1,
                experiments: "all".to_owned()
            })
        );
        assert_eq!(
            compare_latest(&[record("all", 1, 6.0), record("all", 4, 2.0)], "all", 0.1),
            Err(CompareError::ThreadMismatch { older: 1, newer: 4 })
        );
    }

    fn hotpath_record(threads: u64, solve_p99_us: f64, allocs: f64) -> Value {
        record("all", threads, 6.0)
            .with("csv_points", 172u64)
            .with("solve_p99_us", solve_p99_us)
            .with("allocs_per_request", allocs)
    }

    #[test]
    fn hotpath_compare_gates_solve_p99_and_allocations() {
        // A 2× p99 bucket step with flat allocations passes the loose
        // latency leg.
        let records = vec![
            hotpath_record(4, 4000.0, 9.5),
            hotpath_record(4, 8000.0, 9.5),
        ];
        let c = compare_latest_hotpath(&records, SOLVE_THRESHOLD, DEFAULT_THRESHOLD).unwrap();
        assert!(!c.regressed, "{c}");
        assert_eq!(c.p99_ratio, 2.0);
        // A >4× p99 blowup trips it.
        let records = vec![
            hotpath_record(4, 4000.0, 9.5),
            hotpath_record(4, 17000.0, 9.5),
        ];
        assert!(
            compare_latest_hotpath(&records, SOLVE_THRESHOLD, DEFAULT_THRESHOLD)
                .unwrap()
                .regressed
        );
        // Allocations per request are deterministic, so their gate is
        // the tight default: +11 % fails even with a flat p99.
        let records = vec![
            hotpath_record(4, 4000.0, 9.5),
            hotpath_record(4, 4000.0, 10.6),
        ];
        assert!(
            compare_latest_hotpath(&records, SOLVE_THRESHOLD, DEFAULT_THRESHOLD)
                .unwrap()
                .regressed
        );
    }

    #[test]
    fn hotpath_compare_skips_uninstrumented_and_invalid_records() {
        // Pre-fast-path records (no hot-path fields) and zero-point or
        // resumed records never become baselines: the gate arms itself
        // only once two instrumented full runs exist.
        let legacy = record("all", 4, 6.0).with("csv_points", 172u64);
        let zero = record("all", 4, 0.1)
            .with("csv_points", 0u64)
            .with("solve_p99_us", 4000.0)
            .with("allocs_per_request", 9.5);
        let resumed = hotpath_record(4, 900.0, 2.0).with("resumed", true);
        let records = vec![
            legacy.clone(),
            zero,
            resumed,
            hotpath_record(4, 4000.0, 9.5),
        ];
        assert_eq!(
            compare_latest_hotpath(&records, SOLVE_THRESHOLD, DEFAULT_THRESHOLD),
            Err(CompareError::TooFewRecords {
                found: 1,
                experiments: "all".to_owned()
            })
        );
        // Two instrumented records compare even across interleaved
        // legacy ones.
        let records = vec![
            hotpath_record(4, 4000.0, 9.5),
            legacy,
            hotpath_record(4, 4100.0, 9.5),
        ];
        let c = compare_latest_hotpath(&records, SOLVE_THRESHOLD, DEFAULT_THRESHOLD).unwrap();
        assert_eq!(c.older_solve_p99_us, 4000.0);
        assert_eq!(c.newer_solve_p99_us, 4100.0);
        assert!(!c.regressed, "{c}");
        // Different widths are not comparable.
        let records = vec![
            hotpath_record(2, 4000.0, 9.5),
            hotpath_record(4, 4000.0, 9.5),
        ];
        assert_eq!(
            compare_latest_hotpath(&records, SOLVE_THRESHOLD, DEFAULT_THRESHOLD),
            Err(CompareError::ThreadMismatch { older: 2, newer: 4 })
        );
    }

    fn serve_record(threads: u64, p99_us: f64, rps: f64) -> Value {
        Value::obj()
            .with("schema", SCHEMA_VERSION)
            .with("experiments", "serve-bench")
            .with("threads", threads)
            .with("p99_us", p99_us)
            .with("throughput_rps", rps)
    }

    #[test]
    fn serve_compare_gates_p99_and_throughput() {
        // Within the loose gate: a 2× p99 bucket step passes.
        let records = vec![
            serve_record(4, 400.0, 5000.0),
            serve_record(4, 800.0, 4800.0),
        ];
        let c = compare_latest_serve(&records, SERVE_THRESHOLD).unwrap();
        assert!(!c.regressed, "{c}");
        assert_eq!(c.p99_ratio, 2.0);
        // A >4× p99 blowup trips it.
        let records = vec![
            serve_record(4, 400.0, 5000.0),
            serve_record(4, 1700.0, 4800.0),
        ];
        assert!(
            compare_latest_serve(&records, SERVE_THRESHOLD)
                .unwrap()
                .regressed
        );
        // So does a throughput collapse, even with a flat p99.
        let records = vec![
            serve_record(4, 400.0, 5000.0),
            serve_record(4, 400.0, 1000.0),
        ];
        assert!(
            compare_latest_serve(&records, SERVE_THRESHOLD)
                .unwrap()
                .regressed
        );
    }

    #[test]
    fn serve_compare_needs_two_records_and_equal_workers() {
        // Wall-clock records in the same journal are not serve records.
        let records = vec![record("all", 1, 6.0), serve_record(4, 400.0, 5000.0)];
        assert_eq!(
            compare_latest_serve(&records, SERVE_THRESHOLD),
            Err(CompareError::TooFewRecords {
                found: 1,
                experiments: "serve-bench".to_owned()
            })
        );
        let records = vec![
            serve_record(2, 400.0, 5000.0),
            serve_record(4, 400.0, 5000.0),
        ];
        assert_eq!(
            compare_latest_serve(&records, SERVE_THRESHOLD),
            Err(CompareError::ThreadMismatch { older: 2, newer: 4 })
        );
        let bad = vec![
            serve_record(4, 400.0, 5000.0),
            Value::obj()
                .with("experiments", "serve-bench")
                .with("threads", 4u64),
        ];
        assert_eq!(
            compare_latest_serve(&bad, SERVE_THRESHOLD),
            Err(CompareError::MissingField("p99_us"))
        );
    }

    fn mt_record(threads: u64, p999_us: f64, fairness: f64) -> Value {
        Value::obj()
            .with("schema", SCHEMA_VERSION)
            .with("experiments", "serve-bench-mt")
            .with("threads", threads)
            .with("tenants", 16u64)
            .with("p999_us", p999_us)
            .with("fairness_ratio", fairness)
    }

    #[test]
    fn fairness_compare_gates_p999_growth_and_the_newest_ratio() {
        // Balanced and flat: ok.
        let records = vec![mt_record(4, 2000.0, 1.1), mt_record(4, 4000.0, 1.3)];
        let c = compare_latest_fairness(&records, SERVE_THRESHOLD, FAIRNESS_THRESHOLD).unwrap();
        assert!(!c.regressed, "{c}");
        assert_eq!(c.p999_ratio, 2.0);
        assert_eq!(c.tenants, 16);
        // A >4× p99.9 blowup trips the latency side.
        let records = vec![mt_record(4, 2000.0, 1.1), mt_record(4, 9000.0, 1.1)];
        assert!(
            compare_latest_fairness(&records, SERVE_THRESHOLD, FAIRNESS_THRESHOLD)
                .unwrap()
                .regressed
        );
        // A starved tenant trips the fairness side even with flat
        // latency — the ratio is absolute, judged on the newest run
        // alone, so an injection cannot hide behind a calm older run.
        let records = vec![mt_record(4, 2000.0, 1.1), mt_record(4, 2000.0, 9.7)];
        let c = compare_latest_fairness(&records, SERVE_THRESHOLD, FAIRNESS_THRESHOLD).unwrap();
        assert!(c.regressed, "{c}");
        assert!(c.to_string().contains("REGRESSED"), "{c}");
    }

    #[test]
    fn fairness_compare_needs_two_mt_records_with_full_fields() {
        // Single-tenant serve records do not feed the mt gate.
        let records = vec![serve_record(4, 400.0, 5000.0), mt_record(4, 2000.0, 1.1)];
        assert_eq!(
            compare_latest_fairness(&records, SERVE_THRESHOLD, FAIRNESS_THRESHOLD),
            Err(CompareError::TooFewRecords {
                found: 1,
                experiments: "serve-bench-mt".to_owned()
            })
        );
        let records = vec![mt_record(2, 2000.0, 1.1), mt_record(4, 2000.0, 1.1)];
        assert_eq!(
            compare_latest_fairness(&records, SERVE_THRESHOLD, FAIRNESS_THRESHOLD),
            Err(CompareError::ThreadMismatch { older: 2, newer: 4 })
        );
        let bad = vec![
            mt_record(4, 2000.0, 1.1),
            Value::obj()
                .with("experiments", "serve-bench-mt")
                .with("threads", 4u64),
        ];
        assert_eq!(
            compare_latest_fairness(&bad, SERVE_THRESHOLD, FAIRNESS_THRESHOLD),
            Err(CompareError::MissingField("p999_us"))
        );
    }

    fn soak_record(
        threads: u64,
        mttr_p99_us: f64,
        availability: f64,
        incidents: u64,
        unhealed: u64,
    ) -> Value {
        Value::obj()
            .with("schema", SCHEMA_VERSION)
            .with("experiments", "soak")
            .with("threads", threads)
            .with("incidents", incidents)
            .with("unhealed", unhealed)
            .with("mttr_p99_us", mttr_p99_us)
            .with("availability", availability)
    }

    #[test]
    fn soak_compare_gates_mttr_growth_and_the_newest_health() {
        // MTTR doubled but everything healed and availability held: ok.
        let records = vec![
            soak_record(2, 100_000.0, 1.0, 4, 0),
            soak_record(2, 200_000.0, 0.995, 4, 0),
        ];
        let c =
            compare_latest_soak(&records, SOAK_MTTR_THRESHOLD, SOAK_AVAILABILITY_FLOOR).unwrap();
        assert!(!c.regressed, "{c}");
        assert_eq!(c.mttr_ratio, 2.0);
        assert_eq!(c.incidents, 4);
        // A >4× recovery blowup trips the MTTR side.
        let records = vec![
            soak_record(2, 100_000.0, 1.0, 4, 0),
            soak_record(2, 500_000.0, 1.0, 4, 0),
        ];
        assert!(
            compare_latest_soak(&records, SOAK_MTTR_THRESHOLD, SOAK_AVAILABILITY_FLOOR)
                .unwrap()
                .regressed
        );
        // An availability dip trips the floor even with flat MTTR —
        // absolute on the newest run, so an outage cannot hide behind a
        // calm older baseline.
        let records = vec![
            soak_record(2, 100_000.0, 1.0, 4, 0),
            soak_record(2, 100_000.0, 0.97, 4, 0),
        ];
        let c =
            compare_latest_soak(&records, SOAK_MTTR_THRESHOLD, SOAK_AVAILABILITY_FLOOR).unwrap();
        assert!(c.regressed, "{c}");
        assert!(c.to_string().contains("REGRESSED"), "{c}");
        // A single unhealed incident trips it outright — this is the
        // deterministic red leg: recalibration sabotaged, nothing heals.
        let records = vec![
            soak_record(2, 100_000.0, 1.0, 4, 0),
            soak_record(2, 100_000.0, 1.0, 4, 1),
        ];
        assert!(
            compare_latest_soak(&records, SOAK_MTTR_THRESHOLD, SOAK_AVAILABILITY_FLOOR)
                .unwrap()
                .regressed
        );
    }

    #[test]
    fn soak_compare_needs_two_soak_records_with_full_fields() {
        // Other serve-side records in the journal do not feed the gate.
        let records = vec![
            serve_record(4, 400.0, 5000.0),
            soak_record(2, 100_000.0, 1.0, 4, 0),
        ];
        assert_eq!(
            compare_latest_soak(&records, SOAK_MTTR_THRESHOLD, SOAK_AVAILABILITY_FLOOR),
            Err(CompareError::TooFewRecords {
                found: 1,
                experiments: "soak".to_owned()
            })
        );
        let records = vec![
            soak_record(1, 100_000.0, 1.0, 4, 0),
            soak_record(2, 100_000.0, 1.0, 4, 0),
        ];
        assert_eq!(
            compare_latest_soak(&records, SOAK_MTTR_THRESHOLD, SOAK_AVAILABILITY_FLOOR),
            Err(CompareError::ThreadMismatch { older: 1, newer: 2 })
        );
        let bad = vec![
            soak_record(2, 100_000.0, 1.0, 4, 0),
            Value::obj()
                .with("experiments", "soak")
                .with("threads", 2u64),
        ];
        assert_eq!(
            compare_latest_soak(&bad, SOAK_MTTR_THRESHOLD, SOAK_AVAILABILITY_FLOOR),
            Err(CompareError::MissingField("mttr_p99_us"))
        );
    }

    fn restart_record(
        threads: u64,
        cold_start_us: f64,
        warm_start_us: f64,
        banks_restored: u64,
        banks_recalibrated: u64,
        replay_mismatches: u64,
    ) -> Value {
        Value::obj()
            .with("schema", SCHEMA_VERSION)
            .with("experiments", "restart")
            .with("threads", threads)
            .with("cold_start_us", cold_start_us)
            .with("warm_start_us", warm_start_us)
            .with("banks_restored", banks_restored)
            .with("banks_recalibrated", banks_recalibrated)
            .with("wal_records_replayed", 12u64)
            .with("replay_mismatches", replay_mismatches)
    }

    #[test]
    fn restart_compare_gates_warm_growth_and_the_newest_recovery() {
        // Warm start half the cold start, a bank restored, no
        // divergence: ok even when the warm time doubled run-over-run.
        let records = vec![
            restart_record(2, 900_000.0, 100_000.0, 1, 0, 0),
            restart_record(2, 900_000.0, 200_000.0, 1, 0, 0),
        ];
        let c = compare_latest_restart(&records, RESTART_THRESHOLD).unwrap();
        assert!(!c.regressed, "{c}");
        assert_eq!(c.warm_ratio, 2.0);
        assert_eq!(c.banks_restored, 1);
        // A >4× warm-start blowup trips the growth side.
        let records = vec![
            restart_record(2, 9_000_000.0, 100_000.0, 1, 0, 0),
            restart_record(2, 9_000_000.0, 500_000.0, 1, 0, 0),
        ];
        assert!(
            compare_latest_restart(&records, RESTART_THRESHOLD)
                .unwrap()
                .regressed
        );
        // The correctness legs are absolute on the newest run: zero
        // banks restored, any replay divergence, any forced
        // recalibration, or warm slower than cold each trip alone.
        for newest in [
            restart_record(2, 900_000.0, 100_000.0, 0, 0, 0),
            restart_record(2, 900_000.0, 100_000.0, 1, 0, 3),
            restart_record(2, 900_000.0, 100_000.0, 1, 1, 0),
            restart_record(2, 900_000.0, 950_000.0, 1, 0, 0),
        ] {
            let records = vec![restart_record(2, 900_000.0, 100_000.0, 1, 0, 0), newest];
            let c = compare_latest_restart(&records, RESTART_THRESHOLD).unwrap();
            assert!(c.regressed, "{c}");
            assert!(c.to_string().contains("REGRESSED"), "{c}");
        }
    }

    #[test]
    fn restart_compare_needs_two_restart_records_with_full_fields() {
        let records = vec![
            soak_record(2, 100_000.0, 1.0, 4, 0),
            restart_record(2, 900_000.0, 100_000.0, 1, 0, 0),
        ];
        assert_eq!(
            compare_latest_restart(&records, RESTART_THRESHOLD),
            Err(CompareError::TooFewRecords {
                found: 1,
                experiments: "restart".to_owned()
            })
        );
        let records = vec![
            restart_record(1, 900_000.0, 100_000.0, 1, 0, 0),
            restart_record(2, 900_000.0, 100_000.0, 1, 0, 0),
        ];
        assert_eq!(
            compare_latest_restart(&records, RESTART_THRESHOLD),
            Err(CompareError::ThreadMismatch { older: 1, newer: 2 })
        );
        let bad = vec![
            restart_record(2, 900_000.0, 100_000.0, 1, 0, 0),
            Value::obj()
                .with("experiments", "restart")
                .with("threads", 2u64),
        ];
        assert_eq!(
            compare_latest_restart(&bad, RESTART_THRESHOLD),
            Err(CompareError::MissingField("warm_start_us"))
        );
    }

    fn backends_record(violations: u64, drift: bool, detected: u64, expected: u64) -> Value {
        Value::obj()
            .with("experiments", "backends")
            .with("threads", 2u64)
            .with("contract_violations", violations)
            .with("reference_drift", drift)
            .with("faults_detected", detected)
            .with("faults_expected", expected)
    }

    #[test]
    fn backends_compare_is_absolute_on_the_newest_record() {
        // A single clean record passes — the gate needs no baseline.
        let c = compare_latest_backends(&[backends_record(0, false, 3, 3)]).unwrap();
        assert!(!c.regressed, "{c}");
        // Only the newest record is gated: an old violation is history.
        let records = vec![
            backends_record(2, true, 0, 3),
            backends_record(0, false, 3, 3),
        ];
        assert!(!compare_latest_backends(&records).unwrap().regressed);
        // Each leg trips alone.
        for red in [
            backends_record(1, false, 3, 3),
            backends_record(0, true, 3, 3),
            backends_record(0, false, 2, 3),
        ] {
            let c = compare_latest_backends(&[red]).unwrap();
            assert!(c.regressed, "{c}");
            assert!(c.to_string().contains("REGRESSED"), "{c}");
        }
        // Masked injection (0/0 faults) is not a failure.
        assert!(
            !compare_latest_backends(&[backends_record(0, false, 0, 0)])
                .unwrap()
                .regressed
        );
    }

    #[test]
    fn backends_compare_needs_a_record_with_full_fields() {
        let records = vec![soak_record(2, 100_000.0, 1.0, 4, 0)];
        assert_eq!(
            compare_latest_backends(&records),
            Err(CompareError::TooFewRecords {
                found: 0,
                experiments: "backends".to_owned()
            })
        );
        let bad = vec![Value::obj()
            .with("experiments", "backends")
            .with("threads", 2u64)];
        assert_eq!(
            compare_latest_backends(&bad),
            Err(CompareError::MissingField("contract_violations"))
        );
    }
}
