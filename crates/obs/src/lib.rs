//! Observability for the vardelay workspace — dependency-free, like
//! everything else here.
//!
//! Three layers, from hot to cold:
//!
//! 1. **Metrics** ([`metrics`]): process-wide named [`Counter`]s,
//!    streaming log₂-bucketed [`Histogram`]s (microsecond-scale by
//!    convention) and [`span`] timers that record into them on drop. All
//!    lock-free on the hot path (atomics only) and gated by
//!    [`enabled`] — instrumentation must never change experiment
//!    results, only describe them (pinned by
//!    `tests/runner_determinism.rs`).
//! 2. **JSON** ([`json`]): a hand-rolled [`json::Value`] with a compact
//!    renderer and a recursive-descent parser. The workspace has no
//!    `serde`; this is the one place JSON is read or written.
//! 3. **Journal** ([`journal`]): an append-only JSONL benchmark journal
//!    (`BENCH_repro.json`) — one record per `repro` run — with a loader
//!    that also accepts the legacy single-object format, and a
//!    [`journal::compare_latest`] regression gate used by
//!    `repro compare` in CI.
//! 4. **Artifacts** ([`artifact`]): crash-safe stage-fsync-rename file
//!    publication and the FNV-1a content digest shared by repro
//!    checkpoints and the serve layer's calibration snapshots.
//!
//! # Examples
//!
//! ```
//! use vardelay_obs as obs;
//!
//! obs::counter("doc.events").incr();
//! {
//!     let _span = obs::span("doc.work_us");
//!     // ... timed work ...
//! }
//! assert!(obs::counter("doc.events").get() >= 1);
//! ```

pub mod artifact;
pub mod journal;
pub mod json;
pub mod metrics;

pub use metrics::{
    counter, enabled, histogram, registry, set_enabled, snapshot, span, Counter, Histogram,
    HistogramSummary, Registry, Snapshot, Span,
};
