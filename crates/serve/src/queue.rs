//! Bounded MPSC-ish queues with coalescing support.
//!
//! `std::sync::mpsc` has no bounded non-blocking push and no way to
//! pull *matching* entries out of the middle, so the server uses these
//! small `Mutex` + `Condvar` queues instead:
//!
//! * [`try_push`](BoundedQueue::try_push) never blocks — a full queue
//!   hands the item back so the caller can answer `overloaded`
//!   (backpressure is a *response*, not a stalled connection);
//! * [`drain_matching`](BoundedQueue::drain_matching) lets a worker
//!   coalesce same-channel `set_delay` requests into one solve;
//! * [`close`](BoundedQueue::close) + `pop → None` gives the graceful
//!   drain: workers finish everything queued, then exit.
//!
//! [`FairQueue`] keeps the same surface but segregates items into
//! per-key *lanes* (one per tenant) drained deficit-round-robin, so one
//! hot tenant fills only its own slice of the shared capacity budget
//! and cannot starve the others (DESIGN.md §14).

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// The queue. All methods are `&self`; share it behind an `Arc`.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push. Returns the item back when the queue is full
    /// or closed, so the producer can answer `overloaded` (or drop).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking pop. Returns `None` only once the queue is closed *and*
    /// empty — everything accepted before the close is still served.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Removes and returns every queued item matching `pred`, preserving
    /// arrival order. Used to coalesce a batch; non-matching items keep
    /// their positions.
    pub fn drain_matching(&self, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut kept = VecDeque::with_capacity(inner.items.len());
        let mut taken = Vec::new();
        for item in inner.items.drain(..) {
            if pred(&item) {
                taken.push(item);
            } else {
                kept.push_back(item);
            }
        }
        inner.items = kept;
        taken
    }

    /// Closes the queue: further pushes fail, pops drain the remainder
    /// then return `None`. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }
}

// ---------------------------------------------------------------------------
// FairQueue: per-key lanes drained deficit-round-robin
// ---------------------------------------------------------------------------

/// DRR quantum: credit added to a lane each time the rotation reaches
/// it. Every job costs one credit, so with unit costs the schedule
/// degenerates to exact per-tenant round robin — the deficit machinery
/// stays in place so a future weighted cost model drops in unchanged.
const DRR_QUANTUM: u64 = 1;

/// Cost charged per job popped from a lane.
const DRR_COST: u64 = 1;

/// A bounded fair queue: items are segregated into per-key lanes (the
/// server keys lanes by tenant hash) and drained deficit-round-robin.
///
/// Capacity is **per lane** — that is each tenant's whole slice, so a
/// hot tenant draws `overloaded` from its own full lane while everyone
/// else still has room. All methods are `&self`; share behind an `Arc`.
#[derive(Debug)]
pub struct FairQueue<T> {
    inner: Mutex<FairInner<T>>,
    ready: Condvar,
    lane_capacity: usize,
}

#[derive(Debug)]
struct Lane<T> {
    items: VecDeque<T>,
    deficit: u64,
}

#[derive(Debug)]
struct FairInner<T> {
    lanes: HashMap<u64, Lane<T>>,
    /// Rotation order over non-empty lanes. Invariant: `active` holds
    /// exactly the keys of `lanes`, each once, and every lane in
    /// `lanes` is non-empty.
    active: VecDeque<u64>,
    total: usize,
    closed: bool,
}

impl<T> FairQueue<T> {
    /// A fair queue whose lanes each hold at most `lane_capacity` items
    /// (clamped to ≥ 1).
    pub fn new(lane_capacity: usize) -> Self {
        FairQueue {
            inner: Mutex::new(FairInner {
                lanes: HashMap::new(),
                active: VecDeque::new(),
                total: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            lane_capacity: lane_capacity.max(1),
        }
    }

    /// The per-lane capacity the queue was built with.
    pub fn lane_capacity(&self) -> usize {
        self.lane_capacity
    }

    /// Items currently queued across every lane.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).total
    }

    /// Whether every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push into `key`'s lane. Returns the item back when
    /// that lane is full or the queue is closed, so the producer can
    /// answer `overloaded` — other tenants' lanes are unaffected.
    pub fn try_push(&self, key: u64, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed {
            return Err(item);
        }
        let lane = inner.lanes.entry(key).or_insert_with(|| Lane {
            items: VecDeque::new(),
            deficit: 0,
        });
        if lane.items.len() >= self.lane_capacity {
            return Err(item);
        }
        let was_empty = lane.items.is_empty();
        lane.items.push_back(item);
        inner.total += 1;
        if was_empty {
            inner.active.push_back(key);
        }
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking DRR pop. Returns `None` only once the queue is closed
    /// *and* every lane is empty. Each visit to the head lane adds
    /// [`DRR_QUANTUM`] credit; a lane that can afford [`DRR_COST`]
    /// serves one item, otherwise it rotates to the back still holding
    /// its credit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            while let Some(&key) = inner.active.front() {
                let lane = inner.lanes.get_mut(&key).expect("active lane exists");
                lane.deficit += DRR_QUANTUM;
                if lane.deficit < DRR_COST {
                    inner.active.rotate_left(1);
                    continue;
                }
                lane.deficit -= DRR_COST;
                let item = lane.items.pop_front().expect("active lane is non-empty");
                let lane_empty = lane.items.is_empty();
                inner.total -= 1;
                if lane_empty {
                    // Empty lanes forfeit their credit and leave the
                    // rotation; a fresh burst starts from zero.
                    inner.lanes.remove(&key);
                    inner.active.pop_front();
                } else {
                    inner.active.rotate_left(1);
                }
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Removes and returns every item in `key`'s lane matching `pred`,
    /// preserving arrival order. Batching stays lane-local: a worker
    /// coalescing one tenant's same-channel solves never steals another
    /// tenant's queued work.
    pub fn drain_matching(&self, key: u64, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let Some(lane) = inner.lanes.get_mut(&key) else {
            return Vec::new();
        };
        let mut kept = VecDeque::with_capacity(lane.items.len());
        let mut taken = Vec::new();
        for item in lane.items.drain(..) {
            if pred(&item) {
                taken.push(item);
            } else {
                kept.push_back(item);
            }
        }
        lane.items = kept;
        let lane_empty = lane.items.is_empty();
        inner.total -= taken.len();
        if lane_empty {
            inner.lanes.remove(&key);
            inner.active.retain(|&k| k != key);
        }
        taken
    }

    /// Closes the queue: further pushes fail, pops drain the remainder
    /// then return `None`. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_matching_preserves_order_of_both_halves() {
        let q = BoundedQueue::new(8);
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        let evens = q.drain_matching(|&i| i % 2 == 0);
        assert_eq!(evens, vec![0, 2, 4]);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(5));
    }

    #[test]
    fn close_drains_the_remainder_then_ends() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(10).unwrap();
        q.close();
        assert_eq!(q.try_push(11), Err(11));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), None);

        // A popper blocked on an empty queue wakes on close.
        let q2 = Arc::new(BoundedQueue::<u32>::new(4));
        let waiter = {
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn fair_queue_interleaves_a_hot_lane_with_a_quiet_one() {
        let q = FairQueue::new(16);
        // Tenant 1 bursts eight jobs before tenant 2 queues two.
        for i in 0..8 {
            q.try_push(1, (1, i)).unwrap();
        }
        for i in 0..2 {
            q.try_push(2, (2, i)).unwrap();
        }
        // DRR alternates lanes; the quiet tenant's two jobs come out in
        // positions 2 and 4, not 9 and 10 as FIFO would place them.
        let order: Vec<_> = (0..10).map(|_| q.pop().unwrap()).collect();
        assert_eq!(order[1], (2, 0));
        assert_eq!(order[3], (2, 1));
        let lane1: Vec<_> = order.iter().filter(|(t, _)| *t == 1).collect();
        assert_eq!(lane1.len(), 8, "per-lane FIFO order survives");
        assert!(lane1.windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn fair_queue_capacity_is_per_lane() {
        let q = FairQueue::new(2);
        assert!(q.try_push(1, "a").is_ok());
        assert!(q.try_push(1, "b").is_ok());
        // Lane 1 is full — but lane 2 still has its own slice.
        assert_eq!(q.try_push(1, "c"), Err("c"));
        assert!(q.try_push(2, "d").is_ok());
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn fair_queue_drain_matching_is_lane_local() {
        let q = FairQueue::new(8);
        q.try_push(1, 10).unwrap();
        q.try_push(1, 11).unwrap();
        q.try_push(2, 12).unwrap();
        // Draining lane 1's even items must not touch lane 2's 12.
        assert_eq!(q.drain_matching(1, |&v| v % 2 == 0), vec![10]);
        assert_eq!(q.len(), 2);
        let rest: Vec<_> = (0..2).map(|_| q.pop().unwrap()).collect();
        assert!(rest.contains(&11) && rest.contains(&12));
    }

    #[test]
    fn fair_queue_close_drains_every_lane_then_ends() {
        let q = Arc::new(FairQueue::new(4));
        q.try_push(7, 1).unwrap();
        q.try_push(8, 2).unwrap();
        q.close();
        assert_eq!(q.try_push(9, 3), Err(3));
        let mut drained = vec![q.pop().unwrap(), q.pop().unwrap()];
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2]);
        assert_eq!(q.pop(), None);

        let q2 = Arc::new(FairQueue::<u32>::new(4));
        let waiter = {
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
