//! A bounded MPSC-ish queue with coalescing support.
//!
//! `std::sync::mpsc` has no bounded non-blocking push and no way to
//! pull *matching* entries out of the middle, so the server uses this
//! small `Mutex<VecDeque>` + `Condvar` queue instead:
//!
//! * [`try_push`](BoundedQueue::try_push) never blocks — a full queue
//!   hands the item back so the caller can answer `overloaded`
//!   (backpressure is a *response*, not a stalled connection);
//! * [`drain_matching`](BoundedQueue::drain_matching) lets a worker
//!   coalesce same-channel `set_delay` requests into one solve;
//! * [`close`](BoundedQueue::close) + `pop → None` gives the graceful
//!   drain: workers finish everything queued, then exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// The queue. All methods are `&self`; share it behind an `Arc`.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push. Returns the item back when the queue is full
    /// or closed, so the producer can answer `overloaded` (or drop).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking pop. Returns `None` only once the queue is closed *and*
    /// empty — everything accepted before the close is still served.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Removes and returns every queued item matching `pred`, preserving
    /// arrival order. Used to coalesce a batch; non-matching items keep
    /// their positions.
    pub fn drain_matching(&self, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut kept = VecDeque::with_capacity(inner.items.len());
        let mut taken = Vec::new();
        for item in inner.items.drain(..) {
            if pred(&item) {
                taken.push(item);
            } else {
                kept.push_back(item);
            }
        }
        inner.items = kept;
        taken
    }

    /// Closes the queue: further pushes fail, pops drain the remainder
    /// then return `None`. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_matching_preserves_order_of_both_halves() {
        let q = BoundedQueue::new(8);
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        let evens = q.drain_matching(|&i| i % 2 == 0);
        assert_eq!(evens, vec![0, 2, 4]);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(5));
    }

    #[test]
    fn close_drains_the_remainder_then_ends() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(10).unwrap();
        q.close();
        assert_eq!(q.try_push(11), Err(11));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), None);

        // A popper blocked on an empty queue wakes on close.
        let q2 = Arc::new(BoundedQueue::<u32>::new(4));
        let waiter = {
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
