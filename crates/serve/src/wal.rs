//! The serve layer's write-ahead log (DESIGN.md §16).
//!
//! One line per state-mutating event, appended *before* the response
//! leaves the socket:
//!
//! ```text
//! <hex16-digest> <compact JSON record>\n
//! ```
//!
//! The digest is FNV-1a over the raw JSON substring exactly as written
//! (not a re-rendering), so validation never depends on the parser
//! canonicalizing whitespace or key order. A `kill -9` can land
//! mid-append; [`Wal::open`] keeps the longest valid prefix, drops the
//! torn tail, and rewrites the truncated file through `write_atomic`
//! before reopening for append — replay then sees only records whose
//! responses may have reached a client.
//!
//! Two record kinds:
//!
//! - [`WalRecord::Apply`] — a committed `set_delay` (the one request
//!   that mutates channel hardware state). Replay re-executes it
//!   through the restored tables, which is idempotent: programming the
//!   same picosecond target twice lands on the same tap/DAC codes.
//! - [`WalRecord::Dedup`] — a `req_id`-carrying response, logged so the
//!   idempotency window survives restart. Replay only re-seeds the
//!   dedup cache; it never re-executes.
//! - [`WalRecord::Health`] — a quarantine/probation transition from the
//!   sentinel loop. Replay overwrites the health table in record order,
//!   so the last logged transition wins.
//!
//! The log is bounded by snapshot-then-truncate compaction: once
//! `VARDELAY_SERVE_WAL_COMPACT` records are pending, the server
//! persists every resident bank and then empties the log. Replay is
//! idempotent precisely so a crash *between* those two steps (the
//! `wal-compact` kill point) is harmless — the next boot applies the
//! records a second time over already-snapshotted state and arrives at
//! the same place.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

use vardelay_obs::artifact::{digest, write_atomic};
use vardelay_obs::json::Value;

use crate::health::ChannelState;

/// One durable event.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A committed `set_delay`: re-executed on replay.
    Apply {
        /// Owning tenant (empty string = the default tenant).
        tenant: String,
        /// Channel index within the tenant's bank.
        channel: usize,
        /// The committed target, picoseconds. For a batched solve this
        /// is the last-write-wins target the bank actually programmed,
        /// not any individual waiter's ask.
        ps: f64,
    },
    /// A response cached for idempotent retries: re-seeds the dedup
    /// window on replay, never re-executes.
    Dedup {
        /// Owning tenant.
        tenant: String,
        /// The client-chosen idempotency key.
        req_id: String,
        /// The response, rendered as its wire JSON (without an `id` —
        /// the retry's own id is spliced in when it is replayed).
        response: String,
    },
    /// A health-state transition observed by the sentinel loop.
    Health {
        /// Owning tenant.
        tenant: String,
        /// Channel index.
        channel: usize,
        /// The state the channel moved to.
        state: ChannelState,
    },
}

impl WalRecord {
    fn to_json(&self) -> String {
        match self {
            WalRecord::Apply {
                tenant,
                channel,
                ps,
            } => Value::obj()
                .with("kind", "apply")
                .with("tenant", tenant.as_str())
                .with("channel", *channel as u64)
                .with("ps", *ps),
            WalRecord::Dedup {
                tenant,
                req_id,
                response,
            } => Value::obj()
                .with("kind", "dedup")
                .with("tenant", tenant.as_str())
                .with("req_id", req_id.as_str())
                .with("response", response.as_str()),
            WalRecord::Health {
                tenant,
                channel,
                state,
            } => Value::obj()
                .with("kind", "health")
                .with("tenant", tenant.as_str())
                .with("channel", *channel as u64)
                .with("state", state.to_wire().as_str()),
        }
        .render()
    }

    fn from_json(json: &str) -> Option<WalRecord> {
        let value = Value::parse(json).ok()?;
        let s = |field: &str| value.get(field).and_then(Value::as_str).map(str::to_owned);
        let n = |field: &str| value.get(field).and_then(Value::as_u64);
        match value.get("kind").and_then(Value::as_str)? {
            "apply" => Some(WalRecord::Apply {
                tenant: s("tenant")?,
                channel: n("channel")? as usize,
                ps: value.get("ps").and_then(Value::as_f64)?,
            }),
            "dedup" => Some(WalRecord::Dedup {
                tenant: s("tenant")?,
                req_id: s("req_id")?,
                response: s("response")?,
            }),
            "health" => Some(WalRecord::Health {
                tenant: s("tenant")?,
                channel: n("channel")? as usize,
                state: ChannelState::from_wire(&s("state")?)?,
            }),
            _ => None,
        }
    }

    fn to_line(&self) -> String {
        let json = self.to_json();
        format!("{:016x} {json}\n", digest(&json))
    }

    /// Parses one line (without its trailing newline), verifying the
    /// digest against the raw JSON substring.
    fn from_line(line: &str) -> Option<WalRecord> {
        let (hex, json) = line.split_once(' ')?;
        let recorded = u64::from_str_radix(hex, 16).ok()?;
        if digest(json) != recorded {
            return None;
        }
        WalRecord::from_json(json)
    }
}

/// An open, append-mode WAL.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: std::fs::File,
    pending: u64,
}

impl Wal {
    /// Opens (creating) the log at `path`, validates every line, and
    /// repairs a torn tail in place. Returns the WAL, the intact
    /// records in append order, and how many torn/corrupt tail lines
    /// were dropped (also counted in `wal.torn_records_dropped`).
    ///
    /// Validation stops at the first bad line: a digest is per-record,
    /// but append order is the log's semantics — records *after* a torn
    /// one cannot be trusted to have been acknowledged in order, so the
    /// valid prefix is the recovery set.
    ///
    /// # Errors
    ///
    /// The underlying I/O error from reading, rewriting a repaired
    /// prefix, or opening for append.
    pub fn open(path: &Path) -> io::Result<(Wal, Vec<WalRecord>, usize)> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut records = Vec::new();
        let mut keep = 0usize;
        let mut dropped = 0usize;
        for line in text.split_inclusive('\n') {
            let parsed = line.strip_suffix('\n').and_then(WalRecord::from_line);
            match parsed {
                Some(record) => {
                    records.push(record);
                    keep += line.len();
                }
                None => {
                    // Everything from the first bad line on is dropped.
                    dropped = text[keep..].split_inclusive('\n').count();
                    break;
                }
            }
        }
        if dropped > 0 {
            write_atomic(path, &text[..keep])?;
            vardelay_obs::counter("wal.torn_records_dropped").add(dropped as u64);
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let pending = records.len() as u64;
        Ok((
            Wal {
                path: path.to_path_buf(),
                file,
                pending,
            },
            records,
            dropped,
        ))
    }

    /// Appends one record and flushes it to the OS. No per-record
    /// fsync: the threat model is process death (`kill -9` preserves
    /// OS-buffered writes), and the snapshot pass at compaction is the
    /// fsynced durability point — DESIGN.md §16 spells out the
    /// power-loss window this trades away.
    ///
    /// # Errors
    ///
    /// The underlying I/O error from the write or flush.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        self.file.write_all(record.to_line().as_bytes())?;
        self.file.flush()?;
        self.pending += 1;
        vardelay_obs::counter("wal.records_appended").add(1);
        // The acknowledged-but-just-logged crash window: the record is
        // in the log, the response has not left the socket.
        vardelay_faults::kill_point("wal-append");
        Ok(())
    }

    /// Where the log lives on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended (or recovered) since the last truncation —
    /// the compaction trigger.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// Empties the log after a snapshot pass has made its records
    /// redundant.
    ///
    /// # Errors
    ///
    /// The underlying I/O error from truncating the file.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.pending = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("vardelay_wal_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Apply {
                tenant: String::new(),
                channel: 3,
                ps: 52.5,
            },
            WalRecord::Health {
                tenant: "acme".to_owned(),
                channel: 7,
                state: ChannelState::Quarantined,
            },
            WalRecord::Dedup {
                tenant: "acme".to_owned(),
                req_id: "retry-1".to_owned(),
                response: "{\"ok\":true,\"ps\":52.5}".to_owned(),
            },
            WalRecord::Health {
                tenant: "acme".to_owned(),
                channel: 7,
                state: ChannelState::Recovering { rounds: 2 },
            },
        ]
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let dir = scratch("roundtrip");
        let path = dir.join("wal.log");
        let records = sample_records();
        {
            let (mut wal, replay, dropped) = Wal::open(&path).unwrap();
            assert!(replay.is_empty());
            assert_eq!(dropped, 0);
            for record in &records {
                wal.append(record).unwrap();
            }
            assert_eq!(wal.pending(), records.len() as u64);
        }
        let (wal, replay, dropped) = Wal::open(&path).unwrap();
        assert_eq!(replay, records);
        assert_eq!(dropped, 0);
        assert_eq!(
            wal.pending(),
            records.len() as u64,
            "recovered records still count toward the compaction trigger"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_torn_tail_is_dropped_and_the_file_repaired() {
        let dir = scratch("torn");
        let path = dir.join("wal.log");
        {
            let (mut wal, _, _) = Wal::open(&path).unwrap();
            for record in sample_records() {
                wal.append(&record).unwrap();
            }
        }
        // Simulate a kill mid-append: lop off the last half-line.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 9]).unwrap();
        let (mut wal, replay, dropped) = Wal::open(&path).unwrap();
        assert_eq!(replay, sample_records()[..3].to_vec());
        assert_eq!(dropped, 1);
        // The file was repaired in place: append after repair yields a
        // clean log again.
        wal.append(&sample_records()[3]).unwrap();
        let (_, replay, dropped) = Wal::open(&path).unwrap();
        assert_eq!(replay, sample_records());
        assert_eq!(dropped, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_flipped_bit_invalidates_that_record_and_its_suffix() {
        let dir = scratch("flip");
        let path = dir.join("wal.log");
        {
            let (mut wal, _, _) = Wal::open(&path).unwrap();
            for record in sample_records() {
                wal.append(&record).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt a byte inside record 2's JSON (lines 0 and 1 intact).
        let second_line_end = bytes
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .map(|(i, _)| i)
            .nth(1)
            .unwrap();
        bytes[second_line_end + 30] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay, dropped) = Wal::open(&path).unwrap();
        assert_eq!(replay, sample_records()[..2].to_vec());
        assert_eq!(dropped, 2, "the corrupt record and everything after it");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_resets_the_compaction_trigger() {
        let dir = scratch("truncate");
        let path = dir.join("wal.log");
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        for record in sample_records() {
            wal.append(&record).unwrap();
        }
        wal.truncate().unwrap();
        assert_eq!(wal.pending(), 0);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        // The handle keeps appending cleanly after truncation.
        wal.append(&sample_records()[0]).unwrap();
        let (_, replay, dropped) = Wal::open(&path).unwrap();
        assert_eq!(replay, vec![sample_records()[0].clone()]);
        assert_eq!(dropped, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // Tenants and req_ids are arbitrary client strings; the line codec
    // must survive quotes, JSON escapes, and unicode without ever
    // mis-digesting.
    proptest::proptest! {
        #[test]
        fn record_lines_round_trip_under_seeded_fuzz(seed in proptest::any::<u64>()) {
            let mut rng = proptest::TestRng::new(seed);
            let tenant: String = (0..rng.below(12))
                .map(|_| char::from_u32(0x20 + rng.below(0x250) as u32).unwrap_or('x'))
                .collect();
            let record = match rng.below(3) {
                0 => WalRecord::Apply {
                    tenant,
                    channel: rng.below(8) as usize,
                    ps: rng.below(1000) as f64 * 0.125,
                },
                1 => WalRecord::Dedup {
                    tenant,
                    req_id: format!("r-{}", rng.next_u64()),
                    response: "{\"a\":\"b \\\" c\\n\"}".to_owned(),
                },
                _ => WalRecord::Health {
                    tenant,
                    channel: rng.below(8) as usize,
                    state: ChannelState::Recovering { rounds: rng.below(5) as u32 },
                },
            };
            let line = record.to_line();
            let parsed = WalRecord::from_line(line.strip_suffix('\n').unwrap());
            proptest::prop_assert_eq!(parsed, Some(record));
        }
    }
}
