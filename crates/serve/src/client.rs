//! A minimal blocking client: one request line out, one response line
//! back. Used by the `serve-bench` load generator, the e2e tests, and
//! anything else that wants to poke the server without hand-rolling
//! socket code.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{Envelope, Response};

/// A connected client. Requests are strictly request/response on one
/// connection; open more clients for concurrency.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects with a read timeout generous enough for drain-time
    /// stragglers (10 s).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        writer.set_read_timeout(Some(Duration::from_secs(10)))?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Sends one envelope and reads one response line.
    pub fn call(&mut self, envelope: &Envelope) -> std::io::Result<(Option<u64>, Response)> {
        let line = envelope.to_value().render();
        self.send_raw(&line)
    }

    /// Sends an arbitrary line (junk welcome — the protocol tests use
    /// this) and reads one response line.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<(Option<u64>, Response)> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Reads the next response line without sending anything.
    pub fn read_response(&mut self) -> std::io::Result<(Option<u64>, Response)> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::parse(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparsable response {line:?}: {e}"),
            )
        })
    }

    /// Fire-and-forget send (used to pipeline before reading).
    pub fn send_only(&mut self, envelope: &Envelope) -> std::io::Result<()> {
        let line = envelope.to_value().render();
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }
}
