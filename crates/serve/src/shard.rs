//! Sharding primitives: consistent hashing, tenant quotas, and the
//! lazily-populated LRU bank registry (DESIGN.md §14).
//!
//! * [`HashRing`] routes `(tenant, channel)` to a shard by FNV-1a
//!   consistent hashing over a ring of virtual nodes, so resizing the
//!   shard count from N to N+1 remaps only ~1/(N+1) of the keys — the
//!   rest keep their queue, their batch partners, and their cache
//!   locality.
//! * [`QuotaTable`] holds one token bucket per tenant: a hot tenant
//!   that exceeds its refill rate draws `overloaded` at admission while
//!   every other tenant's bucket is untouched.
//! * [`BankRegistry`] instantiates per-tenant calibration banks lazily
//!   (single-flight per tenant, same discipline as the characterization
//!   cache) and evicts the least-recently-used bank past the cap. All
//!   banks share one model fingerprint, so eviction is cheap to undo:
//!   re-admission re-calibrates through the fast-solve cache instead of
//!   re-sweeping.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use vardelay_core::config::ModelConfig;
use vardelay_core::CombinedDelayCircuit;
use vardelay_runner::Runner;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The lane key a tenant label hashes to (per-tenant fair-queue lane).
pub fn tenant_lane(tenant: &str) -> u64 {
    fnv1a(tenant.as_bytes())
}

/// Virtual nodes per shard. More vnodes smooth the key distribution;
/// 64 keeps the ring under a few KiB while holding the N → N+1 key
/// movement near the ideal 1/(N+1).
const VNODES_PER_SHARD: usize = 64;

/// A consistent-hash ring over shard indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring position, shard index)`, sorted by position.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// A ring over `shards` shards (clamped to ≥ 1).
    pub fn new(shards: usize) -> HashRing {
        let shards = shards.max(1);
        let mut points = Vec::with_capacity(shards * VNODES_PER_SHARD);
        for shard in 0..shards {
            for replica in 0..VNODES_PER_SHARD {
                let label = format!("shard-{shard}-vnode-{replica}");
                points.push((fnv1a(label.as_bytes()), shard));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        HashRing { points, shards }
    }

    /// The shard count the ring was built over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Routes a `(tenant, channel)` pair to a shard: the first vnode at
    /// or after the key's ring position, wrapping at the top.
    pub fn route(&self, tenant: &str, channel: usize) -> usize {
        let key = Self::route_key(tenant, channel);
        let at = self.points.partition_point(|&(pos, _)| pos < key);
        self.points[at % self.points.len()].1
    }

    /// The ring position of a `(tenant, channel)` pair.
    fn route_key(tenant: &str, channel: usize) -> u64 {
        let mut hash = FNV_OFFSET;
        for &b in tenant.as_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        // A separator byte keeps ("ab", 1) and ("a", ...) distinct, then
        // the channel index is folded in byte by byte.
        hash ^= b'/' as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
        for b in (channel as u64).to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }
}

/// Per-tenant token buckets: `rate` tokens per second refill up to
/// `burst`, one token per admitted request. `rate: None` disables
/// quotas entirely (the default — single-tenant deployments keep their
/// existing behavior).
#[derive(Debug)]
pub struct QuotaTable {
    rate: Option<f64>,
    burst: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

impl QuotaTable {
    /// A table refilling `rate` tokens/second (None = unlimited) with a
    /// `burst`-token cap.
    pub fn new(rate: Option<f64>, burst: f64) -> QuotaTable {
        QuotaTable {
            rate: rate.filter(|r| r.is_finite() && *r > 0.0),
            burst: burst.max(1.0),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Whether quotas are enforced at all.
    pub fn enforced(&self) -> bool {
        self.rate.is_some()
    }

    /// Tries to take one token from `tenant`'s bucket. `true` admits;
    /// `false` means the tenant is over quota and should be answered
    /// `overloaded` without touching the queues.
    pub fn admit(&self, tenant: &str) -> bool {
        let Some(rate) = self.rate else {
            return true;
        };
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let bucket = buckets.entry(tenant.to_owned()).or_insert(Bucket {
            tokens: self.burst,
            last: now,
        });
        let elapsed = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * rate).min(self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// One tenant's calibrated channel bank.
pub struct TenantBank {
    /// Per-channel circuits, each behind its own lock so different
    /// channels solve concurrently.
    pub channels: Vec<Mutex<CombinedDelayCircuit>>,
}

impl TenantBank {
    fn build(model: &ModelConfig, channels: usize, seed: u64, runner: Runner) -> TenantBank {
        let mut bank = Vec::with_capacity(channels);
        for _ in 0..channels {
            let mut circuit = CombinedDelayCircuit::new(model, seed);
            // Every bank shares the quiet-model fingerprint, so only the
            // process's very first calibration pays a full sweep; every
            // later bank (lazy tenants, LRU re-admissions) is served the
            // byte-identical table from the fast-solve cache.
            circuit.calibrate_with(runner);
            bank.push(Mutex::new(circuit));
        }
        TenantBank { channels: bank }
    }
}

impl std::fmt::Debug for TenantBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantBank")
            .field("channels", &self.channels.len())
            .finish()
    }
}

/// Lazily-populated, LRU-evicted map of tenant → calibrated bank.
///
/// Each slot is an `Arc<OnceLock<..>>` so concurrent first requests for
/// the same tenant single-flight the calibration (the builder runs
/// outside the registry lock; losers of the race block on the
/// `OnceLock`, not on the whole registry).
pub struct BankRegistry {
    model: ModelConfig,
    channels: usize,
    seed: u64,
    cap: usize,
    inner: Mutex<RegistryInner>,
}

struct RegistryInner {
    slots: HashMap<String, Arc<OnceLock<Arc<TenantBank>>>>,
    /// Least-recently-used first. Invariant: same keys as `slots`.
    lru: VecDeque<String>,
}

impl BankRegistry {
    /// A registry holding at most `cap` resident banks (clamped ≥ 1).
    pub fn new(model: ModelConfig, channels: usize, seed: u64, cap: usize) -> BankRegistry {
        BankRegistry {
            model,
            channels,
            seed,
            cap: cap.max(1),
            inner: Mutex::new(RegistryInner {
                slots: HashMap::new(),
                lru: VecDeque::new(),
            }),
        }
    }

    /// Banks currently resident.
    pub fn resident(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .slots
            .len()
    }

    /// The tenant's bank, calibrating it on first touch and refreshing
    /// its LRU position. Eviction only ever drops the registry's
    /// reference — in-flight requests holding the `Arc` finish on the
    /// evicted bank safely.
    pub fn get(&self, tenant: &str, runner: Runner) -> Arc<TenantBank> {
        let slot = {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.lru.retain(|t| t != tenant);
            let slot = match inner.slots.get(tenant) {
                Some(slot) => Arc::clone(slot),
                None => {
                    let slot = Arc::new(OnceLock::new());
                    inner.slots.insert(tenant.to_owned(), Arc::clone(&slot));
                    slot
                }
            };
            inner.lru.push_back(tenant.to_owned());
            while inner.lru.len() > self.cap {
                if let Some(cold) = inner.lru.pop_front() {
                    inner.slots.remove(&cold);
                    vardelay_obs::counter("serve.bank_evictions").add(1);
                }
            }
            slot
        };
        Arc::clone(slot.get_or_init(|| {
            vardelay_obs::counter("serve.bank_builds").add(1);
            Arc::new(TenantBank::build(
                &self.model,
                self.channels,
                self.seed,
                runner,
            ))
        }))
    }

    /// The tenant's bank if it is already resident *and* built — no
    /// calibration, no LRU refresh. The health supervisor and drift
    /// injection use this so observation never changes eviction order.
    pub fn peek(&self, tenant: &str) -> Option<Arc<TenantBank>> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.slots.get(tenant)?.get().cloned()
    }

    /// Every resident, fully-built bank with its tenant label, in LRU
    /// order (coldest first). Slots still mid-build are skipped — the
    /// supervisor has nothing to probe there yet.
    pub fn snapshot(&self) -> Vec<(String, Arc<TenantBank>)> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .lru
            .iter()
            .filter_map(|tenant| {
                let bank = inner.slots.get(tenant)?.get()?;
                Some((tenant.clone(), Arc::clone(bank)))
            })
            .collect()
    }
}

impl std::fmt::Debug for BankRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BankRegistry")
            .field("channels", &self.channels)
            .field("cap", &self.cap)
            .field("resident", &self.resident())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_ring_is_deterministic_and_covers_every_shard() {
        let ring = HashRing::new(4);
        let again = HashRing::new(4);
        let mut hit = [false; 4];
        for t in 0..64 {
            let tenant = format!("t{t:02}");
            for ch in 0..8 {
                let shard = ring.route(&tenant, ch);
                assert_eq!(shard, again.route(&tenant, ch));
                assert!(shard < 4);
                hit[shard] = true;
            }
        }
        assert!(hit.iter().all(|&h| h), "512 keys must reach all 4 shards");
    }

    #[test]
    fn growing_the_ring_by_one_moves_few_keys() {
        // The consistency property the ISSUE pins: N → N+1 keeps ≥ 90 %
        // of keys on their shard (ideal movement is 1/(N+1) ≈ 5.9 %).
        let before = HashRing::new(16);
        let after = HashRing::new(17);
        let mut stable = 0usize;
        let mut total = 0usize;
        for t in 0..64 {
            let tenant = format!("tenant-{t}");
            for ch in 0..8 {
                total += 1;
                if before.route(&tenant, ch) == after.route(&tenant, ch) {
                    stable += 1;
                }
            }
        }
        assert!(
            stable * 10 >= total * 9,
            "only {stable}/{total} keys stayed put"
        );
    }

    #[test]
    fn quota_buckets_are_per_tenant() {
        let quota = QuotaTable::new(Some(1.0), 3.0);
        // Tenant a burns its burst; tenant b's bucket is untouched.
        assert!(quota.admit("a"));
        assert!(quota.admit("a"));
        assert!(quota.admit("a"));
        assert!(!quota.admit("a"));
        assert!(quota.admit("b"));
        // No rate → unlimited.
        let open = QuotaTable::new(None, 1.0);
        assert!(!open.enforced());
        for _ in 0..100 {
            assert!(open.admit("a"));
        }
    }

    #[test]
    fn the_registry_evicts_least_recently_used_banks() {
        let registry = BankRegistry::new(ModelConfig::paper_prototype(), 1, 0x5e7e, 2);
        let runner = Runner::serial();
        let a = registry.get("a", runner);
        let _b = registry.get("b", runner);
        assert_eq!(registry.resident(), 2);
        // Touch a so b is now the LRU; admitting c evicts b.
        let a_again = registry.get("a", runner);
        assert!(Arc::ptr_eq(&a, &a_again), "a single-flights to one bank");
        let _c = registry.get("c", runner);
        assert_eq!(registry.resident(), 2);
        // b was evicted: getting it again builds a fresh bank, and the
        // registry still holds only `cap` banks.
        let _b2 = registry.get("b", runner);
        assert_eq!(registry.resident(), 2);
    }

    #[test]
    fn peek_and_snapshot_observe_without_perturbing_lru() {
        let registry = BankRegistry::new(ModelConfig::paper_prototype(), 1, 0x5e7e, 2);
        let runner = Runner::serial();
        assert!(registry.peek("a").is_none(), "peek must never build");
        let a = registry.get("a", runner);
        let _b = registry.get("b", runner);
        // Peeking a does NOT refresh it: a is still the LRU victim.
        assert!(Arc::ptr_eq(&registry.peek("a").unwrap(), &a));
        let snap = registry.snapshot();
        assert_eq!(
            snap.iter().map(|(t, _)| t.as_str()).collect::<Vec<_>>(),
            ["a", "b"],
            "snapshot is coldest-first"
        );
        let _c = registry.get("c", runner);
        assert!(registry.peek("a").is_none(), "a should have been evicted");
        assert!(registry.peek("b").is_some());
    }
}
