//! Sharding primitives: consistent hashing, tenant quotas, and the
//! lazily-populated LRU bank registry (DESIGN.md §14).
//!
//! * [`HashRing`] routes `(tenant, channel)` to a shard by FNV-1a
//!   consistent hashing over a ring of virtual nodes, so resizing the
//!   shard count from N to N+1 remaps only ~1/(N+1) of the keys — the
//!   rest keep their queue, their batch partners, and their cache
//!   locality.
//! * [`QuotaTable`] holds one token bucket per tenant: a hot tenant
//!   that exceeds its refill rate draws `overloaded` at admission while
//!   every other tenant's bucket is untouched.
//! * [`BankRegistry`] instantiates per-tenant calibration banks lazily
//!   (single-flight per tenant, same discipline as the characterization
//!   cache) and evicts the least-recently-used bank past the cap. All
//!   banks share one model fingerprint, so eviction is cheap to undo:
//!   re-admission re-calibrates through the fast-solve cache instead of
//!   re-sweeping.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use vardelay_backend::{make_backend, BackendKind, BackendSentinel, DelayBackend};
use vardelay_core::config::ModelConfig;
use vardelay_core::{CalibrationTable, SentinelConfig, SentinelVerdict};
use vardelay_runner::{task_seed, Runner};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The lane key a tenant label hashes to (per-tenant fair-queue lane).
pub fn tenant_lane(tenant: &str) -> u64 {
    fnv1a(tenant.as_bytes())
}

/// Virtual nodes per shard. More vnodes smooth the key distribution;
/// 64 keeps the ring under a few KiB while holding the N → N+1 key
/// movement near the ideal 1/(N+1).
const VNODES_PER_SHARD: usize = 64;

/// A consistent-hash ring over shard indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring position, shard index)`, sorted by position.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// A ring over `shards` shards (clamped to ≥ 1).
    pub fn new(shards: usize) -> HashRing {
        let shards = shards.max(1);
        let mut points = Vec::with_capacity(shards * VNODES_PER_SHARD);
        for shard in 0..shards {
            for replica in 0..VNODES_PER_SHARD {
                let label = format!("shard-{shard}-vnode-{replica}");
                points.push((fnv1a(label.as_bytes()), shard));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        HashRing { points, shards }
    }

    /// The shard count the ring was built over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Routes a `(tenant, channel)` pair to a shard: the first vnode at
    /// or after the key's ring position, wrapping at the top.
    pub fn route(&self, tenant: &str, channel: usize) -> usize {
        let key = Self::route_key(tenant, channel);
        let at = self.points.partition_point(|&(pos, _)| pos < key);
        self.points[at % self.points.len()].1
    }

    /// The ring position of a `(tenant, channel)` pair.
    fn route_key(tenant: &str, channel: usize) -> u64 {
        let mut hash = FNV_OFFSET;
        for &b in tenant.as_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        // A separator byte keeps ("ab", 1) and ("a", ...) distinct, then
        // the channel index is folded in byte by byte.
        hash ^= b'/' as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
        for b in (channel as u64).to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }
}

/// Per-tenant token buckets: `rate` tokens per second refill up to
/// `burst`, one token per admitted request. `rate: None` disables
/// quotas entirely (the default — single-tenant deployments keep their
/// existing behavior).
#[derive(Debug)]
pub struct QuotaTable {
    rate: Option<f64>,
    burst: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

impl QuotaTable {
    /// A table refilling `rate` tokens/second (None = unlimited) with a
    /// `burst`-token cap.
    pub fn new(rate: Option<f64>, burst: f64) -> QuotaTable {
        QuotaTable {
            rate: rate.filter(|r| r.is_finite() && *r > 0.0),
            burst: burst.max(1.0),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Whether quotas are enforced at all.
    pub fn enforced(&self) -> bool {
        self.rate.is_some()
    }

    /// Tries to take one token from `tenant`'s bucket. `true` admits;
    /// `false` means the tenant is over quota and should be answered
    /// `overloaded` without touching the queues.
    pub fn admit(&self, tenant: &str) -> bool {
        let Some(rate) = self.rate else {
            return true;
        };
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let bucket = buckets.entry(tenant.to_owned()).or_insert(Bucket {
            tokens: self.burst,
            last: now,
        });
        let elapsed = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * rate).min(self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// The identity of one calibration bank: a tenant label plus the
/// [`BackendKind`] serving it (DESIGN.md §17).
///
/// The server-default backend's banks carry the bare tenant label
/// everywhere the pre-backend code did (persistence paths, health keys,
/// WAL records), so existing deployments route and restore unchanged; a
/// wire-selected non-default backend gets its own bank under the same
/// tenant — two hardware families never share a calibration table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BankId {
    tenant: String,
    kind: BackendKind,
}

impl BankId {
    /// A bank identity for `tenant` served by `kind`.
    pub fn new(tenant: impl Into<String>, kind: BackendKind) -> BankId {
        BankId {
            tenant: tenant.into(),
            kind,
        }
    }

    /// The tenant label (empty = the default tenant).
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The backend family serving this bank.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }
}

/// Durability callbacks the server installs on the registry
/// (DESIGN.md §16). The registry itself stays storage-agnostic: it asks
/// `restore` for a trusted table before calibrating, reports every
/// finished build through `built`, and reports evictions through
/// `evicted` so a bank's tables *and* health state can be persisted
/// before the registry's only reference drops. All methods default to
/// no-ops — a server without a state dir installs nothing.
pub trait BankHooks: Send + Sync {
    /// A trusted persisted table for `(bank, channel)`, or `None` to
    /// calibrate fresh. Implementations own corruption/fingerprint
    /// checks; a returned table still faces the sentinel verification
    /// in [`TenantBank`]'s build before it is served.
    fn restore(&self, _id: &BankId, _channel: usize) -> Option<CalibrationTable> {
        None
    }

    /// Called once per completed bank build, outside the registry lock.
    /// `restored[ch]` is `true` when channel `ch` was answered from a
    /// snapshot rather than freshly calibrated.
    fn built(&self, _id: &BankId, _bank: &TenantBank, _restored: &[bool]) {}

    /// Called after the registry dropped its reference to an evicted
    /// bank, outside the registry lock. In-flight requests may still be
    /// finishing on it; per-channel locks make persisting safe.
    fn evicted(&self, _id: &BankId, _bank: &TenantBank) {}
}

/// One tenant's calibrated channel bank.
pub struct TenantBank {
    /// Per-channel delay backends, each behind its own lock so
    /// different channels solve concurrently.
    pub channels: Vec<Mutex<Box<dyn DelayBackend>>>,
    /// The hardware family every channel in this bank belongs to.
    pub kind: BackendKind,
}

impl TenantBank {
    /// Builds the bank, answering each channel from `hooks.restore`
    /// where possible. A restored table is trusted only after one
    /// sentinel probe sweep against the live backend agrees with it —
    /// a stale or mismatched table falls back to a fresh calibration
    /// rather than ever serving a wrong answer.
    fn build(
        model: &ModelConfig,
        channels: usize,
        seed: u64,
        runner: Runner,
        hooks: Option<&Arc<dyn BankHooks>>,
        id: &BankId,
    ) -> (TenantBank, Vec<bool>) {
        // Phase 1, fanned out per channel through the runner: build the
        // circuit and attempt the snapshot restore. The sentinel probes
        // are real measurements — the expensive part of a warm boot —
        // so the restore verification spends a single probe per
        // channel: the snapshot digest already rules out bit-rot, the
        // probe rules out a *stale* table (a drifted circuit moves
        // every grid point, so one seeded point sees it), and the
        // health supervisor re-sweeps every resident channel at full
        // probe depth within one period of boot. Three probes here
        // would cost more wall clock than the fresh calibration the
        // snapshots exist to avoid (24 measurements against a
        // 17-point sweep).
        let boot_verify = SentinelConfig {
            probes: 1,
            ..SentinelConfig::default()
        };
        let verified: Vec<(Box<dyn DelayBackend>, bool)> = runner.run(channels, |ch| {
            let mut backend = make_backend(id.kind(), model, seed);
            let mut trusted = false;
            if let Some(table) = hooks.and_then(|h| h.restore(id, ch)) {
                backend.install_calibration(table);
                trusted = BackendSentinel::from_backend(backend.as_ref(), boot_verify)
                    .map(|sentinel| {
                        sentinel.run(task_seed(seed, ch as u64)).verdict()
                            == SentinelVerdict::Healthy
                    })
                    .unwrap_or(false);
                if trusted {
                    vardelay_obs::counter("recovery.channels_restored").add(1);
                } else {
                    vardelay_obs::counter("recovery.channels_rejected").add(1);
                }
            }
            (backend, trusted)
        });
        // Phase 2, sequential: calibrate whatever the snapshots did not
        // cover. Every bank shares the quiet-model fingerprint, so only
        // the process's very first calibration pays a full sweep (which
        // itself parallelizes through the same runner); every later
        // bank (lazy tenants, LRU re-admissions, rejected snapshots) is
        // served the byte-identical table from the fast-solve cache.
        let mut bank = Vec::with_capacity(channels);
        let mut restored = vec![false; channels];
        for (ch, (mut backend, trusted)) in verified.into_iter().enumerate() {
            if !trusted {
                backend.calibrate_with(runner);
            }
            restored[ch] = trusted;
            bank.push(Mutex::new(backend));
        }
        (
            TenantBank {
                channels: bank,
                kind: id.kind(),
            },
            restored,
        )
    }
}

impl std::fmt::Debug for TenantBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantBank")
            .field("channels", &self.channels.len())
            .field("kind", &self.kind)
            .finish()
    }
}

/// Lazily-populated, LRU-evicted map of [`BankId`] → calibrated bank.
///
/// Each slot is an `Arc<OnceLock<..>>` so concurrent first requests for
/// the same bank single-flight the calibration (the builder runs
/// outside the registry lock; losers of the race block on the
/// `OnceLock`, not on the whole registry).
pub struct BankRegistry {
    model: ModelConfig,
    channels: usize,
    seed: u64,
    cap: usize,
    hooks: OnceLock<Arc<dyn BankHooks>>,
    inner: Mutex<RegistryInner>,
}

struct RegistryInner {
    slots: HashMap<BankId, Arc<OnceLock<Arc<TenantBank>>>>,
    /// Least-recently-used first. Invariant: same keys as `slots`.
    lru: VecDeque<BankId>,
}

impl BankRegistry {
    /// A registry holding at most `cap` resident banks (clamped ≥ 1).
    pub fn new(model: ModelConfig, channels: usize, seed: u64, cap: usize) -> BankRegistry {
        BankRegistry {
            model,
            channels,
            seed,
            cap: cap.max(1),
            hooks: OnceLock::new(),
            inner: Mutex::new(RegistryInner {
                slots: HashMap::new(),
                lru: VecDeque::new(),
            }),
        }
    }

    /// Installs the durability hooks. First install wins; must happen
    /// before any bank is built (the server wires this up before it
    /// starts accepting).
    pub fn set_hooks(&self, hooks: Arc<dyn BankHooks>) {
        let _ = self.hooks.set(hooks);
    }

    /// Banks currently resident.
    pub fn resident(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .slots
            .len()
    }

    /// The bank for `id`, calibrating it on first touch and refreshing
    /// its LRU position. Eviction only ever drops the registry's
    /// reference — in-flight requests holding the `Arc` finish on the
    /// evicted bank safely.
    pub fn get(&self, id: &BankId, runner: Runner) -> Arc<TenantBank> {
        let (slot, evicted) = {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.lru.retain(|t| t != id);
            let slot = match inner.slots.get(id) {
                Some(slot) => Arc::clone(slot),
                None => {
                    let slot = Arc::new(OnceLock::new());
                    inner.slots.insert(id.clone(), Arc::clone(&slot));
                    slot
                }
            };
            inner.lru.push_back(id.clone());
            let mut evicted = Vec::new();
            while inner.lru.len() > self.cap {
                if let Some(cold) = inner.lru.pop_front() {
                    if let Some(dropped) = inner.slots.remove(&cold) {
                        // A slot still mid-build has nothing to persist.
                        if let Some(bank) = dropped.get() {
                            evicted.push((cold, Arc::clone(bank)));
                        }
                    }
                    vardelay_obs::counter("serve.bank_evictions").add(1);
                }
            }
            (slot, evicted)
        };
        // Eviction hooks run outside the registry lock: persisting a
        // bank takes its per-channel locks, and a request may be
        // mid-solve on one of them.
        if let Some(hooks) = self.hooks.get() {
            for (cold, bank) in &evicted {
                hooks.evicted(cold, bank);
            }
        }
        Arc::clone(slot.get_or_init(|| {
            vardelay_obs::counter("serve.bank_builds").add(1);
            let (bank, restored) = TenantBank::build(
                &self.model,
                self.channels,
                self.seed,
                runner,
                self.hooks.get(),
                id,
            );
            let bank = Arc::new(bank);
            if let Some(hooks) = self.hooks.get() {
                hooks.built(id, &bank, &restored);
            }
            bank
        }))
    }

    /// The bank for `id` if it is already resident *and* built — no
    /// calibration, no LRU refresh. The health supervisor and drift
    /// injection use this so observation never changes eviction order.
    pub fn peek(&self, id: &BankId) -> Option<Arc<TenantBank>> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.slots.get(id)?.get().cloned()
    }

    /// Every resident, fully-built bank with its identity, in LRU
    /// order (coldest first). Slots still mid-build are skipped — the
    /// supervisor has nothing to probe there yet.
    pub fn snapshot(&self) -> Vec<(BankId, Arc<TenantBank>)> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .lru
            .iter()
            .filter_map(|id| {
                let bank = inner.slots.get(id)?.get()?;
                Some((id.clone(), Arc::clone(bank)))
            })
            .collect()
    }
}

impl std::fmt::Debug for BankRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BankRegistry")
            .field("channels", &self.channels)
            .field("cap", &self.cap)
            .field("resident", &self.resident())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_ring_is_deterministic_and_covers_every_shard() {
        let ring = HashRing::new(4);
        let again = HashRing::new(4);
        let mut hit = [false; 4];
        for t in 0..64 {
            let tenant = format!("t{t:02}");
            for ch in 0..8 {
                let shard = ring.route(&tenant, ch);
                assert_eq!(shard, again.route(&tenant, ch));
                assert!(shard < 4);
                hit[shard] = true;
            }
        }
        assert!(hit.iter().all(|&h| h), "512 keys must reach all 4 shards");
    }

    #[test]
    fn growing_the_ring_by_one_moves_few_keys() {
        // The consistency property the ISSUE pins: N → N+1 keeps ≥ 90 %
        // of keys on their shard (ideal movement is 1/(N+1) ≈ 5.9 %).
        let before = HashRing::new(16);
        let after = HashRing::new(17);
        let mut stable = 0usize;
        let mut total = 0usize;
        for t in 0..64 {
            let tenant = format!("tenant-{t}");
            for ch in 0..8 {
                total += 1;
                if before.route(&tenant, ch) == after.route(&tenant, ch) {
                    stable += 1;
                }
            }
        }
        assert!(
            stable * 10 >= total * 9,
            "only {stable}/{total} keys stayed put"
        );
    }

    #[test]
    fn quota_buckets_are_per_tenant() {
        let quota = QuotaTable::new(Some(1.0), 3.0);
        // Tenant a burns its burst; tenant b's bucket is untouched.
        assert!(quota.admit("a"));
        assert!(quota.admit("a"));
        assert!(quota.admit("a"));
        assert!(!quota.admit("a"));
        assert!(quota.admit("b"));
        // No rate → unlimited.
        let open = QuotaTable::new(None, 1.0);
        assert!(!open.enforced());
        for _ in 0..100 {
            assert!(open.admit("a"));
        }
    }

    fn circuit(tenant: &str) -> BankId {
        BankId::new(tenant, BackendKind::Circuit)
    }

    #[test]
    fn the_registry_evicts_least_recently_used_banks() {
        let registry = BankRegistry::new(ModelConfig::paper_prototype(), 1, 0x5e7e, 2);
        let runner = Runner::serial();
        let a = registry.get(&circuit("a"), runner);
        let _b = registry.get(&circuit("b"), runner);
        assert_eq!(registry.resident(), 2);
        // Touch a so b is now the LRU; admitting c evicts b.
        let a_again = registry.get(&circuit("a"), runner);
        assert!(Arc::ptr_eq(&a, &a_again), "a single-flights to one bank");
        let _c = registry.get(&circuit("c"), runner);
        assert_eq!(registry.resident(), 2);
        // b was evicted: getting it again builds a fresh bank, and the
        // registry still holds only `cap` banks.
        let _b2 = registry.get(&circuit("b"), runner);
        assert_eq!(registry.resident(), 2);
    }

    #[test]
    fn one_tenant_two_backends_is_two_distinct_banks() {
        let registry = BankRegistry::new(ModelConfig::paper_prototype(), 1, 0x5e7e, 4);
        let runner = Runner::serial();
        let circuit_bank = registry.get(&BankId::new("a", BackendKind::Circuit), runner);
        let vernier_bank = registry.get(&BankId::new("a", BackendKind::Vernier), runner);
        assert!(
            !Arc::ptr_eq(&circuit_bank, &vernier_bank),
            "different backend kinds must never share a bank"
        );
        assert_eq!(registry.resident(), 2);
        assert_eq!(circuit_bank.kind, BackendKind::Circuit);
        assert_eq!(vernier_bank.kind, BackendKind::Vernier);
        assert_eq!(
            circuit_bank.channels[0].lock().unwrap().kind(),
            BackendKind::Circuit
        );
        assert_eq!(
            vernier_bank.channels[0].lock().unwrap().kind(),
            BackendKind::Vernier
        );
    }

    #[test]
    fn hooks_observe_restores_builds_and_evictions() {
        #[derive(Default)]
        struct Recorder {
            table: Mutex<Option<CalibrationTable>>,
            events: Mutex<Vec<String>>,
        }
        impl BankHooks for Recorder {
            fn restore(&self, id: &BankId, channel: usize) -> Option<CalibrationTable> {
                self.events
                    .lock()
                    .unwrap()
                    .push(format!("restore {}/{channel}", id.tenant()));
                if id.tenant() == "warm" {
                    self.table.lock().unwrap().clone()
                } else {
                    None
                }
            }
            fn built(&self, id: &BankId, _bank: &TenantBank, restored: &[bool]) {
                self.events
                    .lock()
                    .unwrap()
                    .push(format!("built {} restored={restored:?}", id.tenant()));
            }
            fn evicted(&self, id: &BankId, _bank: &TenantBank) {
                self.events
                    .lock()
                    .unwrap()
                    .push(format!("evicted {}", id.tenant()));
            }
        }

        let registry = BankRegistry::new(ModelConfig::paper_prototype(), 1, 0x5e7e, 1);
        let hooks = Arc::new(Recorder::default());
        registry.set_hooks(Arc::clone(&hooks) as Arc<dyn BankHooks>);
        let runner = Runner::serial();
        // Cold build: restore declines, the bank calibrates fresh.
        let cold = registry.get(&circuit("cold"), runner);
        let table = cold.channels[0]
            .lock()
            .unwrap()
            .calibration()
            .unwrap()
            .clone();
        *hooks.table.lock().unwrap() = Some(table);
        // Admitting "warm" evicts "cold" (cap 1) and restores from the
        // hook's table, which the sentinel verifies as healthy.
        let warm = registry.get(&circuit("warm"), runner);
        let restored_table = warm.channels[0]
            .lock()
            .unwrap()
            .calibration()
            .unwrap()
            .clone();
        assert_eq!(
            restored_table.to_snapshot(),
            hooks.table.lock().unwrap().as_ref().unwrap().to_snapshot(),
            "restored table is the persisted one, bit-exact"
        );
        let events = hooks.events.lock().unwrap().clone();
        assert_eq!(
            events,
            vec![
                "restore cold/0".to_owned(),
                "built cold restored=[false]".to_owned(),
                "evicted cold".to_owned(),
                "restore warm/0".to_owned(),
                "built warm restored=[true]".to_owned(),
            ]
        );
    }

    #[test]
    fn peek_and_snapshot_observe_without_perturbing_lru() {
        let registry = BankRegistry::new(ModelConfig::paper_prototype(), 1, 0x5e7e, 2);
        let runner = Runner::serial();
        assert!(
            registry.peek(&circuit("a")).is_none(),
            "peek must never build"
        );
        let a = registry.get(&circuit("a"), runner);
        let _b = registry.get(&circuit("b"), runner);
        // Peeking a does NOT refresh it: a is still the LRU victim.
        assert!(Arc::ptr_eq(&registry.peek(&circuit("a")).unwrap(), &a));
        let snap = registry.snapshot();
        assert_eq!(
            snap.iter().map(|(id, _)| id.tenant()).collect::<Vec<_>>(),
            ["a", "b"],
            "snapshot is coldest-first"
        );
        let _c = registry.get(&circuit("c"), runner);
        assert!(
            registry.peek(&circuit("a")).is_none(),
            "a should have been evicted"
        );
        assert!(registry.peek(&circuit("b")).is_some());
    }
}
