//! Channel health: the sentinel-driven state machine behind the serve
//! layer's self-healing loop (DESIGN.md §15).
//!
//! The per-shard health supervisor feeds one [`SentinelVerdict`] per
//! resident channel per round into a [`HealthTable`]; the table walks
//! each channel through
//!
//! ```text
//! Healthy ── Drifting ──▶ Probation ── healthy ──▶ Healthy
//!    │                        │
//!    └─────── Broken ─────────┴──▶ Quarantined ── healthy ──▶ Recovering
//!                                       ▲                         │
//!                                       └──── any regression ─────┤
//!                                                                 ▼
//!                                        K consecutive healthy ▶ Healthy
//! ```
//!
//! and tells the supervisor what to do next ([`HealthAction`]). The
//! request path only ever asks one cheap question —
//! [`HealthTable::admits`] — under a short mutex; everything expensive
//! (probing, recalibration) happens on the supervisor thread.
//!
//! Probation keeps serving: a Drifting table is stale, not wrong, so
//! in-flight requests keep answering from it while the replacement is
//! built. Quarantine stops `set_delay` (structured `unavailable` with a
//! retry hint); a recovered channel must post `recovery_rounds`
//! consecutive healthy sentinel rounds before re-admission, so a
//! channel oscillating around the broken threshold cannot flap in and
//! out of service.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use vardelay_core::SentinelVerdict;

/// Where a channel sits in the health state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelState {
    /// Serving normally.
    Healthy,
    /// Sentinel saw drift; still serving from the stale table while a
    /// background recalibration runs.
    Probation,
    /// Sentinel saw gross error; `set_delay` answers `unavailable`
    /// until recalibration takes and probation clears.
    Quarantined,
    /// Recalibrated after quarantine; still rejecting until the counted
    /// number of consecutive healthy rounds is reached.
    Recovering {
        /// Consecutive healthy sentinel rounds posted so far.
        rounds: u32,
    },
}

impl ChannelState {
    /// The state's durable wire form, as written into calibration
    /// snapshots and WAL `health` records (DESIGN.md §16):
    /// `healthy` / `probation` / `quarantined` / `recovering:<rounds>`.
    pub fn to_wire(self) -> String {
        match self {
            ChannelState::Healthy => "healthy".to_owned(),
            ChannelState::Probation => "probation".to_owned(),
            ChannelState::Quarantined => "quarantined".to_owned(),
            ChannelState::Recovering { rounds } => format!("recovering:{rounds}"),
        }
    }

    /// Parses [`ChannelState::to_wire`] output; `None` on anything else
    /// (a corrupt state string rejects the whole snapshot — recovery
    /// never guesses).
    pub fn from_wire(wire: &str) -> Option<ChannelState> {
        Some(match wire {
            "healthy" => ChannelState::Healthy,
            "probation" => ChannelState::Probation,
            "quarantined" => ChannelState::Quarantined,
            other => ChannelState::Recovering {
                rounds: other.strip_prefix("recovering:")?.parse().ok()?,
            },
        })
    }
}

/// What the supervisor should do after reporting a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthAction {
    /// Nothing; the channel is where it should be.
    None,
    /// Build a fresh table on a copy and swap it in.
    Recalibrate,
}

#[derive(Debug)]
struct ChannelHealth {
    state: ChannelState,
    /// When the channel last left `Healthy` — the MTTR clock.
    unhealthy_since: Instant,
}

/// Shared health ledger: per-channel states plus the loop's counters.
///
/// One instance serves every shard; keys are `(tenant, channel)` so a
/// tenant's channel 3 and another tenant's channel 3 heal independently.
#[derive(Debug)]
pub struct HealthTable {
    channels: Mutex<HashMap<(String, usize), ChannelHealth>>,
    /// Consecutive healthy rounds required to leave `Recovering`.
    recovery_rounds: u32,
    sentinel_runs: AtomicU64,
    recalibrations: AtomicU64,
    quarantines: AtomicU64,
}

impl HealthTable {
    /// A table requiring `recovery_rounds` consecutive healthy sentinel
    /// rounds (clamped ≥ 1) before a quarantined channel is re-admitted.
    pub fn new(recovery_rounds: u32) -> HealthTable {
        HealthTable {
            channels: Mutex::new(HashMap::new()),
            recovery_rounds: recovery_rounds.max(1),
            sentinel_runs: AtomicU64::new(0),
            recalibrations: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
        }
    }

    /// Whether `set_delay` on this channel may proceed. Absent channels
    /// (never probed) are healthy by definition — the supervisor only
    /// ever *adds* restrictions it has evidence for.
    pub fn admits(&self, tenant: &str, channel: usize) -> bool {
        let channels = self.channels.lock().unwrap_or_else(|e| e.into_inner());
        match channels.get(&(tenant.to_owned(), channel)) {
            None => true,
            Some(h) => !matches!(
                h.state,
                ChannelState::Quarantined | ChannelState::Recovering { .. }
            ),
        }
    }

    /// The channel's current state (`Healthy` when never probed).
    pub fn state(&self, tenant: &str, channel: usize) -> ChannelState {
        let channels = self.channels.lock().unwrap_or_else(|e| e.into_inner());
        channels
            .get(&(tenant.to_owned(), channel))
            .map(|h| h.state)
            .unwrap_or(ChannelState::Healthy)
    }

    /// Feeds one sentinel verdict into the state machine and returns
    /// what the supervisor should do. Counts the run, counts quarantine
    /// entries, and records `health.mttr_us` whenever a channel makes
    /// it back to `Healthy`.
    pub fn observe(&self, tenant: &str, channel: usize, verdict: SentinelVerdict) -> HealthAction {
        self.sentinel_runs.fetch_add(1, Ordering::Relaxed);
        vardelay_obs::counter("health.sentinel_runs").add(1);
        let now = Instant::now();
        let mut channels = self.channels.lock().unwrap_or_else(|e| e.into_inner());
        let entry = channels
            .entry((tenant.to_owned(), channel))
            .or_insert(ChannelHealth {
                state: ChannelState::Healthy,
                unhealthy_since: now,
            });
        let was = entry.state;
        let (next, action) = match (was, verdict) {
            (ChannelState::Healthy, SentinelVerdict::Healthy) => {
                (ChannelState::Healthy, HealthAction::None)
            }
            // Drift: enter (or stay in) probation and keep rebuilding
            // until a round comes back clean.
            (ChannelState::Healthy | ChannelState::Probation, SentinelVerdict::Drifting) => {
                (ChannelState::Probation, HealthAction::Recalibrate)
            }
            (ChannelState::Probation, SentinelVerdict::Healthy) => {
                (ChannelState::Healthy, HealthAction::None)
            }
            // Gross error from anywhere: quarantine and rebuild.
            (_, SentinelVerdict::Broken) => (ChannelState::Quarantined, HealthAction::Recalibrate),
            // A clean round after quarantine starts the re-admission
            // count; `recovery_rounds` of them in a row re-admit.
            (ChannelState::Quarantined, SentinelVerdict::Healthy) => {
                if self.recovery_rounds <= 1 {
                    (ChannelState::Healthy, HealthAction::None)
                } else {
                    (ChannelState::Recovering { rounds: 1 }, HealthAction::None)
                }
            }
            (ChannelState::Recovering { rounds }, SentinelVerdict::Healthy) => {
                if rounds + 1 >= self.recovery_rounds {
                    (ChannelState::Healthy, HealthAction::None)
                } else {
                    (
                        ChannelState::Recovering { rounds: rounds + 1 },
                        HealthAction::None,
                    )
                }
            }
            // Any regression while counting re-admission rounds resets
            // the count and keeps the channel out of service.
            (
                ChannelState::Quarantined | ChannelState::Recovering { .. },
                SentinelVerdict::Drifting,
            ) => (ChannelState::Quarantined, HealthAction::Recalibrate),
        };
        if was == ChannelState::Healthy && next != ChannelState::Healthy {
            entry.unhealthy_since = now;
        }
        // A fall back from `Recovering` is the same incident, not a new
        // quarantine entry.
        let was_rejecting = matches!(
            was,
            ChannelState::Quarantined | ChannelState::Recovering { .. }
        );
        if next == ChannelState::Quarantined && !was_rejecting {
            self.quarantines.fetch_add(1, Ordering::Relaxed);
            vardelay_obs::counter("health.quarantines").add(1);
        }
        if next == ChannelState::Healthy && was != ChannelState::Healthy {
            let mttr = now.saturating_duration_since(entry.unhealthy_since);
            vardelay_obs::histogram("health.mttr_us").record(mttr.as_micros() as u64);
        }
        entry.state = next;
        action
    }

    /// Reinstates a persisted state during warm restart (snapshot
    /// restore, then WAL replay in record order so the latest logged
    /// transition wins). Restoring `Healthy` *removes* the entry: a
    /// never-probed channel and a healthy one are indistinguishable, and
    /// keeping the map sparse keeps `unhealthy_now` cheap. This is an
    /// overwrite, not a verdict — counters and the MTTR clock restart
    /// from the moment of recovery, which is when the incident became
    /// this process's problem.
    pub fn restore(&self, tenant: &str, channel: usize, state: ChannelState) {
        let mut channels = self.channels.lock().unwrap_or_else(|e| e.into_inner());
        if state == ChannelState::Healthy {
            channels.remove(&(tenant.to_owned(), channel));
            return;
        }
        channels.insert(
            (tenant.to_owned(), channel),
            ChannelHealth {
                state,
                unhealthy_since: Instant::now(),
            },
        );
    }

    /// Marks one background recalibration complete.
    pub fn note_recalibration(&self) {
        self.recalibrations.fetch_add(1, Ordering::Relaxed);
        vardelay_obs::counter("health.recalibrations").add(1);
    }

    /// Channels currently refusing `set_delay` (quarantined or still
    /// counting re-admission rounds).
    pub fn quarantined_now(&self) -> u64 {
        let channels = self.channels.lock().unwrap_or_else(|e| e.into_inner());
        channels
            .values()
            .filter(|h| {
                matches!(
                    h.state,
                    ChannelState::Quarantined | ChannelState::Recovering { .. }
                )
            })
            .count() as u64
    }

    /// Channels in any non-healthy state (probation included).
    pub fn unhealthy_now(&self) -> u64 {
        let channels = self.channels.lock().unwrap_or_else(|e| e.into_inner());
        channels
            .values()
            .filter(|h| h.state != ChannelState::Healthy)
            .count() as u64
    }

    /// Sentinel rounds fed in since start.
    pub fn sentinel_runs(&self) -> u64 {
        self.sentinel_runs.load(Ordering::Relaxed)
    }

    /// Background recalibrations completed since start.
    pub fn recalibrations(&self) -> u64 {
        self.recalibrations.load(Ordering::Relaxed)
    }

    /// Quarantine entries since start.
    pub fn quarantines(&self) -> u64 {
        self.quarantines.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_walks_probation_and_back() {
        let table = HealthTable::new(3);
        assert!(table.admits("t", 0));
        assert_eq!(
            table.observe("t", 0, SentinelVerdict::Drifting),
            HealthAction::Recalibrate
        );
        assert_eq!(table.state("t", 0), ChannelState::Probation);
        // Probation keeps serving — that is the point of the state.
        assert!(table.admits("t", 0));
        assert_eq!(table.unhealthy_now(), 1);
        assert_eq!(table.quarantined_now(), 0);
        assert_eq!(
            table.observe("t", 0, SentinelVerdict::Healthy),
            HealthAction::None
        );
        assert_eq!(table.state("t", 0), ChannelState::Healthy);
        assert_eq!(table.unhealthy_now(), 0);
        assert_eq!(table.quarantines(), 0);
    }

    #[test]
    fn quarantine_needs_k_consecutive_healthy_rounds() {
        let table = HealthTable::new(3);
        table.observe("t", 7, SentinelVerdict::Broken);
        assert!(!table.admits("t", 7));
        assert_eq!(table.quarantines(), 1);
        assert_eq!(table.quarantined_now(), 1);
        // Two healthy rounds are not enough at K = 3.
        table.observe("t", 7, SentinelVerdict::Healthy);
        table.observe("t", 7, SentinelVerdict::Healthy);
        assert!(!table.admits("t", 7), "still counting re-admission rounds");
        assert_eq!(table.state("t", 7), ChannelState::Recovering { rounds: 2 });
        table.observe("t", 7, SentinelVerdict::Healthy);
        assert!(table.admits("t", 7));
        assert_eq!(table.state("t", 7), ChannelState::Healthy);
        // Re-entry counts a second quarantine.
        table.observe("t", 7, SentinelVerdict::Broken);
        assert_eq!(table.quarantines(), 2);
    }

    #[test]
    fn wire_states_round_trip_and_garbage_is_rejected() {
        for state in [
            ChannelState::Healthy,
            ChannelState::Probation,
            ChannelState::Quarantined,
            ChannelState::Recovering { rounds: 2 },
        ] {
            assert_eq!(ChannelState::from_wire(&state.to_wire()), Some(state));
        }
        for garbage in ["", "Healthy", "recovering", "recovering:", "recovering:x"] {
            assert_eq!(ChannelState::from_wire(garbage), None, "{garbage:?}");
        }
    }

    #[test]
    fn restore_overwrites_without_counting_an_incident() {
        let table = HealthTable::new(3);
        table.restore("t", 4, ChannelState::Quarantined);
        assert!(!table.admits("t", 4), "restored quarantine still rejects");
        assert_eq!(table.quarantines(), 0, "restore is not a new incident");
        // Later WAL records overwrite earlier ones, and a healthy
        // restore clears the entry entirely.
        table.restore("t", 4, ChannelState::Recovering { rounds: 1 });
        assert_eq!(table.state("t", 4), ChannelState::Recovering { rounds: 1 });
        table.restore("t", 4, ChannelState::Healthy);
        assert!(table.admits("t", 4));
        assert_eq!(table.unhealthy_now(), 0);
    }

    #[test]
    fn a_regression_mid_recovery_resets_the_count() {
        let table = HealthTable::new(2);
        table.observe("t", 1, SentinelVerdict::Broken);
        table.observe("t", 1, SentinelVerdict::Healthy);
        assert_eq!(table.state("t", 1), ChannelState::Recovering { rounds: 1 });
        // Drifting mid-recovery drops back to quarantine (no flapping),
        // and staying broken stays quarantined without double counting.
        assert_eq!(
            table.observe("t", 1, SentinelVerdict::Drifting),
            HealthAction::Recalibrate
        );
        assert_eq!(table.state("t", 1), ChannelState::Quarantined);
        assert_eq!(
            table.quarantines(),
            1,
            "re-entry from recovery is one incident"
        );
        table.observe("t", 1, SentinelVerdict::Broken);
        assert_eq!(table.quarantines(), 1);
        // Tenants are independent.
        assert!(table.admits("u", 1));
        assert!(table.admits("t", 2));
    }
}
