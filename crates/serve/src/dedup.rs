//! The idempotency window behind client `req_id` retries (DESIGN.md §16).
//!
//! A client that times out on a `set_delay` cannot know whether the
//! server applied it. Tagging the request with a `req_id` (≤64 bytes,
//! client-chosen) makes the retry safe: the first execution's response
//! is cached here, and any later request carrying the same
//! `(tenant, req_id)` — on *any* connection — replays the cached
//! response instead of re-executing the solve. The window is bounded
//! (the oldest entry per tenant falls out first) and is re-seeded from
//! the WAL on warm restart, so a retry that straddles a crash still
//! deduplicates.
//!
//! Two deliberate exclusions: `overloaded` sheds and `deadline_exceeded`
//! failures are never cached — those mean "not executed" (or "gave up"),
//! and a retry *should* re-execute. The lookup runs before admission
//! control for the same reason in reverse: a retry of work that already
//! happened must not be shed by a momentarily full queue.
//!
//! Best-effort by design: two copies of the same `req_id` racing
//! through different workers simultaneously can both execute (the
//! window is written at commit time, not reserved at admission).
//! `set_delay` is idempotent at the hardware level, so the race costs a
//! duplicate solve, never a wrong state.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::protocol::Response;

/// Per-tenant bounded response cache keyed by `req_id`.
#[derive(Debug)]
pub struct DedupTable {
    cap: usize,
    hits: AtomicU64,
    tenants: Mutex<HashMap<String, Window>>,
}

#[derive(Debug, Default)]
struct Window {
    responses: HashMap<String, Response>,
    order: VecDeque<String>,
}

impl DedupTable {
    /// A table keeping at most `cap` responses per tenant (clamped ≥ 1).
    pub fn new(cap: usize) -> DedupTable {
        DedupTable {
            cap: cap.max(1),
            hits: AtomicU64::new(0),
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// The cached response for `(tenant, req_id)`, counting a hit when
    /// one exists.
    pub fn lookup(&self, tenant: &str, req_id: &str) -> Option<Response> {
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let cached = tenants.get(tenant)?.responses.get(req_id).cloned();
        if cached.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            vardelay_obs::counter("serve.dedup_hits").add(1);
        }
        cached
    }

    /// Caches `response` for `(tenant, req_id)`, evicting the tenant's
    /// oldest entry past the cap. Re-recording an existing key
    /// overwrites in place without consuming a window slot (WAL replay
    /// can legitimately see the same key twice after a mid-compaction
    /// crash).
    pub fn record(&self, tenant: &str, req_id: &str, response: &Response) {
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let window = tenants.entry(tenant.to_owned()).or_default();
        if window
            .responses
            .insert(req_id.to_owned(), response.clone())
            .is_none()
        {
            window.order.push_back(req_id.to_owned());
            while window.order.len() > self.cap {
                if let Some(oldest) = window.order.pop_front() {
                    window.responses.remove(&oldest);
                }
            }
        }
    }

    /// Retries answered from the cache since start.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ErrorKind, ErrorReply};

    fn error_reply(detail: &str) -> Response {
        Response::Error(ErrorReply {
            kind: ErrorKind::BadRequest,
            detail: detail.to_owned(),
            retry_after_ms: None,
        })
    }

    #[test]
    fn lookups_are_per_tenant_and_count_hits() {
        let table = DedupTable::new(4);
        table.record("a", "r1", &error_reply("first"));
        assert!(table.lookup("b", "r1").is_none(), "tenants are isolated");
        assert_eq!(table.hits(), 0, "misses are not hits");
        let hit = table.lookup("a", "r1").expect("cached");
        assert!(matches!(hit, Response::Error(e) if e.detail == "first"));
        assert_eq!(table.hits(), 1);
    }

    #[test]
    fn the_window_is_bounded_oldest_first() {
        let table = DedupTable::new(2);
        table.record("t", "r1", &error_reply("1"));
        table.record("t", "r2", &error_reply("2"));
        table.record("t", "r3", &error_reply("3"));
        assert!(table.lookup("t", "r1").is_none(), "oldest evicted");
        assert!(table.lookup("t", "r2").is_some());
        assert!(table.lookup("t", "r3").is_some());
        // Overwriting an existing key does not consume a slot.
        table.record("t", "r3", &error_reply("3b"));
        assert!(table.lookup("t", "r2").is_some());
    }
}
