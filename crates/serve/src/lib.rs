//! `vardelay-serve`: the calibrated delay line as a networked,
//! multi-tenant service.
//!
//! The paper's circuit exists to be *driven* — an ATE deskew loop
//! programs `Vctrl`/tap selects per channel, a jitter rig streams
//! profile updates — so this crate puts a TCP front end on the
//! reproduction: line-delimited JSON requests (`set_delay`, `deskew`,
//! `inject_jitter`, `selftest`, `stats`, `shutdown`) answered from a
//! worker pool over the shared, characterization-cache-calibrated
//! channel bank. DESIGN.md §12 specifies the protocol grammar and the
//! three load-shedding behaviors this crate exists to demonstrate:
//!
//! * **batching** — same-channel `set_delay` requests inside one batch
//!   window are answered from a single solve (last write wins);
//! * **backpressure** — a bounded admission queue answers `overloaded`
//!   with a retry hint instead of stalling the socket;
//! * **graceful drain** — shutdown stops accepting, finishes every
//!   admitted request, and reports final counters.
//!
//! Since PR 7 the service is *sharded* (DESIGN.md §14): requests are
//! routed by consistent hashing over `(tenant, channel)` to independent
//! [`shard`]s, each owning a worker pool and a deficit-round-robin
//! [`queue::FairQueue`]; per-tenant token buckets shed a hot tenant at
//! admission, and per-tenant calibration banks are instantiated lazily
//! with LRU eviction of cold tenants.
//!
//! Per-request budgets ride on [`vardelay_runner::Deadline`]; an
//! exhausted budget is a `deadline_exceeded` *response*, never a
//! dropped connection. Worker panics (including seeded
//! [`vardelay_faults::RequestChaos`] kills) are contained by
//! `catch_unwind` and surface as `internal` responses while the worker
//! keeps serving — the fault-isolation property the chaos gate scores.
//!
//! Since PR 8 the service also *heals itself* (DESIGN.md §15): a
//! per-shard [`health`] supervisor runs drift sentinels over resident
//! banks, rebuilds stale calibration tables in the background (requests
//! keep answering from the old table until the atomic swap), and
//! quarantines grossly-drifted channels behind a structured
//! `unavailable` response until they re-earn admission. Per-connection
//! IO deadlines and a partial-line reaper keep misbehaving sockets
//! (slow-loris drips, stalled readers) from ever pinning a worker.
//!
//! Since PR 9 the service is *durable* (DESIGN.md §16): with
//! `VARDELAY_SERVE_STATE_DIR` set, installed calibration tables and
//! channel health states are persisted to a per-tenant snapshot store
//! ([`persist`]), state-mutating requests flow through a digest-checked
//! write-ahead log ([`wal`]) with snapshot-then-truncate compaction,
//! and a restarted server warm-starts: it restores every snapshot whose
//! fingerprint matches the live circuit, verifies each with a sentinel
//! probe sweep, replays the WAL, and bumps a monotonic `server_epoch`
//! stamped into every response. Client retries carrying a `req_id` are
//! deduplicated through a bounded per-tenant window ([`dedup`]) that
//! survives the restart via the WAL.
//!
//! Since PR 10 the service is *backend-pluggable* (DESIGN.md §17):
//! every bank channel is a `dyn` [`vardelay_backend::DelayBackend`], so
//! the same wire protocol drives the paper's VGA+tap circuit, a Vernier
//! carry-chain pair, or a DLL phase interpolator. The server default
//! comes from `VARDELAY_SERVE_BACKEND`; a request may override it with
//! a `backend` field, which selects a separate per-`(tenant, backend)`
//! bank ([`shard::BankId`]) — two hardware families never share a
//! calibration table. The default backend's name is folded into the
//! snapshot fingerprint, so flipping it across a restart forces a
//! recalibration instead of warm-starting from the wrong family's
//! tables; non-default banks are ephemeral by design.
//!
//! Everything here is std-only, like the rest of the workspace.

#![warn(missing_docs)]

pub mod client;
pub mod dedup;
pub mod health;
pub mod persist;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod shard;
pub mod wal;

pub use client::Client;
pub use dedup::DedupTable;
pub use health::{ChannelState, HealthAction, HealthTable};
pub use persist::{ChannelSnapshot, SnapshotError, SnapshotStore};
pub use protocol::{
    DelayReply, DeskewReply, Envelope, ErrorKind, ErrorReply, JitterReply, Request, Response,
    SelftestReply, StatsReply, MAX_BACKEND_BYTES, MAX_LINE_BYTES, MAX_REQ_ID_BYTES,
    MAX_TENANT_BYTES, MAX_WIRE_INDEX,
};
pub use queue::{BoundedQueue, FairQueue};
pub use server::{serve, DrainReport, ServeConfig, ServerHandle, SERVE_SEED};
pub use shard::{BankHooks, BankId, BankRegistry, HashRing, QuotaTable, TenantBank};
pub use wal::{Wal, WalRecord};
