//! The calibration snapshot store behind warm restart (DESIGN.md §16).
//!
//! One plain-text file per `(tenant, channel)` under
//! `VARDELAY_SERVE_STATE_DIR`, published through the stage-fsync-rename
//! protocol from [`vardelay_obs::artifact`] so a crash mid-save leaves
//! either the previous complete snapshot or the new one — never a torn
//! file under the real name. The file format is
//!
//! ```text
//! vardelay-snap-v1
//! fingerprint=<hex16>        circuit identity (model ⊕ seed ⊕ channels)
//! state=<wire health state>  healthy / probation / quarantined / recovering:<n>
//! vardelay-cal-v1            the table, bit-exact hex from
//! <vctrl-bits>,<delay-bits>  CalibrationTable::to_snapshot
//! ...
//! digest=<hex16>             FNV-1a over everything above
//! ```
//!
//! Loading is paranoid by design: a missing trailer, a digest mismatch
//! (torn write, bit flip, hand edit), an unparsable table, or a
//! fingerprint minted by a different circuit all reject the snapshot —
//! the caller falls back to a fresh calibration. Serving from a wrong
//! table is the one unrecoverable failure, so the store never repairs,
//! only refuses.
//!
//! Tenant names are arbitrary client strings (≤128 bytes, any
//! non-control content), so bank directories use a hex encoding of the
//! raw bytes (`t61636d65` for `acme`) rather than the name itself —
//! no separator collisions, no path traversal, fully reversible for
//! [`SnapshotStore::tenants`] enumeration.

use std::io;
use std::path::{Path, PathBuf};

use vardelay_core::CalibrationTable;
use vardelay_obs::artifact::{digest, sweep_stale_tmp, tmp_path};

use crate::health::ChannelState;

/// First line of every snapshot file; bump on layout changes.
pub const SNAP_SCHEMA: &str = "vardelay-snap-v1";

/// A successfully decoded per-channel snapshot.
#[derive(Debug, Clone)]
pub struct ChannelSnapshot {
    /// The health state the channel carried when the snapshot was
    /// written (quarantine survives restarts *and* LRU eviction).
    pub state: ChannelState,
    /// The calibration table, bit-identical to the one that was
    /// installed when the snapshot was saved.
    pub table: CalibrationTable,
}

/// Why a snapshot could not be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// No snapshot file exists for this `(tenant, channel)`.
    Missing,
    /// The file exists but failed validation (torn trailer, digest
    /// mismatch, bad header, unparsable state or table). Carries a
    /// human-readable reason for logs and tests.
    Corrupt(String),
    /// The file is intact but was written for a different circuit
    /// (model config, bank seed, or channel count changed).
    FingerprintMismatch {
        /// The fingerprint recorded in the file.
        found: u64,
        /// The live circuit's fingerprint.
        want: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Missing => write!(f, "no snapshot on disk"),
            SnapshotError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            SnapshotError::FingerprintMismatch { found, want } => write!(
                f,
                "snapshot fingerprint {found:016x} does not match live circuit {want:016x}"
            ),
        }
    }
}

/// The on-disk store: `<root>/epoch`, `<root>/wal.log`, and
/// `<root>/banks/t<hex-tenant>/ch<N>.snap`.
#[derive(Debug)]
pub struct SnapshotStore {
    root: PathBuf,
    fingerprint: u64,
}

fn tenant_key(tenant: &str) -> String {
    let mut key = String::with_capacity(1 + tenant.len() * 2);
    key.push('t');
    for b in tenant.as_bytes() {
        key.push_str(&format!("{b:02x}"));
    }
    key
}

fn tenant_from_key(key: &str) -> Option<String> {
    let hex = key.strip_prefix('t')?;
    if hex.len() % 2 != 0 {
        return None;
    }
    let mut bytes = Vec::with_capacity(hex.len() / 2);
    for pair in hex.as_bytes().chunks(2) {
        bytes.push(u8::from_str_radix(std::str::from_utf8(pair).ok()?, 16).ok()?);
    }
    String::from_utf8(bytes).ok()
}

/// Consumes one `\n`-terminated line from `*rest`, or `None` when no
/// newline remains (a torn header).
fn take_line<'a>(rest: &mut &'a str) -> Option<&'a str> {
    let (line, tail) = rest.split_once('\n')?;
    *rest = tail;
    Some(line)
}

fn encode_snapshot(fingerprint: u64, state: ChannelState, table: &CalibrationTable) -> String {
    let mut body = format!(
        "{SNAP_SCHEMA}\nfingerprint={fingerprint:016x}\nstate={}\n",
        state.to_wire()
    );
    body.push_str(&table.to_snapshot());
    let d = digest(&body);
    body.push_str(&format!("digest={d:016x}\n"));
    body
}

fn decode_snapshot(text: &str, want_fingerprint: u64) -> Result<ChannelSnapshot, SnapshotError> {
    let corrupt = |why: &str| SnapshotError::Corrupt(why.to_owned());
    // The digest trailer authenticates everything before it, so verify
    // it first: corruption anywhere must surface as *one* kind of
    // rejection, not as a confusing parse error further down.
    let Some((body, trailer)) = text.rsplit_once("digest=") else {
        return Err(corrupt("missing digest trailer"));
    };
    let recorded = u64::from_str_radix(trailer.trim_end_matches('\n'), 16)
        .map_err(|_| corrupt("unparsable digest trailer"))?;
    if digest(body) != recorded {
        return Err(corrupt("digest mismatch"));
    }
    let mut rest = body;
    if take_line(&mut rest) != Some(SNAP_SCHEMA) {
        return Err(corrupt("bad schema header"));
    }
    let found = take_line(&mut rest)
        .and_then(|l| l.strip_prefix("fingerprint="))
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .ok_or_else(|| corrupt("bad fingerprint line"))?;
    if found != want_fingerprint {
        return Err(SnapshotError::FingerprintMismatch {
            found,
            want: want_fingerprint,
        });
    }
    let state = take_line(&mut rest)
        .and_then(|l| l.strip_prefix("state="))
        .and_then(ChannelState::from_wire)
        .ok_or_else(|| corrupt("bad state line"))?;
    let table = CalibrationTable::from_snapshot(rest)
        .map_err(|e| SnapshotError::Corrupt(format!("bad table: {e}")))?;
    Ok(ChannelSnapshot { state, table })
}

impl SnapshotStore {
    /// Opens (creating) the store rooted at `root`, sweeping any stale
    /// `.tmp` staging files a previous crash left behind. `fingerprint`
    /// is the live circuit's identity — snapshots recorded under any
    /// other fingerprint will refuse to load.
    ///
    /// # Errors
    ///
    /// The underlying I/O error from creating the directory tree or
    /// walking it for the sweep.
    pub fn open(root: impl Into<PathBuf>, fingerprint: u64) -> io::Result<SnapshotStore> {
        let root = root.into();
        std::fs::create_dir_all(root.join("banks"))?;
        sweep_stale_tmp(&root)?;
        Ok(SnapshotStore { root, fingerprint })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The circuit fingerprint this store stamps into snapshots.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Where this store keeps its write-ahead log.
    pub fn wal_path(&self) -> PathBuf {
        self.root.join("wal.log")
    }

    /// Reads the restart counter, increments it, and persists it
    /// atomically; the first open of a fresh directory yields epoch 1.
    /// A garbled epoch file restarts the count rather than failing the
    /// boot — the epoch only has to be monotonic per state dir, and a
    /// client comparing epochs across corruption already knows the
    /// server restarted.
    ///
    /// # Errors
    ///
    /// The underlying I/O error from publishing the new epoch file.
    pub fn bump_epoch(&self) -> io::Result<u64> {
        let path = self.root.join("epoch");
        let prior = std::fs::read_to_string(&path)
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .unwrap_or(0);
        let epoch = prior.saturating_add(1);
        vardelay_obs::artifact::write_atomic(&path, &format!("{epoch}\n"))?;
        Ok(epoch)
    }

    fn channel_path(&self, tenant: &str, channel: usize) -> PathBuf {
        self.root
            .join("banks")
            .join(tenant_key(tenant))
            .join(format!("ch{channel}.snap"))
    }

    /// Persists one channel's table + health state. Hand-rolls the
    /// stage-fsync-rename sequence (rather than calling `write_atomic`)
    /// so the `snapshot-rename` kill point can land *between* staging
    /// and publication — the crash window the protocol exists to
    /// survive.
    ///
    /// # Errors
    ///
    /// The underlying I/O error from the staging write, the fsync, or
    /// the rename.
    pub fn save_channel(
        &self,
        tenant: &str,
        channel: usize,
        state: ChannelState,
        table: &CalibrationTable,
    ) -> io::Result<()> {
        let path = self.channel_path(tenant, channel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let text = encode_snapshot(self.fingerprint, state, table);
        // A warm boot re-persists banks it just restored (the install
        // hook, then boot compaction); when the durable truth is
        // already byte-identical, skip the stage→fsync→rename cycle —
        // the fsyncs, not the bytes, dominate a restart's wall clock.
        if std::fs::read_to_string(&path).is_ok_and(|existing| existing == text) {
            vardelay_obs::counter("persist.snapshots_unchanged").add(1);
            return Ok(());
        }
        let tmp = tmp_path(&path);
        std::fs::write(&tmp, &text)?;
        // Staged but not yet published: dying here must leave the old
        // snapshot intact and only a `.tmp` for the next open to sweep.
        vardelay_faults::kill_point("snapshot-rename");
        match std::fs::File::open(&tmp).and_then(|f| f.sync_all()) {
            Ok(()) => {}
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(e);
            }
        }
        let published = std::fs::rename(&tmp, &path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        });
        if published.is_ok() {
            vardelay_obs::counter("persist.snapshots_saved").add(1);
        }
        published
    }

    /// Loads and validates one channel's snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Missing`] when no file exists,
    /// [`SnapshotError::Corrupt`] on any validation failure (counted in
    /// `persist.snapshots_corrupt`), [`SnapshotError::FingerprintMismatch`]
    /// when the file belongs to a different circuit.
    pub fn load_channel(
        &self,
        tenant: &str,
        channel: usize,
    ) -> Result<ChannelSnapshot, SnapshotError> {
        let path = self.channel_path(tenant, channel);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(SnapshotError::Missing),
            Err(e) => return Err(SnapshotError::Corrupt(format!("unreadable: {e}"))),
        };
        let decoded = decode_snapshot(&text, self.fingerprint);
        if matches!(decoded, Err(SnapshotError::Corrupt(_))) {
            vardelay_obs::counter("persist.snapshots_corrupt").add(1);
        }
        decoded
    }

    /// Tenants with at least one snapshot on disk, sorted so warm
    /// restart rebuilds banks in a deterministic order.
    pub fn tenants(&self) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(self.root.join("banks")) else {
            return Vec::new();
        };
        let mut tenants: Vec<String> = entries
            .flatten()
            .filter(|e| e.file_type().is_ok_and(|t| t.is_dir()))
            .filter_map(|e| tenant_from_key(&e.file_name().to_string_lossy()))
            .collect();
        tenants.sort();
        tenants
    }

    /// Channel indices with a snapshot file for `tenant`, sorted.
    pub fn channels_of(&self, tenant: &str) -> Vec<usize> {
        let Ok(entries) = std::fs::read_dir(self.root.join("banks").join(tenant_key(tenant)))
        else {
            return Vec::new();
        };
        let mut channels: Vec<usize> = entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.strip_prefix("ch")?.strip_suffix(".snap")?.parse().ok()
            })
            .collect();
        channels.sort_unstable();
        channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_core::{CombinedDelayCircuit, ModelConfig};
    use vardelay_runner::Runner;

    fn scratch(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("vardelay_persist_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn calibrated_table() -> CalibrationTable {
        let mut circuit = CombinedDelayCircuit::new(&ModelConfig::paper_prototype(), 0x5e7e);
        circuit.calibrate_with(Runner::serial()).clone()
    }

    #[test]
    fn save_then_load_round_trips_bit_exactly() {
        let dir = scratch("roundtrip");
        let store = SnapshotStore::open(&dir, 0xfeed).unwrap();
        let table = calibrated_table();
        store
            .save_channel("acme", 3, ChannelState::Quarantined, &table)
            .unwrap();
        let snap = store.load_channel("acme", 3).unwrap();
        assert_eq!(snap.state, ChannelState::Quarantined);
        assert_eq!(
            snap.table.to_snapshot(),
            table.to_snapshot(),
            "restored table must be bit-identical"
        );
        assert_eq!(store.tenants(), vec!["acme".to_owned()]);
        assert_eq!(store.channels_of("acme"), vec![3]);
        assert_eq!(store.channels_of("ghost"), Vec::<usize>::new());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn the_default_tenant_and_odd_names_get_distinct_directories() {
        let dir = scratch("tenants");
        let store = SnapshotStore::open(&dir, 1).unwrap();
        let table = calibrated_table();
        for tenant in ["", "a/b", "..", "tenant with spaces"] {
            store
                .save_channel(tenant, 0, ChannelState::Healthy, &table)
                .unwrap();
        }
        let mut expected: Vec<String> = ["", "a/b", "..", "tenant with spaces"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        expected.sort();
        assert_eq!(store.tenants(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_detected_never_repaired() {
        let dir = scratch("corrupt");
        let store = SnapshotStore::open(&dir, 0xfeed).unwrap();
        let table = calibrated_table();
        store
            .save_channel("t", 0, ChannelState::Healthy, &table)
            .unwrap();
        let path = dir.join("banks").join(tenant_key("t")).join("ch0.snap");
        let good = std::fs::read_to_string(&path).unwrap();

        // Truncated tail (crash mid-write without the rename protocol).
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(matches!(
            store.load_channel("t", 0),
            Err(SnapshotError::Corrupt(_))
        ));

        // A single flipped bit anywhere in the body trips the digest.
        let mut flipped = good.clone().into_bytes();
        let mid = flipped.len() / 3;
        flipped[mid] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            store.load_channel("t", 0),
            Err(SnapshotError::Corrupt(_))
        ));

        // Intact file, wrong circuit.
        std::fs::write(&path, &good).unwrap();
        let other = SnapshotStore::open(&dir, 0xbeef).unwrap();
        assert!(matches!(
            other.load_channel("t", 0),
            Err(SnapshotError::FingerprintMismatch { .. })
        ));

        // Missing is its own, quieter case.
        assert!(matches!(
            store.load_channel("t", 9),
            Err(SnapshotError::Missing)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_flipped_bit_in_a_snapshot_is_caught() {
        // The property half of satellite #3 at the persistence layer: a
        // snapshot with any one corrupted byte either fails validation
        // or (for the rare flip inside the fingerprint hex that still
        // parses) reports a fingerprint mismatch — it never decodes to
        // a *different* table than the one saved.
        let table = calibrated_table();
        let good = encode_snapshot(0xfeed, ChannelState::Probation, &table);
        let reference = table.to_snapshot();
        let step = (good.len() / 97).max(1);
        for idx in (0..good.len()).step_by(step) {
            let mut bytes = good.clone().into_bytes();
            bytes[idx] ^= 0x04;
            let Ok(text) = String::from_utf8(bytes) else {
                continue;
            };
            match decode_snapshot(&text, 0xfeed) {
                Err(_) => {}
                Ok(snap) => {
                    // The only acceptable "success" after a flip would
                    // be a collision that decodes the identical bytes —
                    // FNV over ~1 KiB makes this astronomically
                    // unlikely; byte-compare to be sure.
                    assert_eq!(
                        snap.table.to_snapshot(),
                        reference,
                        "flip at byte {idx} decoded a different table"
                    );
                }
            }
        }
    }

    #[test]
    fn epoch_is_monotonic_per_directory() {
        let dir = scratch("epoch");
        let store = SnapshotStore::open(&dir, 7).unwrap();
        assert_eq!(store.bump_epoch().unwrap(), 1);
        assert_eq!(store.bump_epoch().unwrap(), 2);
        // A reopened store continues the count; a garbled file restarts
        // it instead of failing the boot.
        let reopened = SnapshotStore::open(&dir, 7).unwrap();
        assert_eq!(reopened.bump_epoch().unwrap(), 3);
        std::fs::write(dir.join("epoch"), "not a number").unwrap();
        assert_eq!(reopened.bump_epoch().unwrap(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
