//! Wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line, one response per line, both rendered with
//! `vardelay-obs`'s hand-rolled JSON (DESIGN.md §12 has the grammar).
//! Requests are objects with an `"op"` discriminant; responses carry
//! `"ok": true` plus op-specific fields, or `"ok": false` plus a
//! structured error kind. Every type converts **both** directions
//! (`to_value` / `from_value`) so the round-trip property tests can
//! cover the full surface.
//!
//! Classification contract (leaned on by the property tests):
//!
//! * input that is not valid JSON, or not a JSON object →
//!   [`ErrorKind::ParseError`];
//! * a well-formed object with a missing/unknown `"op"` or bad fields →
//!   [`ErrorKind::BadRequest`];
//! * neither ever panics the connection thread.

use vardelay_backend::BackendKind;
use vardelay_obs::json::Value;

/// Hard cap on a single request line, in bytes. Longer lines are
/// answered with a `parse_error` and discarded up to the next newline —
/// the connection survives.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Hard cap on any wire-side index or count field (`channel`, `tap`,
/// `bus`, `bits`, …). Far above anything a real configuration exposes,
/// but small enough that the `u64 → usize` conversion is lossless on
/// every target — a `channel: 2^40` must draw a structured
/// `bad_request`, not silently truncate on a 32-bit host and turn into
/// a confusing downstream index error.
pub const MAX_WIRE_INDEX: u64 = 1 << 20;

/// Hard cap on a `tenant` label, in bytes. Tenants are routing keys;
/// an unbounded label would let one request pin arbitrary memory in
/// the per-tenant quota and bank tables.
pub const MAX_TENANT_BYTES: usize = 128;

/// Hard cap on a `req_id` idempotency key, in bytes. Like tenants,
/// req_ids are cached server-side (the dedup window plus the WAL), so
/// they must be bounded.
pub const MAX_REQ_ID_BYTES: usize = 64;

/// Hard cap on a `backend` selector, in bytes. The longest valid name
/// is 7 bytes ("vernier"/"circuit"); the cap only bounds how much junk
/// an unknown-name error echoes back.
pub const MAX_BACKEND_BYTES: usize = 32;

/// A parsed request plus its per-request metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Option<u64>,
    /// Per-request deadline budget in milliseconds (server default when
    /// absent). Exceeding it yields a `deadline_exceeded` *response*,
    /// never a dropped connection.
    pub deadline_ms: Option<u64>,
    /// Tenant label (`"tenant"` on the wire). Absent or empty means the
    /// default tenant; the server routes `(tenant, channel)` to a shard
    /// and charges the tenant's quota.
    pub tenant: Option<String>,
    /// Client-chosen idempotency key (≤ [`MAX_REQ_ID_BYTES`] bytes).
    /// A request carrying one is executed at most once per dedup
    /// window: a retry with the same `(tenant, req_id)` — even on a
    /// different connection, even across a server restart — replays the
    /// original cached response instead of re-running the solve.
    pub req_id: Option<String>,
    /// Delay-backend selector (`"backend"` on the wire, DESIGN.md §17).
    /// Absent or empty means the server's default backend
    /// (`VARDELAY_SERVE_BACKEND`); an unknown name is a `bad_request`
    /// listing the valid names, so a typo never silently lands on the
    /// wrong hardware family.
    pub backend: Option<BackendKind>,
    /// The operation.
    pub request: Request,
}

/// Every operation the service accepts.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Program one channel's delay: coarse tap + fine `Vctrl` solve
    /// against the cached characterization.
    SetDelay {
        /// Channel index (0-based).
        channel: usize,
        /// Requested relative delay in picoseconds.
        ps: f64,
    },
    /// Run the degraded-mode deskew loop over a fresh `bus`-wide
    /// parallel bus with seeded random skew.
    Deskew {
        /// Bus width in channels (2..=32).
        bus: usize,
        /// Seed for the bus skews and the engine's retry RNG.
        seed: u64,
    },
    /// Stream a PRBS-7 pattern through the jitter injector.
    InjectJitter {
        /// Injected noise peak-to-peak amplitude, millivolts.
        vpp_mv: f64,
        /// Line rate in Gb/s.
        rate_gbps: f64,
        /// Pattern length in bits (1..=4096).
        bits: usize,
        /// PRBS seed.
        seed: u64,
    },
    /// Run the channel-0 circuit self-test (DESIGN.md §10).
    Selftest,
    /// Report server counters and queue state.
    Stats,
    /// Begin a graceful drain: stop accepting, finish in-flight work.
    Shutdown,
}

impl Request {
    /// The wire discriminant.
    pub fn op(&self) -> &'static str {
        match self {
            Request::SetDelay { .. } => "set_delay",
            Request::Deskew { .. } => "deskew",
            Request::InjectJitter { .. } => "inject_jitter",
            Request::Selftest => "selftest",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Machine-readable error classes, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not valid JSON (or not an object).
    ParseError,
    /// Valid JSON, but the operation or its fields are wrong.
    BadRequest,
    /// The bounded queue was full; retry after the hinted delay.
    Overloaded,
    /// The per-request deadline elapsed before the work finished.
    DeadlineExceeded,
    /// A worker panicked while handling the request (the worker and the
    /// connection both survive).
    Internal,
    /// The addressed channel is quarantined pending recalibration;
    /// retry after the hinted delay (DESIGN.md §15).
    Unavailable,
}

impl ErrorKind {
    /// The wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::ParseError => "parse_error",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Internal => "internal",
            ErrorKind::Unavailable => "unavailable",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn from_wire(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "parse_error" => ErrorKind::ParseError,
            "bad_request" => ErrorKind::BadRequest,
            "overloaded" => ErrorKind::Overloaded,
            "deadline_exceeded" => ErrorKind::DeadlineExceeded,
            "internal" => ErrorKind::Internal,
            "unavailable" => ErrorKind::Unavailable,
            _ => return None,
        })
    }
}

/// A structured error response.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorReply {
    /// The error class.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub detail: String,
    /// `Retry-After`-style hint, milliseconds (backpressure only).
    pub retry_after_ms: Option<u64>,
}

/// `set_delay` success payload: the chosen operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayReply {
    /// The programmed channel.
    pub channel: usize,
    /// The delay this waiter asked for, picoseconds.
    pub requested_ps: f64,
    /// Selected coarse tap.
    pub tap: usize,
    /// Programmed DAC code.
    pub dac_code: u32,
    /// Control voltage, millivolts.
    pub vctrl_mv: f64,
    /// Calibration-predicted delay, picoseconds.
    pub predicted_ps: f64,
    /// Predicted error vs the *batch* target, picoseconds.
    pub error_ps: f64,
    /// How many same-channel requests this one solve answered.
    pub batched: usize,
}

/// `deskew` success payload.
#[derive(Debug, Clone, PartialEq)]
pub struct DeskewReply {
    /// Bus width.
    pub bus: usize,
    /// Peak-to-peak skew before correction, picoseconds.
    pub before_ps: f64,
    /// Peak-to-peak skew after correction, picoseconds.
    pub after_ps: f64,
    /// Channels measured and corrected.
    pub healthy: usize,
    /// Quarantined channel indices.
    pub quarantined: Vec<usize>,
    /// Reference channel index.
    pub reference: usize,
    /// Whether the healthy channels met the paper's <5 ps target.
    pub meets_target: bool,
}

/// `inject_jitter` success payload.
#[derive(Debug, Clone, PartialEq)]
pub struct JitterReply {
    /// Edges in the jittered stream.
    pub edges: usize,
    /// Injection transfer slope, seconds per volt.
    pub slope_s_per_v: f64,
}

/// `selftest` success payload.
#[derive(Debug, Clone, PartialEq)]
pub struct SelftestReply {
    /// `healthy` / `degraded` / `faulty`.
    pub verdict: String,
    /// The full one-line health report.
    pub summary: String,
    /// `true` when the deadline budget ran out before the expensive DAC
    /// sweep: the verdict covers the calibration check only.
    pub partial: bool,
}

/// `stats` success payload — server counters since start.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsReply {
    /// Request lines received (including malformed ones).
    pub requests: u64,
    /// Successful responses sent.
    pub ok: u64,
    /// `parse_error` responses sent.
    pub parse_errors: u64,
    /// `bad_request` responses sent.
    pub bad_requests: u64,
    /// `overloaded` responses sent.
    pub overloaded: u64,
    /// `deadline_exceeded` responses sent.
    pub deadline_exceeded: u64,
    /// `internal` responses sent.
    pub internal_errors: u64,
    /// Requests answered as part of a same-channel batch (followers).
    pub batched: u64,
    /// Requests shed by a tenant's token-bucket quota (a subset of
    /// `overloaded`).
    pub quota_rejections: u64,
    /// `unavailable` responses sent (quarantined channels).
    pub unavailable: u64,
    /// Connections cut by a read/write deadline expiring.
    pub io_timeouts: u64,
    /// Connections cut by the partial-line reaper.
    pub reaped: u64,
    /// Channels currently quarantined or still in recovery probation.
    pub quarantined: u64,
    /// Channels currently in any non-healthy state (probation included).
    pub unhealthy: u64,
    /// Background recalibrations completed since start.
    pub recalibrations: u64,
    /// Quarantine entries since start.
    pub quarantines: u64,
    /// The state directory's monotonic restart counter (1 with no
    /// state dir — a purely in-memory server is its own first epoch).
    pub server_epoch: u64,
    /// Tenant banks whose warm restart restored at least one channel
    /// table from a snapshot instead of recalibrating it.
    pub banks_restored: u64,
    /// Tenant banks that had persisted state but fell back to a fresh
    /// calibration for at least one channel (corrupt snapshot,
    /// fingerprint mismatch, or a sentinel-rejected table).
    pub banks_recalibrated: u64,
    /// WAL records replayed during the last warm restart.
    pub wal_records_replayed: u64,
    /// Wall time of the last warm restart's recovery pass, microseconds.
    pub restore_us: u64,
    /// Requests answered from the idempotency window instead of
    /// re-executing.
    pub dedup_hits: u64,
    /// Jobs waiting in the queue right now (all shards).
    pub queue_depth: u64,
    /// Worker threads serving the queues (all shards).
    pub workers: u64,
    /// Bank shards serving requests.
    pub shards: u64,
    /// Tenant banks currently resident (calibrated, not yet evicted).
    pub banks: u64,
}

/// Every response the service emits.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `set_delay` succeeded.
    Delay(DelayReply),
    /// `deskew` succeeded.
    Deskew(DeskewReply),
    /// `inject_jitter` succeeded.
    Jitter(JitterReply),
    /// `selftest` succeeded.
    Selftest(SelftestReply),
    /// `stats` succeeded.
    Stats(StatsReply),
    /// `shutdown` accepted; the server is draining.
    Draining,
    /// The request failed; see [`ErrorReply::kind`].
    Error(ErrorReply),
}

impl Response {
    /// Shorthand error constructor.
    pub fn error(kind: ErrorKind, detail: impl Into<String>) -> Response {
        Response::Error(ErrorReply {
            kind,
            detail: detail.into(),
            retry_after_ms: None,
        })
    }

    /// The error kind, if this is an error.
    pub fn error_kind(&self) -> Option<ErrorKind> {
        match self {
            Response::Error(e) => Some(e.kind),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Requests: JSON in both directions
// ---------------------------------------------------------------------------

fn field_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn field_u64_or(v: &Value, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(raw) => raw
            .as_u64()
            .ok_or_else(|| format!("non-integer field {key:?}")),
    }
}

/// Decodes an index/count field with the [`MAX_WIRE_INDEX`] bound so the
/// `u64 → usize` conversion is lossless on every target. A `channel:
/// 2^40` (or `u64::MAX`) draws a structured error instead of silently
/// truncating on 32-bit hosts.
fn field_index(v: &Value, key: &str) -> Result<usize, String> {
    let raw = field_u64(v, key)?;
    if raw > MAX_WIRE_INDEX {
        return Err(format!(
            "field {key:?} is {raw}, above the protocol limit {MAX_WIRE_INDEX}"
        ));
    }
    Ok(raw as usize)
}

/// Decodes a field that must fit in `u32` (DAC codes).
fn field_u32(v: &Value, key: &str) -> Result<u32, String> {
    let raw = field_u64(v, key)?;
    u32::try_from(raw).map_err(|_| format!("field {key:?} is {raw}, which does not fit in u32"))
}

impl Envelope {
    /// A bare request with no id and the server's default deadline.
    pub fn new(request: Request) -> Envelope {
        Envelope {
            id: None,
            deadline_ms: None,
            tenant: None,
            req_id: None,
            backend: None,
            request,
        }
    }

    /// Same request, tagged with a tenant label.
    pub fn for_tenant(self, tenant: impl Into<String>) -> Envelope {
        Envelope {
            tenant: Some(tenant.into()),
            ..self
        }
    }

    /// Same request, tagged with an idempotency key.
    pub fn with_req_id(self, req_id: impl Into<String>) -> Envelope {
        Envelope {
            req_id: Some(req_id.into()),
            ..self
        }
    }

    /// Same request, pinned to an explicit delay backend.
    pub fn on_backend(self, backend: BackendKind) -> Envelope {
        Envelope {
            backend: Some(backend),
            ..self
        }
    }

    /// Renders the request line (without the trailing newline).
    pub fn to_value(&self) -> Value {
        let mut v = Value::obj().with("op", self.request.op());
        if let Some(id) = self.id {
            v = v.with("id", id);
        }
        if let Some(ms) = self.deadline_ms {
            v = v.with("deadline_ms", ms);
        }
        if let Some(tenant) = &self.tenant {
            v = v.with("tenant", tenant.as_str());
        }
        if let Some(req_id) = &self.req_id {
            v = v.with("req_id", req_id.as_str());
        }
        if let Some(backend) = self.backend {
            v = v.with("backend", backend.name());
        }
        match &self.request {
            Request::SetDelay { channel, ps } => v.with("channel", *channel).with("ps", *ps),
            Request::Deskew { bus, seed } => v.with("bus", *bus).with("seed", *seed),
            Request::InjectJitter {
                vpp_mv,
                rate_gbps,
                bits,
                seed,
            } => v
                .with("vpp_mv", *vpp_mv)
                .with("rate_gbps", *rate_gbps)
                .with("bits", *bits)
                .with("seed", *seed),
            Request::Selftest | Request::Stats | Request::Shutdown => v,
        }
    }

    /// Parses one request line. The error is already the structured
    /// response the server should write back.
    pub fn parse(line: &str) -> Result<Envelope, ErrorReply> {
        if line.len() > MAX_LINE_BYTES {
            return Err(ErrorReply {
                kind: ErrorKind::ParseError,
                detail: format!(
                    "line of {} bytes exceeds the {MAX_LINE_BYTES}-byte limit",
                    line.len()
                ),
                retry_after_ms: None,
            });
        }
        let value = Value::parse(line.trim()).map_err(|e| ErrorReply {
            kind: ErrorKind::ParseError,
            detail: e.to_string(),
            retry_after_ms: None,
        })?;
        Envelope::from_value(&value).map_err(|detail| ErrorReply {
            kind: if matches!(value, Value::Obj(_)) {
                ErrorKind::BadRequest
            } else {
                ErrorKind::ParseError
            },
            detail,
            retry_after_ms: None,
        })
    }

    /// Inverse of [`to_value`](Self::to_value).
    pub fn from_value(value: &Value) -> Result<Envelope, String> {
        if !matches!(value, Value::Obj(_)) {
            return Err("request must be a JSON object".to_owned());
        }
        let id = match value.get("id") {
            None => None,
            Some(raw) => Some(raw.as_u64().ok_or("non-integer field \"id\"")?),
        };
        let deadline_ms = match value.get("deadline_ms") {
            None => None,
            Some(raw) => Some(raw.as_u64().ok_or("non-integer field \"deadline_ms\"")?),
        };
        let tenant = match value.get("tenant") {
            None => None,
            Some(raw) => {
                let s = raw.as_str().ok_or("non-string field \"tenant\"")?;
                if s.len() > MAX_TENANT_BYTES {
                    return Err(format!(
                        "field \"tenant\" is {} bytes, above the {MAX_TENANT_BYTES}-byte limit",
                        s.len()
                    ));
                }
                // The empty label IS the default tenant; normalising it
                // here keeps routing and quota accounting canonical.
                if s.is_empty() {
                    None
                } else {
                    Some(s.to_owned())
                }
            }
        };
        let req_id = match value.get("req_id") {
            None => None,
            Some(raw) => {
                let s = raw.as_str().ok_or("non-string field \"req_id\"")?;
                if s.len() > MAX_REQ_ID_BYTES {
                    return Err(format!(
                        "field \"req_id\" is {} bytes, above the {MAX_REQ_ID_BYTES}-byte limit",
                        s.len()
                    ));
                }
                // Like the tenant label: empty means "no idempotency
                // key", normalized here so the dedup window never keys
                // on "".
                if s.is_empty() {
                    None
                } else {
                    Some(s.to_owned())
                }
            }
        };
        let backend = match value.get("backend") {
            None => None,
            Some(raw) => {
                let s = raw.as_str().ok_or("non-string field \"backend\"")?;
                if s.len() > MAX_BACKEND_BYTES {
                    return Err(format!(
                        "field \"backend\" is {} bytes, above the {MAX_BACKEND_BYTES}-byte limit",
                        s.len()
                    ));
                }
                // Empty means the server default, same as absent.
                if s.is_empty() {
                    None
                } else {
                    match BackendKind::from_name(s) {
                        Some(kind) => Some(kind),
                        None => {
                            return Err(format!(
                                "unknown backend {s:?} (valid backends: {})",
                                BackendKind::valid_names()
                            ))
                        }
                    }
                }
            }
        };
        let op = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or("missing or non-string field \"op\"")?;
        let request = match op {
            "set_delay" => Request::SetDelay {
                channel: field_index(value, "channel")?,
                ps: field_f64(value, "ps")?,
            },
            "deskew" => Request::Deskew {
                bus: field_index(value, "bus")?,
                seed: field_u64_or(value, "seed", 0)?,
            },
            "inject_jitter" => Request::InjectJitter {
                vpp_mv: field_f64(value, "vpp_mv")?,
                rate_gbps: field_f64(value, "rate_gbps")?,
                bits: field_index(value, "bits")?,
                seed: field_u64_or(value, "seed", 1)?,
            },
            "selftest" => Request::Selftest,
            "stats" => Request::Stats,
            "shutdown" => Request::Shutdown,
            other => return Err(format!("unknown op {other:?}")),
        };
        Ok(Envelope {
            id,
            deadline_ms,
            tenant,
            req_id,
            backend,
            request,
        })
    }
}

// ---------------------------------------------------------------------------
// Responses: JSON in both directions
// ---------------------------------------------------------------------------

impl Response {
    /// Renders the response line (without the trailing newline),
    /// echoing the request's correlation id when present.
    pub fn to_value(&self, id: Option<u64>) -> Value {
        let mut v = Value::obj();
        if let Some(id) = id {
            v = v.with("id", id);
        }
        match self {
            Response::Delay(r) => v
                .with("ok", true)
                .with("op", "set_delay")
                .with("channel", r.channel)
                .with("requested_ps", r.requested_ps)
                .with("tap", r.tap)
                .with("dac_code", r.dac_code as u64)
                .with("vctrl_mv", r.vctrl_mv)
                .with("predicted_ps", r.predicted_ps)
                .with("error_ps", r.error_ps)
                .with("batched", r.batched),
            Response::Deskew(r) => v
                .with("ok", true)
                .with("op", "deskew")
                .with("bus", r.bus)
                .with("before_ps", r.before_ps)
                .with("after_ps", r.after_ps)
                .with("healthy", r.healthy)
                .with(
                    "quarantined",
                    Value::Arr(r.quarantined.iter().map(|&c| Value::from(c)).collect()),
                )
                .with("reference", r.reference)
                .with("meets_target", r.meets_target),
            Response::Jitter(r) => v
                .with("ok", true)
                .with("op", "inject_jitter")
                .with("edges", r.edges)
                .with("slope_s_per_v", r.slope_s_per_v),
            Response::Selftest(r) => {
                v = v
                    .with("ok", true)
                    .with("op", "selftest")
                    .with("verdict", r.verdict.as_str())
                    .with("summary", r.summary.as_str());
                // Rendered only when set: full results stay wire-stable.
                if r.partial {
                    v = v.with("partial", true);
                }
                v
            }
            Response::Stats(r) => v
                .with("ok", true)
                .with("op", "stats")
                .with("requests", r.requests)
                .with("ok_count", r.ok)
                .with("parse_errors", r.parse_errors)
                .with("bad_requests", r.bad_requests)
                .with("overloaded", r.overloaded)
                .with("deadline_exceeded", r.deadline_exceeded)
                .with("internal_errors", r.internal_errors)
                .with("batched", r.batched)
                .with("quota_rejections", r.quota_rejections)
                .with("unavailable", r.unavailable)
                .with("io_timeouts", r.io_timeouts)
                .with("reaped", r.reaped)
                .with("quarantined", r.quarantined)
                .with("unhealthy", r.unhealthy)
                .with("recalibrations", r.recalibrations)
                .with("quarantines", r.quarantines)
                .with("server_epoch", r.server_epoch)
                .with("banks_restored", r.banks_restored)
                .with("banks_recalibrated", r.banks_recalibrated)
                .with("wal_records_replayed", r.wal_records_replayed)
                .with("restore_us", r.restore_us)
                .with("dedup_hits", r.dedup_hits)
                .with("queue_depth", r.queue_depth)
                .with("workers", r.workers)
                .with("shards", r.shards)
                .with("banks", r.banks),
            Response::Draining => v
                .with("ok", true)
                .with("op", "shutdown")
                .with("draining", true),
            Response::Error(e) => {
                v = v
                    .with("ok", false)
                    .with("error", e.kind.as_str())
                    .with("detail", e.detail.as_str());
                if let Some(ms) = e.retry_after_ms {
                    v = v.with("retry_after_ms", ms);
                }
                v
            }
        }
    }

    /// Parses a response line into `(id, response)`.
    pub fn parse(line: &str) -> Result<(Option<u64>, Response), String> {
        let value = Value::parse(line.trim()).map_err(|e| e.to_string())?;
        Response::from_value(&value)
    }

    /// Inverse of [`to_value`](Self::to_value).
    pub fn from_value(value: &Value) -> Result<(Option<u64>, Response), String> {
        let id = value.get("id").and_then(Value::as_u64);
        let ok = value
            .get("ok")
            .and_then(Value::as_bool)
            .ok_or("missing field \"ok\"")?;
        if !ok {
            let kind = value
                .get("error")
                .and_then(Value::as_str)
                .and_then(ErrorKind::from_wire)
                .ok_or("missing or unknown field \"error\"")?;
            let detail = value
                .get("detail")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_owned();
            let retry_after_ms = value.get("retry_after_ms").and_then(Value::as_u64);
            return Ok((
                id,
                Response::Error(ErrorReply {
                    kind,
                    detail,
                    retry_after_ms,
                }),
            ));
        }
        let op = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or("missing field \"op\"")?;
        let response = match op {
            "set_delay" => Response::Delay(DelayReply {
                channel: field_index(value, "channel")?,
                requested_ps: field_f64(value, "requested_ps")?,
                tap: field_index(value, "tap")?,
                dac_code: field_u32(value, "dac_code")?,
                vctrl_mv: field_f64(value, "vctrl_mv")?,
                predicted_ps: field_f64(value, "predicted_ps")?,
                error_ps: field_f64(value, "error_ps")?,
                batched: field_index(value, "batched")?,
            }),
            "deskew" => Response::Deskew(DeskewReply {
                bus: field_index(value, "bus")?,
                before_ps: field_f64(value, "before_ps")?,
                after_ps: field_f64(value, "after_ps")?,
                healthy: field_index(value, "healthy")?,
                quarantined: value
                    .get("quarantined")
                    .and_then(Value::as_arr)
                    .ok_or("missing field \"quarantined\"")?
                    .iter()
                    .map(|v| {
                        v.as_u64()
                            .filter(|&c| c <= MAX_WIRE_INDEX)
                            .map(|c| c as usize)
                            .ok_or("non-integer or out-of-range channel")
                    })
                    .collect::<Result<_, _>>()?,
                reference: field_index(value, "reference")?,
                meets_target: value
                    .get("meets_target")
                    .and_then(Value::as_bool)
                    .ok_or("missing field \"meets_target\"")?,
            }),
            "inject_jitter" => Response::Jitter(JitterReply {
                edges: field_index(value, "edges")?,
                slope_s_per_v: field_f64(value, "slope_s_per_v")?,
            }),
            "selftest" => Response::Selftest(SelftestReply {
                verdict: value
                    .get("verdict")
                    .and_then(Value::as_str)
                    .ok_or("missing field \"verdict\"")?
                    .to_owned(),
                summary: value
                    .get("summary")
                    .and_then(Value::as_str)
                    .ok_or("missing field \"summary\"")?
                    .to_owned(),
                partial: value
                    .get("partial")
                    .and_then(Value::as_bool)
                    .unwrap_or(false),
            }),
            "stats" => Response::Stats(StatsReply {
                requests: field_u64(value, "requests")?,
                ok: field_u64(value, "ok_count")?,
                parse_errors: field_u64(value, "parse_errors")?,
                bad_requests: field_u64(value, "bad_requests")?,
                overloaded: field_u64(value, "overloaded")?,
                deadline_exceeded: field_u64(value, "deadline_exceeded")?,
                internal_errors: field_u64(value, "internal_errors")?,
                batched: field_u64(value, "batched")?,
                quota_rejections: field_u64_or(value, "quota_rejections", 0)?,
                unavailable: field_u64_or(value, "unavailable", 0)?,
                io_timeouts: field_u64_or(value, "io_timeouts", 0)?,
                reaped: field_u64_or(value, "reaped", 0)?,
                quarantined: field_u64_or(value, "quarantined", 0)?,
                unhealthy: field_u64_or(value, "unhealthy", 0)?,
                recalibrations: field_u64_or(value, "recalibrations", 0)?,
                quarantines: field_u64_or(value, "quarantines", 0)?,
                server_epoch: field_u64_or(value, "server_epoch", 0)?,
                banks_restored: field_u64_or(value, "banks_restored", 0)?,
                banks_recalibrated: field_u64_or(value, "banks_recalibrated", 0)?,
                wal_records_replayed: field_u64_or(value, "wal_records_replayed", 0)?,
                restore_us: field_u64_or(value, "restore_us", 0)?,
                dedup_hits: field_u64_or(value, "dedup_hits", 0)?,
                queue_depth: field_u64(value, "queue_depth")?,
                workers: field_u64(value, "workers")?,
                shards: field_u64_or(value, "shards", 1)?,
                banks: field_u64_or(value, "banks", 1)?,
            }),
            "shutdown" => Response::Draining,
            other => return Err(format!("unknown response op {other:?}")),
        };
        Ok((id, response))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let all = [
            Envelope {
                id: Some(7),
                deadline_ms: Some(250),
                tenant: Some("lot-a".to_owned()),
                req_id: Some("retry-0007".to_owned()),
                backend: Some(BackendKind::Dll),
                request: Request::SetDelay {
                    channel: 3,
                    ps: 161.25,
                },
            },
            Envelope::new(Request::Deskew { bus: 8, seed: 42 }),
            Envelope::new(Request::SetDelay {
                channel: 1,
                ps: 50.0,
            })
            .on_backend(BackendKind::Vernier),
            Envelope::new(Request::SetDelay {
                channel: 0,
                ps: 30.0,
            })
            .for_tenant("t07"),
            Envelope::new(Request::InjectJitter {
                vpp_mv: 80.0,
                rate_gbps: 3.2,
                bits: 127,
                seed: 5,
            }),
            Envelope::new(Request::Selftest),
            Envelope::new(Request::Stats),
            Envelope::new(Request::Shutdown),
        ];
        for env in all {
            let line = env.to_value().render();
            let back = Envelope::parse(&line).unwrap_or_else(|e| panic!("{line}: {e:?}"));
            assert_eq!(back, env, "{line}");
        }
    }

    #[test]
    fn junk_is_a_parse_error_and_bad_fields_are_bad_requests() {
        for junk in ["", "not json", "[1,2]", "42", "\"op\"", "{\"op\":", "null"] {
            let err = Envelope::parse(junk).unwrap_err();
            assert_eq!(err.kind, ErrorKind::ParseError, "{junk:?}");
        }
        for bad in [
            "{}",
            "{\"op\":\"warp\"}",
            "{\"op\":\"set_delay\"}",
            "{\"op\":\"set_delay\",\"channel\":-1,\"ps\":10}",
            "{\"op\":\"set_delay\",\"channel\":0,\"ps\":\"x\"}",
            "{\"op\":\"stats\",\"id\":1.5}",
            "{\"op\":\"stats\",\"tenant\":7}",
        ] {
            let err = Envelope::parse(bad).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest, "{bad:?}");
        }
        let over = "x".repeat(MAX_LINE_BYTES + 1);
        assert_eq!(
            Envelope::parse(&over).unwrap_err().kind,
            ErrorKind::ParseError
        );
    }

    #[test]
    fn overflowing_index_fields_are_bad_requests_not_truncations() {
        // Each of these would have silently truncated through `as usize`
        // on a 32-bit target before the MAX_WIRE_INDEX bound.
        for bad in [
            format!(
                "{{\"op\":\"set_delay\",\"channel\":{},\"ps\":10}}",
                u64::MAX
            ),
            format!(
                "{{\"op\":\"set_delay\",\"channel\":{},\"ps\":10}}",
                1u64 << 40
            ),
            format!("{{\"op\":\"deskew\",\"bus\":{}}}", u64::MAX),
            format!(
                "{{\"op\":\"inject_jitter\",\"vpp_mv\":80,\"rate_gbps\":3.2,\"bits\":{}}}",
                (1u64 << 20) + 1
            ),
        ] {
            let err = Envelope::parse(&bad).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest, "{bad}");
            assert!(err.detail.contains("protocol limit"), "{}", err.detail);
        }
        // The bound itself is inclusive: exactly MAX_WIRE_INDEX parses
        // (the server's own channel-count check rejects it later).
        let at_limit = format!("{{\"op\":\"deskew\",\"bus\":{MAX_WIRE_INDEX}}}");
        assert!(Envelope::parse(&at_limit).is_ok());
    }

    #[test]
    fn empty_tenant_is_the_default_tenant_and_long_tenants_are_rejected() {
        let env = Envelope::parse("{\"op\":\"stats\",\"tenant\":\"\"}").unwrap();
        assert_eq!(env.tenant, None);
        let long = format!(
            "{{\"op\":\"stats\",\"tenant\":\"{}\"}}",
            "t".repeat(MAX_TENANT_BYTES + 1)
        );
        let err = Envelope::parse(&long).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert!(err.detail.contains("byte limit"), "{}", err.detail);
    }

    #[test]
    fn backend_selectors_parse_validate_and_bound() {
        // Every valid name parses to its kind; empty and absent both
        // mean "server default".
        for kind in BackendKind::ALL {
            let line = format!("{{\"op\":\"stats\",\"backend\":\"{}\"}}", kind.name());
            let env = Envelope::parse(&line).unwrap();
            assert_eq!(env.backend, Some(kind), "{line}");
        }
        let env = Envelope::parse("{\"op\":\"stats\",\"backend\":\"\"}").unwrap();
        assert_eq!(env.backend, None, "empty selector is the default");
        let env = Envelope::parse("{\"op\":\"stats\"}").unwrap();
        assert_eq!(env.backend, None);
        // An unknown name is a bad_request that lists the valid names.
        let err = Envelope::parse("{\"op\":\"stats\",\"backend\":\"fpga\"}").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert!(
            err.detail.contains("circuit, vernier, dll"),
            "{}",
            err.detail
        );
        // Non-string and oversized selectors are bad_requests too.
        let err = Envelope::parse("{\"op\":\"stats\",\"backend\":3}").unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        let long = format!(
            "{{\"op\":\"stats\",\"backend\":\"{}\"}}",
            "b".repeat(MAX_BACKEND_BYTES + 1)
        );
        let err = Envelope::parse(&long).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert!(err.detail.contains("byte limit"), "{}", err.detail);
    }

    #[test]
    fn req_ids_are_bounded_and_empty_means_absent() {
        let env = Envelope::parse("{\"op\":\"stats\",\"req_id\":\"\"}").unwrap();
        assert_eq!(env.req_id, None, "empty key is no key");
        let env = Envelope::parse("{\"op\":\"stats\",\"req_id\":\"r-1\"}").unwrap();
        assert_eq!(env.req_id.as_deref(), Some("r-1"));
        let long = format!(
            "{{\"op\":\"stats\",\"req_id\":\"{}\"}}",
            "r".repeat(MAX_REQ_ID_BYTES + 1)
        );
        let err = Envelope::parse(&long).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert!(err.detail.contains("byte limit"), "{}", err.detail);
        assert_eq!(
            Envelope::parse("{\"op\":\"stats\",\"req_id\":9}")
                .unwrap_err()
                .kind,
            ErrorKind::BadRequest
        );
    }

    #[test]
    fn recovery_stats_round_trip_and_old_lines_default_to_zero() {
        let full = StatsReply {
            requests: 9,
            ok: 9,
            workers: 2,
            server_epoch: 3,
            banks_restored: 2,
            banks_recalibrated: 1,
            wal_records_replayed: 40,
            restore_us: 12_345,
            dedup_hits: 6,
            ..StatsReply::default()
        };
        let line = Response::Stats(full.clone()).to_value(None).render();
        let (_, back) = Response::parse(&line).unwrap();
        assert_eq!(back, Response::Stats(full), "{line}");
        // A pre-durability stats line decodes with epoch 0 and zeroed
        // recovery fields.
        let old = "{\"ok\":true,\"op\":\"stats\",\"requests\":1,\"ok_count\":1,\
                   \"parse_errors\":0,\"bad_requests\":0,\"overloaded\":0,\
                   \"deadline_exceeded\":0,\"internal_errors\":0,\"batched\":0,\
                   \"queue_depth\":0,\"workers\":1}";
        let (_, response) = Response::parse(old).unwrap();
        let Response::Stats(stats) = response else {
            panic!("expected stats, got {response:?}");
        };
        assert_eq!(stats.server_epoch, 0);
        assert_eq!(stats.banks_restored, 0);
        assert_eq!(stats.dedup_hits, 0);
    }

    #[test]
    fn unavailable_and_partial_selftest_round_trip() {
        // The quarantine error: kind + retry hint survive the wire.
        let quarantined = Response::Error(ErrorReply {
            kind: ErrorKind::Unavailable,
            detail: "channel 7 is quarantined pending recalibration".to_owned(),
            retry_after_ms: Some(120),
        });
        let line = quarantined.to_value(Some(3)).render();
        let (id, back) = Response::parse(&line).unwrap();
        assert_eq!(id, Some(3));
        assert_eq!(back, quarantined, "{line}");
        assert_eq!(
            ErrorKind::from_wire("unavailable"),
            Some(ErrorKind::Unavailable)
        );

        // A partial selftest renders the flag; a full one omits it and
        // still decodes (old clients never see an unknown field flip).
        for partial in [true, false] {
            let reply = Response::Selftest(SelftestReply {
                verdict: "healthy".to_owned(),
                summary: "calibration ok; dac sweep skipped".to_owned(),
                partial,
            });
            let line = reply.to_value(None).render();
            assert_eq!(line.contains("partial"), partial, "{line}");
            let (_, back) = Response::parse(&line).unwrap();
            assert_eq!(back, reply, "{line}");
        }
    }

    #[test]
    fn stats_without_health_fields_still_decode() {
        // A pre-health server's stats line (no unavailable/io_timeouts/
        // reaped/quarantined/... fields) must decode with zero defaults.
        let line = "{\"ok\":true,\"op\":\"stats\",\"requests\":5,\"ok_count\":5,\
                    \"parse_errors\":0,\"bad_requests\":0,\"overloaded\":0,\
                    \"deadline_exceeded\":0,\"internal_errors\":0,\"batched\":0,\
                    \"queue_depth\":0,\"workers\":2}";
        let (_, response) = Response::parse(line).unwrap();
        let Response::Stats(stats) = response else {
            panic!("expected stats, got {response:?}");
        };
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.unavailable, 0);
        assert_eq!(stats.io_timeouts, 0);
        assert_eq!(stats.reaped, 0);
        assert_eq!(stats.quarantined, 0);
        assert_eq!(stats.unhealthy, 0);
        assert_eq!(stats.recalibrations, 0);
        assert_eq!(stats.quarantines, 0);
        // And a full modern line round-trips every new field.
        let full = StatsReply {
            unavailable: 3,
            io_timeouts: 2,
            reaped: 1,
            quarantined: 1,
            unhealthy: 2,
            recalibrations: 4,
            quarantines: 2,
            ..stats
        };
        let line = Response::Stats(full.clone()).to_value(None).render();
        let (_, back) = Response::parse(&line).unwrap();
        assert_eq!(back, Response::Stats(full), "{line}");
    }

    #[test]
    fn oversized_response_fields_are_decode_errors() {
        let line = format!(
            "{{\"ok\":true,\"op\":\"set_delay\",\"channel\":1,\"requested_ps\":10.0,\
             \"tap\":2,\"dac_code\":{},\"vctrl_mv\":900.0,\"predicted_ps\":10.0,\
             \"error_ps\":0.0,\"batched\":1}}",
            u64::MAX
        );
        let err = Response::parse(&line).unwrap_err();
        assert!(err.contains("does not fit in u32"), "{err}");
    }
}
