//! The server: accept thread → consistent-hash routing → per-shard
//! fair queues → per-shard worker pools.
//!
//! Life of a request (DESIGN.md §12 and §14):
//!
//! 1. the accept thread hands each connection to a reader thread;
//! 2. the reader extracts newline-delimited lines (oversized lines are
//!    answered `parse_error` and discarded to the next newline),
//!    parses them, charges the tenant's token bucket (an over-quota
//!    tenant draws `overloaded` before touching any queue), stamps an
//!    admission index and a [`Deadline`](vardelay_runner::Deadline),
//!    routes `(tenant, channel)` through the consistent-hash ring, and
//!    `try_push`es a job into the shard's [`FairQueue`] — a full tenant
//!    lane answers `overloaded` with a retry hint instead of blocking
//!    the socket or crowding out other tenants;
//! 3. a shard worker pops the job (lanes drain deficit-round-robin). A
//!    `set_delay` lead waits one batch window, drains every queued
//!    same-tenant same-channel `set_delay` from its own lane, and
//!    answers the whole batch from one solve on the tenant's
//!    cache-calibrated bank (last write wins). Handlers run under
//!    `catch_unwind`: a cooperative [`DeadlineBail`] becomes a
//!    `deadline_exceeded` response, any other panic (including injected
//!    [`RequestChaos`] kills) becomes an `internal` response, and the
//!    worker survives either way;
//! 4. shutdown (wire request or [`ServerHandle::shutdown`]) stops the
//!    accept loop, readers finish their buffers and exit, every shard
//!    queue is closed, workers drain what was admitted, and
//!    [`ServerHandle::join`] returns the final counters.
//!
//! Tenant banks are instantiated lazily with LRU eviction past
//! `VARDELAY_SERVE_MAX_BANKS` — all banks share one model fingerprint,
//! so lazy calibration and re-admission after eviction answer from the
//! fast-solve cache instead of re-sweeping.
//!
//! Two background loops keep the server honest over months, not
//! milliseconds (DESIGN.md §15): a per-shard **health supervisor**
//! (period `VARDELAY_SERVE_HEALTH_MS`) runs drift sentinels over the
//! resident banks, rebuilds stale tables on a private copy and swaps
//! them in atomically, and quarantines grossly-drifted channels; and a
//! **partial-line reaper** (deadline `VARDELAY_SERVE_IO_TIMEOUT_MS`)
//! cuts connections whose half-sent request has been pending past the
//! IO deadline — the slow-loris case an idle check cannot see, because
//! a byte-dripping client never looks idle.
//!
//! With `VARDELAY_SERVE_STATE_DIR` set the server is also *durable*
//! (DESIGN.md §16): calibration tables and health states persist to a
//! [`SnapshotStore`], state-mutating commits append to a digest-checked
//! [`Wal`] before the response leaves the socket, and a restart
//! warm-starts by restoring snapshots (sentinel-verified per channel),
//! replaying the WAL, and bumping a monotonic `server_epoch` stamped
//! into every response. `req_id`-tagged requests deduplicate through a
//! [`DedupTable`] window that survives the restart via the WAL.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vardelay_ate::{DegradedPolicy, DeskewEngine, ParallelBus};
use vardelay_backend::{BackendKind, BackendSentinel};
use vardelay_core::config::ModelConfig;
use vardelay_core::{
    check_calibration, test_dac, CalibrationTable, CircuitHealth, HealthVerdict, JitterInjector,
    SentinelConfig,
};
use vardelay_faults::RequestChaos;
use vardelay_runner::{
    panic_message, task_seed, worker_threads_from_env, Deadline, DeadlineBail, Runner,
};
use vardelay_siggen::{BitPattern, EdgeStream, SplitMix64};
use vardelay_units::{BitRate, Time, Voltage};

use crate::dedup::DedupTable;
use crate::health::{HealthAction, HealthTable};
use crate::persist::{SnapshotError, SnapshotStore};
use crate::protocol::{
    DelayReply, DeskewReply, Envelope, ErrorKind, ErrorReply, JitterReply, Request, Response,
    SelftestReply, StatsReply, MAX_LINE_BYTES,
};
use crate::queue::FairQueue;
use crate::shard::{
    tenant_lane, BankHooks, BankId, BankRegistry, HashRing, QuotaTable, TenantBank,
};
use crate::wal::{Wal, WalRecord};

/// Seed for the service's model instances (shared by every bank so the
/// characterization and fast-solve caches single-flight calibration).
/// Public so out-of-process checks (the soak e2e) can rebuild the exact
/// circuit a bank channel holds and compare answers byte for byte.
pub const SERVE_SEED: u64 = 0x5e7e;

/// Consecutive healthy sentinel rounds a quarantined channel must post
/// before re-admission (the K of DESIGN.md §15).
const RECOVERY_ROUNDS: u32 = 3;

/// Responses cached per tenant for `req_id` retry deduplication
/// (DESIGN.md §16).
const DEDUP_WINDOW: usize = 64;

/// How it all runs. Build with [`from_env`](Self::from_env) for the
/// standalone server or [`in_process`](Self::in_process) for tests and
/// the load generator.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`VARDELAY_SERVE_ADDR`).
    pub addr: String,
    /// Per-tenant lane depth in each shard's fair queue
    /// (`VARDELAY_SERVE_QUEUE`); a full lane answers `overloaded`.
    pub queue_depth: usize,
    /// Batch coalescing window (`VARDELAY_SERVE_BATCH_US`): how long a
    /// `set_delay` lead waits for same-channel followers.
    pub batch_window: Duration,
    /// Worker threads (`VARDELAY_THREADS` via
    /// [`worker_threads_from_env`]), distributed round-robin across the
    /// shards with at least one each.
    pub workers: usize,
    /// Independent bank shards (`VARDELAY_SERVE_SHARDS`); requests are
    /// routed by consistent hashing over `(tenant, channel)`.
    pub shards: usize,
    /// Delay channels the service exposes per tenant bank.
    pub channels: usize,
    /// Resident tenant banks before LRU eviction
    /// (`VARDELAY_SERVE_MAX_BANKS`).
    pub max_banks: usize,
    /// Per-tenant token-bucket refill rate in requests/second
    /// (`VARDELAY_SERVE_QUOTA_RPS`); `None` disables quotas.
    pub quota_rps: Option<f64>,
    /// Token-bucket burst cap (`VARDELAY_SERVE_QUOTA_BURST`); `None`
    /// derives `max(2 × rate, 8)`.
    pub quota_burst: Option<f64>,
    /// Default per-request budget when the envelope has no
    /// `deadline_ms`.
    pub default_deadline: Duration,
    /// Seeded worker-kill chaos (`VARDELAY_SERVE_CHAOS`).
    pub chaos: Option<RequestChaos>,
    /// Health-supervisor period (`VARDELAY_SERVE_HEALTH_MS`; 0 or
    /// `None` disables the supervisor — the in-process default, so
    /// existing tests see no background probing).
    pub health_period: Option<Duration>,
    /// Per-connection IO deadline (`VARDELAY_SERVE_IO_TIMEOUT_MS`):
    /// bounds response writes and how long a partial request line may
    /// sit before the reaper cuts the connection.
    pub io_timeout: Duration,
    /// Whether the supervisor rebuilds stale tables
    /// (`VARDELAY_SERVE_RECAL`; disable to sabotage self-healing — the
    /// soak gate's red lever).
    pub recalibrate: bool,
    /// Durable state directory (`VARDELAY_SERVE_STATE_DIR`). `None`
    /// disables the snapshot store, the WAL, and warm restart — the
    /// server is purely in-memory, exactly as before PR 9.
    pub state_dir: Option<PathBuf>,
    /// Pending WAL records before a snapshot-then-truncate compaction
    /// (`VARDELAY_SERVE_WAL_COMPACT`; default 512). Ignored without a
    /// state directory.
    pub wal_compact: u64,
    /// Default delay backend (`VARDELAY_SERVE_BACKEND`): the hardware
    /// family serving requests whose envelope carries no `backend`
    /// field (DESIGN.md §17). Folded into the snapshot fingerprint, so
    /// flipping it forces a recalibration instead of ever reusing
    /// another family's tables.
    pub backend: BackendKind,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn env_f64(key: &str) -> Option<f64> {
    std::env::var(key)
        .ok()
        .and_then(|raw| raw.trim().parse::<f64>().ok())
        .filter(|&v| v.is_finite() && v > 0.0)
}

impl ServeConfig {
    /// The standalone configuration: every knob from the environment,
    /// defaults matching the README table.
    pub fn from_env() -> ServeConfig {
        let addr = std::env::var("VARDELAY_SERVE_ADDR")
            .ok()
            .filter(|a| !a.trim().is_empty())
            .unwrap_or_else(|| "127.0.0.1:4848".to_owned());
        let batch_us = std::env::var("VARDELAY_SERVE_BATCH_US")
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .unwrap_or(100);
        ServeConfig {
            addr,
            queue_depth: env_usize("VARDELAY_SERVE_QUEUE", 64),
            batch_window: Duration::from_micros(batch_us),
            workers: worker_threads_from_env(),
            shards: env_usize("VARDELAY_SERVE_SHARDS", 4),
            channels: 8,
            max_banks: env_usize("VARDELAY_SERVE_MAX_BANKS", 8),
            quota_rps: env_f64("VARDELAY_SERVE_QUOTA_RPS"),
            quota_burst: env_f64("VARDELAY_SERVE_QUOTA_BURST"),
            default_deadline: Duration::from_secs(2),
            chaos: RequestChaos::from_env(),
            health_period: {
                let ms = std::env::var("VARDELAY_SERVE_HEALTH_MS")
                    .ok()
                    .and_then(|raw| raw.trim().parse::<u64>().ok())
                    .unwrap_or(1000);
                (ms > 0).then(|| Duration::from_millis(ms))
            },
            io_timeout: Duration::from_millis(
                env_usize("VARDELAY_SERVE_IO_TIMEOUT_MS", 10_000) as u64
            ),
            recalibrate: !matches!(
                std::env::var("VARDELAY_SERVE_RECAL").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            ),
            state_dir: std::env::var("VARDELAY_SERVE_STATE_DIR")
                .ok()
                .map(|raw| raw.trim().to_owned())
                .filter(|raw| !raw.is_empty())
                .map(PathBuf::from),
            wal_compact: std::env::var("VARDELAY_SERVE_WAL_COMPACT")
                .ok()
                .and_then(|raw| raw.trim().parse::<u64>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(512),
            backend: {
                // An unknown name falls back to the circuit reference
                // loudly: silently serving the wrong hardware family
                // would be worse than a startup warning.
                if let Ok(raw) = std::env::var("VARDELAY_SERVE_BACKEND") {
                    let raw = raw.trim();
                    if !raw.is_empty() && BackendKind::from_name(raw).is_none() {
                        eprintln!(
                            "VARDELAY_SERVE_BACKEND={raw:?} is not a known backend \
                             (valid: {}); using circuit",
                            BackendKind::valid_names()
                        );
                    }
                }
                BackendKind::from_env()
            },
        }
    }

    /// An ephemeral-port configuration for in-process use (tests, the
    /// `serve-bench` load generator). Environment-independent apart
    /// from the worker count; single-shard, unlimited quota — the
    /// serial baseline the sharded equivalence test compares against.
    pub fn in_process() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            queue_depth: 64,
            batch_window: Duration::from_micros(100),
            workers: worker_threads_from_env(),
            shards: 1,
            channels: 8,
            max_banks: 8,
            quota_rps: None,
            quota_burst: None,
            default_deadline: Duration::from_secs(2),
            chaos: None,
            health_period: None,
            io_timeout: Duration::from_secs(10),
            recalibrate: true,
            state_dir: None,
            wal_compact: 512,
            backend: BackendKind::Circuit,
        }
    }
}

/// Response counters, mirrored into the `stats` reply and the final
/// [`DrainReport`].
#[derive(Debug, Default)]
struct Stats {
    requests: AtomicU64,
    ok: AtomicU64,
    parse_errors: AtomicU64,
    bad_requests: AtomicU64,
    overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    internal_errors: AtomicU64,
    batched: AtomicU64,
    quota_rejections: AtomicU64,
    unavailable: AtomicU64,
    io_timeouts: AtomicU64,
    reaped: AtomicU64,
}

impl Stats {
    fn count_response(&self, response: &Response) {
        let counter = match response.error_kind() {
            None => &self.ok,
            Some(ErrorKind::ParseError) => &self.parse_errors,
            Some(ErrorKind::BadRequest) => &self.bad_requests,
            Some(ErrorKind::Overloaded) => &self.overloaded,
            Some(ErrorKind::DeadlineExceeded) => &self.deadline_exceeded,
            Some(ErrorKind::Internal) => &self.internal_errors,
            Some(ErrorKind::Unavailable) => &self.unavailable,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[allow(clippy::too_many_arguments)]
    fn snapshot(
        &self,
        queue_depth: u64,
        workers: u64,
        shards: u64,
        banks: u64,
        health: &HealthTable,
        epoch: u64,
        recovery: &RecoveryLedger,
        dedup_hits: u64,
    ) -> StatsReply {
        StatsReply {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            internal_errors: self.internal_errors.load(Ordering::Relaxed),
            batched: self.batched.load(Ordering::Relaxed),
            quota_rejections: self.quota_rejections.load(Ordering::Relaxed),
            unavailable: self.unavailable.load(Ordering::Relaxed),
            io_timeouts: self.io_timeouts.load(Ordering::Relaxed),
            reaped: self.reaped.load(Ordering::Relaxed),
            quarantined: health.quarantined_now(),
            unhealthy: health.unhealthy_now(),
            recalibrations: health.recalibrations(),
            quarantines: health.quarantines(),
            server_epoch: epoch,
            banks_restored: recovery.banks_restored.load(Ordering::Relaxed),
            banks_recalibrated: recovery.banks_recalibrated.load(Ordering::Relaxed),
            wal_records_replayed: recovery.wal_records_replayed.load(Ordering::Relaxed),
            restore_us: recovery.restore_us.load(Ordering::Relaxed),
            dedup_hits,
            queue_depth,
            workers,
            shards,
            banks,
        }
    }
}

/// What the last warm restart accomplished, mirrored into `stats`.
#[derive(Debug, Default)]
struct RecoveryLedger {
    /// Banks whose build restored ≥ 1 channel table from a snapshot.
    banks_restored: AtomicU64,
    /// Banks with persisted state that nonetheless recalibrated ≥ 1
    /// channel (corrupt snapshot, fingerprint mismatch, or a
    /// sentinel-rejected table).
    banks_recalibrated: AtomicU64,
    /// WAL records applied during recovery.
    wal_records_replayed: AtomicU64,
    /// Wall time of the recovery pass, microseconds.
    restore_us: AtomicU64,
}

/// The durable half of a state-dir-configured server.
struct Durability {
    store: Arc<SnapshotStore>,
    wal: Mutex<Wal>,
    /// Pending records that trigger a snapshot-then-truncate pass.
    compact_every: u64,
}

/// The [`BankHooks`] implementation that makes the registry durable:
/// builds restore from (and re-verify) snapshots, finished builds and
/// evictions persist the bank — so quarantine state survives LRU
/// eviction, not just restarts.
struct DurabilityHooks {
    store: Arc<SnapshotStore>,
    health: Arc<HealthTable>,
    recovery: Arc<RecoveryLedger>,
    /// The server's default backend. Only its banks persist: the
    /// snapshot fingerprint describes exactly one hardware family, so a
    /// wire-selected non-default bank is ephemeral — rebuilt from the
    /// fast-solve cache on demand, never written where a different
    /// family's restart might find it.
    default: BackendKind,
}

impl BankHooks for DurabilityHooks {
    fn restore(&self, id: &BankId, channel: usize) -> Option<CalibrationTable> {
        if id.kind() != self.default {
            return None;
        }
        match self.store.load_channel(id.tenant(), channel) {
            Ok(snap) => {
                // The health state rides the snapshot: a quarantined
                // channel stays quarantined across restart and eviction
                // instead of silently re-entering service.
                self.health.restore(id.tenant(), channel, snap.state);
                Some(snap.table)
            }
            Err(SnapshotError::Missing) => None,
            Err(why) => {
                vardelay_obs::counter("recovery.snapshots_refused").add(1);
                let _ = why; // counted; the store logged specifics
                None
            }
        }
    }

    fn built(&self, id: &BankId, bank: &TenantBank, restored: &[bool]) {
        if id.kind() != self.default {
            return;
        }
        let persisted = self.store.channels_of(id.tenant());
        if restored.iter().any(|&r| r) {
            self.recovery.banks_restored.fetch_add(1, Ordering::Relaxed);
        }
        if persisted
            .iter()
            .any(|&ch| restored.get(ch).is_some_and(|&r| !r))
        {
            self.recovery
                .banks_recalibrated
                .fetch_add(1, Ordering::Relaxed);
        }
        // Persist on install: the freshly-built (or freshly-verified)
        // tables are the durable truth from this moment.
        persist_bank(&self.store, &self.health, id.tenant(), bank);
    }

    fn evicted(&self, id: &BankId, bank: &TenantBank) {
        if id.kind() != self.default {
            return;
        }
        persist_bank(&self.store, &self.health, id.tenant(), bank);
    }
}

/// Persists every calibrated channel of `bank` (table + health state).
/// Returns `false` when any save failed to publish — the caller must
/// then keep the WAL, because the snapshots no longer cover it.
fn persist_bank(
    store: &SnapshotStore,
    health: &HealthTable,
    tenant: &str,
    bank: &TenantBank,
) -> bool {
    let mut all_saved = true;
    for (channel, slot) in bank.channels.iter().enumerate() {
        let table = {
            let circuit = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            circuit.calibration().cloned()
        };
        let Some(table) = table else {
            continue;
        };
        let state = health.state(tenant, channel);
        if store.save_channel(tenant, channel, state, &table).is_err() {
            vardelay_obs::counter("persist.save_failures").add(1);
            all_saved = false;
        }
    }
    all_saved
}

/// Snapshot-then-truncate compaction (DESIGN.md §16): persist every
/// resident bank, then empty the log its records described. A crash
/// between the two steps (the `wal-compact` kill point) is harmless —
/// the next boot replays the idempotent records over the fresh
/// snapshots and converges to the same state. If any snapshot failed to
/// publish, the WAL is kept: replaying it over a stale snapshot is
/// correct, dropping it would not be.
fn compact_wal(
    registry: &BankRegistry,
    store: &SnapshotStore,
    health: &HealthTable,
    wal: &mut Wal,
    default: BackendKind,
) {
    let mut all_saved = true;
    for (id, bank) in registry.snapshot() {
        // Non-default banks are ephemeral (see [`DurabilityHooks`]);
        // their WAL-free existence never blocks a truncation.
        if id.kind() != default {
            continue;
        }
        all_saved &= persist_bank(store, health, id.tenant(), &bank);
    }
    vardelay_faults::kill_point("wal-compact");
    if all_saved && wal.truncate().is_ok() {
        vardelay_obs::counter("wal.compactions").add(1);
    }
}

/// The circuit identity stamped into snapshots: quiet-model fingerprint
/// folded with the shared bank seed, the channel count, and the default
/// backend's name. Any config, topology, or backend change mints a new
/// fingerprint, and old snapshots refuse to load rather than ever
/// serving a wrong table — in particular, flipping
/// `VARDELAY_SERVE_BACKEND` across a restart forces a recalibration
/// instead of installing another hardware family's tables.
fn bank_fingerprint(model: &ModelConfig, channels: usize, backend: BackendKind) -> u64 {
    vardelay_obs::artifact::digest(&format!(
        "{:016x}/{SERVE_SEED:016x}/{channels}/{}",
        model.quiet().fingerprint(),
        backend.name()
    ))
}

/// Applies recovered WAL records in append order. `apply` records
/// re-execute the solve (idempotent: the same picosecond target lands
/// on the same tap and DAC codes), `dedup` records re-seed the
/// idempotency window without re-executing, `health` records overwrite
/// the health table so the last logged transition wins. Returns how
/// many records took effect.
fn replay_wal(
    records: &[WalRecord],
    registry: &BankRegistry,
    health: &HealthTable,
    dedup: &DedupTable,
    channels: usize,
    default: BackendKind,
) -> u64 {
    let mut replayed = 0u64;
    for record in records {
        match record {
            WalRecord::Apply {
                tenant,
                channel,
                ps,
            } => {
                if *channel >= channels || !ps.is_finite() {
                    continue;
                }
                // Only default-backend solves are ever logged, so
                // replay re-targets the default bank.
                let bank = registry.get(&BankId::new(tenant.as_str(), default), Runner::serial());
                let Some(slot) = bank.channels.get(*channel) else {
                    continue;
                };
                let mut backend = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                if backend.set_delay(Time::from_ps(*ps)).is_ok() {
                    replayed += 1;
                }
            }
            WalRecord::Dedup {
                tenant,
                req_id,
                response,
            } => {
                if let Ok((_, response)) = Response::parse(response) {
                    dedup.record(tenant, req_id, &response);
                    replayed += 1;
                }
            }
            WalRecord::Health {
                tenant,
                channel,
                state,
            } => {
                health.restore(tenant, *channel, *state);
                replayed += 1;
            }
        }
    }
    replayed
}

/// The health-table key for a bank: the bare tenant label for the
/// server's default backend (so persisted health states, WAL records,
/// and every pre-backend deployment read unchanged), or a composite
/// with an unprintable separator for a wire-selected non-default bank.
/// The composite is in-memory only — never parsed back, never
/// persisted — so a tenant label containing the separator cannot
/// collide with a real `(tenant, backend)` pair's durable state.
fn health_key(id: &BankId, default: BackendKind) -> String {
    if id.kind() == default {
        id.tenant().to_owned()
    } else {
        format!("{}\u{1f}{}", id.tenant(), id.kind().name())
    }
}

/// One admitted request waiting for a shard worker.
struct Job {
    envelope: Envelope,
    /// Normalized tenant label (empty = default tenant).
    tenant: String,
    /// The delay backend answering this request (the envelope's
    /// selector, or the server default).
    backend: BackendKind,
    /// The tenant's fair-queue lane key.
    lane: u64,
    /// The shard the ring routed this job to.
    shard: usize,
    deadline: Deadline,
    reply: Arc<Mutex<TcpStream>>,
    index: u64,
}

/// One shard: its fair queue. Workers are plain threads indexed into
/// [`Shared::shards`], so the struct stays data-only.
struct ShardState {
    queue: FairQueue<Job>,
}

/// What the reaper knows about one live connection: a handle it can cut
/// and the wall-clock moment (milliseconds since server start, 0 =
/// none) at which the connection's current partial line began.
struct ConnEntry {
    stream: TcpStream,
    pending_since_ms: Arc<AtomicU64>,
}

struct Shared {
    shards: Vec<ShardState>,
    ring: HashRing,
    registry: BankRegistry,
    quota: QuotaTable,
    model: ModelConfig,
    /// Channels each tenant bank exposes.
    channels: usize,
    /// The default delay backend (requests without a `backend` field).
    backend: BackendKind,
    stats: Stats,
    shutdown: AtomicBool,
    next_index: AtomicU64,
    next_conn: AtomicU64,
    /// Worker threads actually running (spawn failures shrink the pool
    /// instead of aborting the server).
    workers: AtomicU64,
    batch_window: Duration,
    default_deadline: Duration,
    chaos: Option<RequestChaos>,
    /// Channel health ledger fed by the supervisors (shared across
    /// shards; each supervisor only probes the channels its shard owns).
    health: Arc<HealthTable>,
    health_period: Option<Duration>,
    io_timeout: Duration,
    recalibrate: bool,
    /// Reaper's view of live connections, keyed by connection id.
    conns: Mutex<HashMap<u64, ConnEntry>>,
    /// Server start, the epoch for `pending_since_ms`.
    started: Instant,
    /// Snapshot store + WAL, present only with a state directory.
    durability: Option<Durability>,
    /// The `req_id` idempotency window (active with or without a state
    /// dir; only its *persistence* needs the WAL).
    dedup: DedupTable,
    /// Monotonic restart counter stamped into every response (1 when no
    /// state dir is configured).
    epoch: u64,
    /// What the warm restart restored, for `stats`.
    recovery: Arc<RecoveryLedger>,
}

impl Shared {
    fn queue_depth(&self) -> u64 {
        self.shards.iter().map(|s| s.queue.len() as u64).sum()
    }

    fn stats_reply(&self) -> StatsReply {
        self.stats.snapshot(
            self.queue_depth(),
            self.workers.load(Ordering::Relaxed),
            self.shards.len() as u64,
            self.registry.resident() as u64,
            &self.health,
            self.epoch,
            &self.recovery,
            self.dedup.hits(),
        )
    }

    /// Milliseconds since the server started (the reaper clock).
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Appends one record to the WAL (no-op without a state dir),
    /// compacting once the pending count crosses the threshold. Append
    /// failures are counted, never fatal: durability degrades, serving
    /// does not.
    fn wal_append(&self, record: &WalRecord) {
        let Some(durability) = &self.durability else {
            return;
        };
        let mut wal = durability.wal.lock().unwrap_or_else(|e| e.into_inner());
        if wal.append(record).is_err() {
            vardelay_obs::counter("wal.append_failures").add(1);
            return;
        }
        if wal.pending() >= durability.compact_every {
            compact_wal(
                &self.registry,
                &durability.store,
                &self.health,
                &mut wal,
                self.backend,
            );
        }
    }
}

/// The final counters a drained server reports.
#[derive(Debug, Clone, PartialEq)]
pub struct DrainReport {
    /// Every counter at the moment the last worker exited.
    pub stats: StatsReply,
}

impl std::fmt::Display for DrainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = &self.stats;
        write!(
            f,
            "drained: requests={} ok={} parse_error={} bad_request={} overloaded={} \
             deadline_exceeded={} internal={} batched={} quota_rejected={} shards={} \
             unavailable={} io_timeouts={} reaped={} recalibrations={} quarantines={}",
            s.requests,
            s.ok,
            s.parse_errors,
            s.bad_requests,
            s.overloaded,
            s.deadline_exceeded,
            s.internal_errors,
            s.batched,
            s.quota_rejections,
            s.shards,
            s.unavailable,
            s.io_timeouts,
            s.reaped,
            s.recalibrations,
            s.quarantines
        )
    }
}

/// A running server. Dropping the handle without
/// [`join`](Self::join)ing detaches the threads; prefer joining.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Health supervisors + the connection reaper.
    background: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain programmatically (same effect as a wire
    /// `shutdown` request).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.shutdown.load(Ordering::Relaxed)
    }

    /// Blocks until the server has fully drained: accept loop stopped,
    /// readers gone, every admitted job answered, workers exited.
    pub fn join(mut self) -> DrainReport {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // No producers remain; close every shard queue so workers drain
        // their backlog and exit.
        for shard in &self.shared.shards {
            shard.queue.close();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Supervisors and the reaper poll the shutdown flag; they exit
        // within one slice.
        for thread in self.background.drain(..) {
            let _ = thread.join();
        }
        // Parting persistence: a cleanly-drained durable server leaves
        // fresh snapshots and an empty WAL, so the next boot restores
        // without replaying anything.
        if let Some(durability) = &self.shared.durability {
            let mut wal = durability.wal.lock().unwrap_or_else(|e| e.into_inner());
            compact_wal(
                &self.shared.registry,
                &durability.store,
                &self.shared.health,
                &mut wal,
                self.shared.backend,
            );
        }
        DrainReport {
            stats: self.shared.stats_reply(),
        }
    }

    /// The state directory's monotonic restart counter (1 when no state
    /// dir is configured — an in-memory server is its own first epoch).
    pub fn server_epoch(&self) -> u64 {
        self.shared.epoch
    }

    /// Fault hook for soak/e2e drivers: steps `tenant`'s `channel` on
    /// the default backend to a physically drifted instance (`delta_k`
    /// kelvin through the backend's temperature model) while keeping
    /// its now-stale calibration table installed — exactly what a
    /// temperature excursion does to a long-running installation. The
    /// replacement is rebuilt from the backend's own pristine config
    /// and seed, so once the health loop recalibrates, answers must be
    /// byte-identical to a freshly calibrated drifted bank. Masked
    /// (returns `false`) by `VARDELAY_FAULTS=0` and when the tenant's
    /// bank is not resident.
    pub fn inject_drift(&self, tenant: &str, channel: usize, delta_k: f64) -> bool {
        if !vardelay_faults::enabled() {
            return false;
        }
        let id = BankId::new(tenant, self.shared.backend);
        let Some(bank) = self.shared.registry.peek(&id) else {
            return false;
        };
        let Some(slot) = bank.channels.get(channel) else {
            return false;
        };
        let mut backend = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        backend.inject_drift(delta_k);
        true
    }

    /// The current health state of `tenant`'s `channel` (for drivers
    /// that want to watch probation/quarantine without wire stats).
    pub fn channel_state(&self, tenant: &str, channel: usize) -> crate::health::ChannelState {
        self.shared.health.state(tenant, channel)
    }

    /// The server's default delay backend.
    pub fn backend(&self) -> BackendKind {
        self.shared.backend
    }
}

/// Binds, recovers durable state when a state directory is configured
/// (snapshot restore → WAL replay → compaction), eagerly calibrates the
/// default tenant's bank (one full sweep through the solve cache; every
/// later bank rides the fast path), and spawns the accept thread and
/// the per-shard worker pools.
pub fn serve(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let model = ModelConfig::paper_prototype();
    let channels = config.channels.max(1);
    let default_backend = config.backend;
    let shard_count = config.shards.max(1);
    let registry = BankRegistry::new(model.clone(), channels, SERVE_SEED, config.max_banks.max(1));
    let health = Arc::new(HealthTable::new(RECOVERY_ROUNDS));
    let recovery = Arc::new(RecoveryLedger::default());
    let dedup = DedupTable::new(DEDUP_WINDOW);
    let mut epoch = 1u64;
    // Warm restart happens before the listener answers anything: hooks
    // first (so every bank build consults the store), then persisted
    // tenants rebuild through the sentinel-verified restore path, then
    // the WAL replays over them, then a compaction folds the replayed
    // state into fresh snapshots and empties the log.
    let durability = match &config.state_dir {
        None => None,
        Some(dir) => {
            let fingerprint = bank_fingerprint(&model, channels, default_backend);
            let store = Arc::new(SnapshotStore::open(dir.clone(), fingerprint)?);
            epoch = store.bump_epoch()?;
            registry.set_hooks(Arc::new(DurabilityHooks {
                store: Arc::clone(&store),
                health: Arc::clone(&health),
                recovery: Arc::clone(&recovery),
                default: default_backend,
            }));
            let restore_started = Instant::now();
            let (mut wal, records, _torn) = Wal::open(&store.wal_path())?;
            // Persisted banks rebuild through the parallel runner: the
            // per-channel restore fans out, so a warm boot's sentinel
            // sweeps cost one channel's probes of wall clock, not
            // eight.
            for tenant in store.tenants() {
                registry.get(&BankId::new(tenant, default_backend), Runner::from_env());
            }
            let replayed = replay_wal(
                &records,
                &registry,
                &health,
                &dedup,
                channels,
                default_backend,
            );
            recovery
                .wal_records_replayed
                .store(replayed, Ordering::Relaxed);
            compact_wal(&registry, &store, &health, &mut wal, default_backend);
            recovery.restore_us.store(
                restore_started.elapsed().as_micros() as u64,
                Ordering::Relaxed,
            );
            Some(Durability {
                store,
                wal: Mutex::new(wal),
                compact_every: config.wal_compact.max(1),
            })
        }
    };
    // The default tenant is warmed eagerly with the parallel runner so
    // the very first sweep (the only one that misses the fast-solve
    // cache) uses every core; lazy tenant banks built on worker threads
    // calibrate serially through the cache instead. After a warm
    // restart this is a no-op LRU refresh.
    registry.get(&BankId::new("", default_backend), Runner::from_env());

    let quota_rate = config.quota_rps.filter(|r| r.is_finite() && *r > 0.0);
    let quota_burst = config
        .quota_burst
        .or(quota_rate.map(|r| (2.0 * r).max(8.0)))
        .unwrap_or(8.0);

    let shared = Arc::new(Shared {
        shards: (0..shard_count)
            .map(|_| ShardState {
                queue: FairQueue::new(config.queue_depth),
            })
            .collect(),
        ring: HashRing::new(shard_count),
        registry,
        quota: QuotaTable::new(quota_rate, quota_burst),
        model,
        channels,
        backend: default_backend,
        stats: Stats::default(),
        shutdown: AtomicBool::new(false),
        next_index: AtomicU64::new(0),
        next_conn: AtomicU64::new(0),
        workers: AtomicU64::new(0),
        batch_window: config.batch_window,
        default_deadline: config.default_deadline,
        chaos: config.chaos,
        health,
        health_period: config.health_period,
        io_timeout: config.io_timeout.max(Duration::from_millis(1)),
        recalibrate: config.recalibrate,
        conns: Mutex::new(HashMap::new()),
        started: Instant::now(),
        durability,
        dedup,
        epoch,
        recovery,
    });

    // Round-robin the worker budget across shards, at least one each.
    // A failed spawn shrinks the pool (counted) instead of panicking
    // mid-startup; only a shard left with *zero* workers is fatal,
    // because its queue would never drain.
    let total_workers = config.workers.max(shard_count);
    let mut workers = Vec::with_capacity(total_workers);
    let mut per_shard = vec![0usize; shard_count];
    for i in 0..total_workers {
        let shard = i % shard_count;
        let worker_shared = Arc::clone(&shared);
        match std::thread::Builder::new()
            .name(format!("serve-worker-{shard}-{i}"))
            .spawn(move || worker_loop(&worker_shared, shard))
        {
            Ok(handle) => {
                workers.push(handle);
                per_shard[shard] += 1;
                shared.workers.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                vardelay_obs::counter("serve.spawn_failures").add(1);
            }
        }
    }
    if per_shard.contains(&0) {
        for shard in &shared.shards {
            shard.queue.close();
        }
        for worker in workers {
            let _ = worker.join();
        }
        return Err(std::io::Error::other(
            "could not spawn at least one worker per shard",
        ));
    }

    let accept = {
        let accept_shared = Arc::clone(&shared);
        match std::thread::Builder::new()
            .name("serve-accept".to_owned())
            .spawn(move || accept_loop(&accept_shared, listener))
        {
            Ok(handle) => handle,
            Err(e) => {
                vardelay_obs::counter("serve.spawn_failures").add(1);
                for shard in &shared.shards {
                    shard.queue.close();
                }
                for worker in workers {
                    let _ = worker.join();
                }
                return Err(e);
            }
        }
    };

    // Background loops are best-effort: a failed spawn costs the
    // feature (counted), never the server.
    let mut background = Vec::new();
    if let Some(period) = shared.health_period {
        for shard in 0..shard_count {
            let health_shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("serve-health-{shard}"))
                .spawn(move || health_loop(&health_shared, shard, period))
            {
                Ok(handle) => background.push(handle),
                Err(_) => vardelay_obs::counter("serve.spawn_failures").add(1),
            }
        }
    }
    {
        let reaper_shared = Arc::clone(&shared);
        match std::thread::Builder::new()
            .name("serve-reaper".to_owned())
            .spawn(move || reaper_loop(&reaper_shared))
        {
            Ok(handle) => background.push(handle),
            Err(_) => vardelay_obs::counter("serve.spawn_failures").add(1),
        }
    }

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        workers,
        background,
    })
}

// ---------------------------------------------------------------------------
// Accept + connection readers
// ---------------------------------------------------------------------------

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(shared);
                match std::thread::Builder::new()
                    .name("serve-conn".to_owned())
                    .spawn(move || connection_loop(&conn_shared, stream))
                {
                    Ok(handle) => connections.push(handle),
                    Err(_) => {
                        // Thread exhaustion: reject this connection with
                        // a best-effort `overloaded` line instead of
                        // taking the whole server down mid-drain.
                        vardelay_obs::counter("serve.conn_spawn_failures").add(1);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    drop(listener);
    for conn in connections {
        let _ = conn.join();
    }
}

fn connection_loop(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let _ = stream.set_nodelay(true);
    let reply = match stream.try_clone() {
        Ok(clone) => {
            // Response writes are bounded by the IO deadline so a
            // stalled reader cannot pin a worker in `write_all`.
            let _ = clone.set_write_timeout(Some(shared.io_timeout));
            Arc::new(Mutex::new(clone))
        }
        Err(_) => return,
    };
    // Deterministic per-connection backoff jitter: seeded from the
    // connection's admission order, so two clients that overflow the
    // queue together receive *different* retry hints (no lockstep
    // re-stampede) while any given run of the server is reproducible.
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    // Register with the reaper: a clone it can cut, plus the moment the
    // current partial request line began (0 = framing is clean). Failing
    // to clone just leaves this connection unreaped.
    let pending = Arc::new(AtomicU64::new(0));
    if let Ok(clone) = stream.try_clone() {
        let mut conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
        conns.insert(
            conn_id,
            ConnEntry {
                stream: clone,
                pending_since_ms: Arc::clone(&pending),
            },
        );
    }
    let mut retry_rng = SplitMix64::new(0x7e72 ^ conn_id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // After an oversized line is rejected, bytes are discarded up to
    // the next newline so the framing recovers.
    let mut discarding = false;
    'conn: loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                loop {
                    if discarding {
                        match buf.iter().position(|&b| b == b'\n') {
                            Some(pos) => {
                                buf.drain(..=pos);
                                discarding = false;
                            }
                            None => {
                                buf.clear();
                                break;
                            }
                        }
                    } else if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                        let line: Vec<u8> = buf.drain(..=pos).collect();
                        let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                        if handle_line(shared, &reply, text.trim(), &mut retry_rng) {
                            break 'conn;
                        }
                    } else if buf.len() > MAX_LINE_BYTES {
                        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                        let response = Response::error(
                            ErrorKind::ParseError,
                            format!(
                                "request line exceeds the {MAX_LINE_BYTES}-byte limit; \
                                 discarding to the next newline"
                            ),
                        );
                        finish(shared, &reply, None, response, None);
                        buf.clear();
                        discarding = true;
                    } else {
                        break;
                    }
                }
                // Clean framing clears the reaper stamp; the stamp
                // itself is only ever *set* below, when the read loop
                // goes idle with bytes owed. A busy connection (lines
                // still being parsed and answered, however slowly the
                // stalled peer lets us write) is the write deadline's
                // problem, not the reaper's.
                if buf.is_empty() {
                    pending.store(0, Ordering::Relaxed);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                // Waiting for input with half a line in hand: start the
                // reaper clock, once per partial line, so the deadline
                // measures from (within one read timeout of) the line's
                // first byte. A slow-loris drip trips this between
                // bytes and never clears it — only a completed line
                // does.
                if !buf.is_empty() && pending.load(Ordering::Relaxed) == 0 {
                    // +1 so a stamp taken in the first millisecond is
                    // distinguishable from "no partial line".
                    pending.store(shared.now_ms() + 1, Ordering::Relaxed);
                }
            }
            Err(_) => break,
        }
    }
    let mut conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
    conns.remove(&conn_id);
}

/// The retry-hint window: a deterministic base plus the jitter spread
/// the per-connection RNG draws from.
fn retry_window(shared: &Shared) -> (u64, u64) {
    let base = 1
        + shared.batch_window.as_millis() as u64
        + shared.default_deadline.as_millis() as u64 / 100;
    (base, base / 2)
}

/// Jitters a retry hint over `[base, base + spread)`. A zero-width
/// window (tiny deadline, no batch window) pins the hint at `base`
/// instead of taking `rng % 0`.
fn retry_hint_ms(rng: &mut SplitMix64, base: u64, spread: u64) -> u64 {
    if spread == 0 {
        base
    } else {
        base + rng.next_u64() % spread
    }
}

/// Parses and admits one request line. Returns `true` when the line was
/// a shutdown request (the reader should close the connection).
fn handle_line(
    shared: &Arc<Shared>,
    reply: &Arc<Mutex<TcpStream>>,
    line: &str,
    retry_rng: &mut SplitMix64,
) -> bool {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    vardelay_obs::counter("serve.lines").add(1);
    let envelope = match Envelope::parse(line) {
        Ok(envelope) => envelope,
        Err(error) => {
            finish(shared, reply, None, Response::Error(error), None);
            return false;
        }
    };
    if matches!(envelope.request, Request::Shutdown) {
        shared.shutdown.store(true, Ordering::Relaxed);
        finish(shared, reply, envelope.id, Response::Draining, None);
        return true;
    }
    let tenant = envelope.tenant.clone().unwrap_or_default();
    // Idempotent retries replay the cached response *before* quota or
    // queue admission: work that already happened (possibly on another
    // connection, possibly before a restart) must not be re-executed,
    // and must not be shed by a momentarily full queue either.
    if let Some(req_id) = &envelope.req_id {
        if let Some(cached) = shared.dedup.lookup(&tenant, req_id) {
            finish(shared, reply, envelope.id, cached, None);
            return false;
        }
    }
    if !shared.quota.admit(&tenant) {
        shared
            .stats
            .quota_rejections
            .fetch_add(1, Ordering::Relaxed);
        vardelay_obs::counter("serve.quota_rejections").add(1);
        let (base, spread) = retry_window(shared);
        let response = Response::Error(ErrorReply {
            kind: ErrorKind::Overloaded,
            detail: format!("tenant {tenant:?} is over its request quota"),
            retry_after_ms: Some(retry_hint_ms(retry_rng, base, spread)),
        });
        finish(shared, reply, envelope.id, response, None);
        return false;
    }
    // Channel bounds are checked at admission so an out-of-range
    // `set_delay` never occupies queue space or joins a batch.
    if let Request::SetDelay { channel, .. } = envelope.request {
        if channel >= shared.channels {
            let response = Response::error(
                ErrorKind::BadRequest,
                format!(
                    "channel {channel} out of range (service exposes {})",
                    shared.channels
                ),
            );
            finish(shared, reply, envelope.id, response, None);
            return false;
        }
    }
    let route_channel = match envelope.request {
        Request::SetDelay { channel, .. } => channel,
        _ => 0,
    };
    let budget = envelope
        .deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(shared.default_deadline);
    // Routing, lanes, quotas, and dedup all stay tenant-keyed: the
    // backend selector picks which of the tenant's banks answers, not
    // where the request queues.
    let backend = envelope.backend.unwrap_or(shared.backend);
    let shard = shared.ring.route(&tenant, route_channel);
    let lane = tenant_lane(&tenant);
    let job = Job {
        deadline: Deadline::after(budget),
        reply: Arc::clone(reply),
        index: shared.next_index.fetch_add(1, Ordering::Relaxed),
        tenant,
        backend,
        lane,
        shard,
        envelope,
    };
    if let Err(job) = shared.shards[shard].queue.try_push(lane, job) {
        // Base backoff plus per-connection jitter: a constant hint makes
        // seeded clients retry in lockstep and re-stampede the queue, so
        // each connection's hint is spread over [base, base + base/2)
        // by its own deterministic stream.
        let (base, spread) = retry_window(shared);
        let response = Response::Error(ErrorReply {
            kind: ErrorKind::Overloaded,
            detail: format!(
                "queue of {} is full; retry after the hinted backoff",
                shared.shards[shard].queue.lane_capacity()
            ),
            retry_after_ms: Some(retry_hint_ms(retry_rng, base, spread)),
        });
        finish(shared, &job.reply, job.envelope.id, response, None);
    }
    false
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>, shard: usize) {
    while let Some(job) = shared.shards[shard].queue.pop() {
        process_job(shared, job);
    }
}

fn process_job(shared: &Arc<Shared>, job: Job) {
    if job.deadline.expired() {
        let response = Response::error(
            ErrorKind::DeadlineExceeded,
            format!(
                "budget of {} ms elapsed before a worker picked the request up",
                job.deadline.budget().as_millis()
            ),
        );
        finish(
            shared,
            &job.reply,
            job.envelope.id,
            response,
            Some(&job.deadline),
        );
        return;
    }
    if let Request::SetDelay { channel, .. } = job.envelope.request {
        if channel < shared.channels {
            process_set_delay_batch(shared, job, channel);
            return;
        }
    }
    let response = supervise(shared, &job, |job| handle_one(shared, job));
    commit(shared, &job, response);
}

/// Commits one executed response: caches it for `req_id` retries
/// (never `overloaded` or `deadline_exceeded` — those mean "not
/// executed" or "gave up", and a retry *should* re-execute), logs the
/// cache entry to the WAL before the line leaves the socket so the
/// window survives restart, then writes the line.
fn commit(shared: &Arc<Shared>, job: &Job, response: Response) {
    if let Some(req_id) = &job.envelope.req_id {
        if !matches!(
            response.error_kind(),
            Some(ErrorKind::Overloaded | ErrorKind::DeadlineExceeded)
        ) {
            shared.dedup.record(&job.tenant, req_id, &response);
            shared.wal_append(&WalRecord::Dedup {
                tenant: job.tenant.clone(),
                req_id: req_id.clone(),
                response: response.to_value(None).render(),
            });
        }
    }
    finish(
        shared,
        &job.reply,
        job.envelope.id,
        response,
        Some(&job.deadline),
    );
}

/// Runs a handler under `catch_unwind`, classifying the three ways it
/// can come back: a value, a cooperative [`DeadlineBail`], or a real
/// panic (possibly an injected chaos kill). The worker thread survives
/// all three.
fn supervise(shared: &Arc<Shared>, job: &Job, f: impl FnOnce(&Job) -> Response) -> Response {
    let doomed = shared.chaos.is_some_and(|chaos| chaos.kills(job.index));
    let result = catch_unwind(AssertUnwindSafe(|| {
        if doomed {
            panic!(
                "chaos: request {} doomed by VARDELAY_SERVE_CHAOS",
                job.index
            );
        }
        job.deadline.check();
        f(job)
    }));
    match result {
        Ok(response) => response,
        Err(payload) if payload.is::<DeadlineBail>() => Response::error(
            ErrorKind::DeadlineExceeded,
            format!(
                "budget of {} ms exhausted mid-request",
                job.deadline.budget().as_millis()
            ),
        ),
        Err(payload) => {
            vardelay_obs::counter("serve.worker_panics").add(1);
            Response::error(
                ErrorKind::Internal,
                format!("worker panicked: {}", panic_message(payload.as_ref())),
            )
        }
    }
}

/// Lead worker for a `set_delay`: waits one batch window, coalesces
/// every queued same-tenant same-channel `set_delay` from the lead's
/// own lane, performs one solve (last write wins), and answers every
/// waiter.
fn process_set_delay_batch(shared: &Arc<Shared>, lead: Job, channel: usize) {
    if !shared.batch_window.is_zero() {
        // Yield-spin rather than sleep: the window is ~100 µs and
        // `thread::sleep` rounds up to timer granularity (whole
        // milliseconds on some kernels), which would throttle a lone
        // worker far below the offered load. Yielding lets the reader
        // threads run and enqueue the followers this wait exists for.
        let window_ends = std::time::Instant::now() + shared.batch_window;
        while std::time::Instant::now() < window_ends {
            std::thread::yield_now();
        }
    }
    let (shard, lane) = (lead.shard, lead.lane);
    let tenant = lead.tenant.clone();
    let backend = lead.backend;
    let mut batch = vec![lead];
    // Lane-local drain: batching never steals another tenant's queued
    // work even if two tenant labels collide on the lane hash, and
    // never mixes backends — one solve answers one bank.
    batch.extend(shared.shards[shard].queue.drain_matching(lane, |queued| {
        queued.tenant == tenant
            && queued.backend == backend
            && matches!(
                queued.envelope.request,
                Request::SetDelay { channel: c, .. } if c == channel
            )
    }));
    let target_ps = batch
        .iter()
        .rev()
        .find_map(|job| match job.envelope.request {
            Request::SetDelay { ps, .. } => Some(ps),
            _ => None,
        })
        .expect("batch holds only set_delay requests");
    let size = batch.len();
    if size > 1 {
        shared
            .stats
            .batched
            .fetch_add(size as u64 - 1, Ordering::Relaxed);
        vardelay_obs::histogram("serve.batch_size").record(size as u64);
    }
    let outcome = supervise(shared, &batch[0], |_| {
        solve_delay(
            shared,
            &BankId::new(tenant.as_str(), backend),
            channel,
            target_ps,
        )
    });
    // WAL-before-ack: one `apply` record per successful batch solve,
    // carrying the batch's last-write-wins target — never one per
    // waiter, or replay would re-program intermediate targets in an
    // order the batch itself collapsed. Only the default backend's
    // solves are durable; a non-default bank is ephemeral by design.
    if matches!(outcome, Response::Delay(_)) && backend == shared.backend {
        shared.wal_append(&WalRecord::Apply {
            tenant: tenant.clone(),
            channel,
            ps: target_ps,
        });
    }
    for job in &batch {
        let response = match (&outcome, job.deadline.expired()) {
            // The solve finished but this waiter's own budget elapsed.
            (Response::Delay(_), true) => Response::error(
                ErrorKind::DeadlineExceeded,
                format!(
                    "budget of {} ms elapsed while the batch was being solved",
                    job.deadline.budget().as_millis()
                ),
            ),
            (Response::Delay(reply), false) => {
                let ps = match job.envelope.request {
                    Request::SetDelay { ps, .. } => ps,
                    _ => unreachable!("batch holds only set_delay requests"),
                };
                Response::Delay(DelayReply {
                    requested_ps: ps,
                    error_ps: reply.predicted_ps - ps,
                    batched: size,
                    ..reply.clone()
                })
            }
            // Errors (bad range, chaos kill, deadline) share the
            // batch's fate: every waiter learns what happened.
            (other, _) => other.clone(),
        };
        commit(shared, job, response);
    }
}

fn solve_delay(shared: &Arc<Shared>, id: &BankId, channel: usize, target_ps: f64) -> Response {
    if !target_ps.is_finite() {
        return Response::error(ErrorKind::BadRequest, "ps must be finite");
    }
    // Quarantined channels refuse to answer from a table known to be
    // grossly wrong; the hint covers recalibration plus the re-admission
    // rounds. (A whole same-channel batch rightly shares this fate.)
    let key = health_key(id, shared.backend);
    if !shared.health.admits(&key, channel) {
        let period_ms = shared
            .health_period
            .map(|p| p.as_millis() as u64)
            .unwrap_or(25)
            .max(1);
        return Response::Error(ErrorReply {
            kind: ErrorKind::Unavailable,
            detail: format!("channel {channel} is quarantined pending recalibration"),
            retry_after_ms: Some(period_ms * (RECOVERY_ROUNDS as u64 + 1)),
        });
    }
    // Lazy tenants calibrate here, on the worker thread, serially — the
    // fast-solve cache answers the sweep, so this is a table copy, not
    // a re-simulation.
    let bank = shared.registry.get(id, Runner::serial());
    let Some(slot) = bank.channels.get(channel) else {
        return Response::error(
            ErrorKind::BadRequest,
            format!(
                "channel {channel} out of range (service exposes {})",
                shared.channels
            ),
        );
    };
    let mut backend = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    match backend.set_delay(Time::from_ps(target_ps)) {
        Ok(setting) => Response::Delay(DelayReply {
            channel,
            requested_ps: target_ps,
            tap: setting.tap,
            dac_code: setting.dac_code,
            vctrl_mv: setting.vctrl.as_mv(),
            predicted_ps: setting.predicted_delay.as_ps(),
            error_ps: setting.predicted_error.as_ps(),
            batched: 1,
        }),
        Err(e) => Response::error(ErrorKind::BadRequest, format!("set_delay: {e}")),
    }
}

fn handle_one(shared: &Arc<Shared>, job: &Job) -> Response {
    match &job.envelope.request {
        Request::SetDelay { channel, .. } => Response::error(
            ErrorKind::BadRequest,
            format!(
                "channel {channel} out of range (service exposes {})",
                shared.channels
            ),
        ),
        Request::Deskew { bus, seed } => handle_deskew(shared, *bus, *seed, &job.deadline),
        Request::InjectJitter {
            vpp_mv,
            rate_gbps,
            bits,
            seed,
        } => handle_inject(shared, *vpp_mv, *rate_gbps, *bits, *seed),
        Request::Selftest => handle_selftest(
            shared,
            &BankId::new(job.tenant.as_str(), job.backend),
            &job.deadline,
        ),
        Request::Stats => Response::Stats(shared.stats_reply()),
        Request::Shutdown => unreachable!("shutdown is handled at admission"),
    }
}

fn handle_deskew(shared: &Arc<Shared>, bus: usize, seed: u64, deadline: &Deadline) -> Response {
    if !(2..=32).contains(&bus) {
        return Response::error(ErrorKind::BadRequest, "bus width must be in 2..=32");
    }
    // Serial runner: the worker thread *is* the parallelism here, and a
    // nested pool per request would oversubscribe under load.
    let engine = DeskewEngine::new(&shared.model, seed).with_runner(Runner::serial());
    let mut lanes =
        ParallelBus::with_random_skew(bus, BitRate::from_gbps(3.2), Time::from_ps(120.0), seed);
    deadline.check();
    match engine.run_degraded(&mut lanes, DegradedPolicy::default()) {
        Ok(outcome) => Response::Deskew(DeskewReply {
            bus,
            before_ps: outcome.before_peak_to_peak.as_ps(),
            after_ps: outcome.after_peak_to_peak.as_ps(),
            healthy: outcome.healthy_count(),
            quarantined: outcome.quarantined_channels(),
            reference: outcome.reference_channel,
            meets_target: outcome.meets_5ps_target(),
        }),
        Err(e) => Response::error(ErrorKind::Internal, format!("deskew: {e}")),
    }
}

fn handle_inject(
    shared: &Arc<Shared>,
    vpp_mv: f64,
    rate_gbps: f64,
    bits: usize,
    seed: u64,
) -> Response {
    if !(1..=4096).contains(&bits) {
        return Response::error(ErrorKind::BadRequest, "bits must be in 1..=4096");
    }
    if !rate_gbps.is_finite() || rate_gbps <= 0.0 || rate_gbps > 100.0 {
        return Response::error(ErrorKind::BadRequest, "rate_gbps must be in (0, 100]");
    }
    if !vpp_mv.is_finite() || !(0.0..=2000.0).contains(&vpp_mv) {
        return Response::error(ErrorKind::BadRequest, "vpp_mv must be in [0, 2000]");
    }
    let mut injector = JitterInjector::new(&shared.model, seed);
    injector.set_noise_peak_to_peak(Voltage::from_mv(vpp_mv));
    let pattern = BitPattern::prbs7(seed, bits);
    let clean = EdgeStream::nrz(&pattern, BitRate::from_gbps(rate_gbps));
    let jittered = injector.inject(&clean);
    Response::Jitter(JitterReply {
        edges: jittered.len(),
        slope_s_per_v: injector.injection_slope_s_per_v(),
    })
}

/// Runs the channel-0 self-test without pinning the lane: the channel
/// lock is held only long enough to copy the DAC and the table, the
/// expensive walking-bit sweep runs on the copies, and the whole thing
/// is metered in a `serve.selftest_us` span under the request's own
/// deadline budget — if the budget runs out after the (cheap)
/// calibration check, the reply is flagged `partial` instead of
/// blocking the worker through the sweep.
fn handle_selftest(shared: &Arc<Shared>, id: &BankId, deadline: &Deadline) -> Response {
    let _span = vardelay_obs::span("serve.selftest_us");
    let bank = shared.registry.get(id, Runner::serial());
    let (mut dac, table) = {
        let backend = bank.channels[0]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        (backend.control_dac(), backend.calibration().cloned())
    };
    let Some(table) = table else {
        // Banks calibrate at build, so this is an invariant breach, not
        // a client error.
        return Response::error(
            ErrorKind::Internal,
            "channel 0 has no calibration installed",
        );
    };
    let calibration = check_calibration(&table, Time::from_ps(15.0));
    if deadline.expired() {
        // Enough budget for the table inspection but not the DAC sweep:
        // report what was measured instead of blowing the deadline.
        return Response::Selftest(SelftestReply {
            verdict: if calibration.is_healthy() {
                "healthy"
            } else {
                "faulty"
            }
            .to_owned(),
            summary: format!(
                "calibration range {} ({} / {} points flat); dac sweep skipped (deadline)",
                calibration.range, calibration.flat_points, calibration.points
            ),
            partial: true,
        });
    }
    let health = CircuitHealth {
        dac: test_dac(&mut dac),
        calibration,
    };
    Response::Selftest(SelftestReply {
        verdict: match health.verdict() {
            HealthVerdict::Healthy => "healthy",
            HealthVerdict::Degraded => "degraded",
            HealthVerdict::Faulty => "faulty",
        }
        .to_owned(),
        summary: health.to_string(),
        partial: false,
    })
}

// ---------------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------------

/// Counts, records, and writes one response line.
///
/// A vanished client must not take the worker down, so write errors
/// never propagate — but they are no longer *ignored* either: an
/// expired write deadline (a stalled reader backing the socket buffer
/// up — surfaced as `WouldBlock` or `TimedOut` depending on platform,
/// and `write_all` may also leave a short write behind) counts an
/// `io_timeout` and cuts the connection so no later response blocks on
/// the same dead socket.
fn finish(
    shared: &Arc<Shared>,
    reply: &Arc<Mutex<TcpStream>>,
    id: Option<u64>,
    response: Response,
    deadline: Option<&Deadline>,
) {
    shared.stats.count_response(&response);
    if let Some(deadline) = deadline {
        vardelay_obs::histogram("serve.latency_us").record(deadline.elapsed().as_micros() as u64);
    }
    // Every response carries the restart epoch so a reconnecting client
    // can tell "same server" from "restarted server". Stats replies
    // already render it from their own snapshot; injecting again would
    // duplicate the key.
    let mut value = response.to_value(id);
    if value.get("server_epoch").is_none() {
        value = value.with("server_epoch", shared.epoch);
    }
    let mut line = value.render();
    line.push('\n');
    let mut stream = reply
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let outcome = stream
        .write_all(line.as_bytes())
        .and_then(|_| stream.flush());
    if let Err(e) = outcome {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            shared.stats.io_timeouts.fetch_add(1, Ordering::Relaxed);
            vardelay_obs::counter("serve.io_timeouts").add(1);
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Anything else (connection reset, broken pipe) means the
        // client is gone; the reader loop will see it and clean up.
    }
}

// ---------------------------------------------------------------------------
// Background loops: health supervisor + connection reaper
// ---------------------------------------------------------------------------

/// Sleeps up to `period` in short slices, returning early (false) when
/// a drain begins.
fn sleep_unless_draining(shared: &Shared, period: Duration) -> bool {
    let until = Instant::now() + period;
    while Instant::now() < until {
        if shared.shutdown.load(Ordering::Relaxed) {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5).min(period));
    }
    !shared.shutdown.load(Ordering::Relaxed)
}

/// One shard's health supervisor: every `period`, sentinel-probe the
/// resident channels this shard owns and heal what the verdicts demand
/// (DESIGN.md §15).
fn health_loop(shared: &Arc<Shared>, shard: usize, period: Duration) {
    let mut round: u64 = 0;
    while sleep_unless_draining(shared, period) {
        health_round(shared, shard, round);
        round = round.wrapping_add(1);
    }
}

/// One pass over the resident banks. Per channel: clone the fine line
/// and table under a brief lock, probe outside the lock, feed the
/// verdict to the state machine, and — when asked and allowed —
/// rebuild the table on a private copy and swap it in. In-flight
/// requests keep answering from the old table for the whole rebuild;
/// the swap itself is one `install_calibration` under the channel lock.
fn health_round(shared: &Arc<Shared>, shard: usize, round: u64) {
    for (id, bank) in shared.registry.snapshot() {
        let key = health_key(&id, shared.backend);
        let durable = id.kind() == shared.backend;
        for (channel, slot) in bank.channels.iter().enumerate() {
            // Shards probe disjoint channel sets — the same ownership
            // split the request router uses (which routes by the bare
            // tenant label, whatever backend answers).
            if shared.ring.route(id.tenant(), channel) != shard {
                continue;
            }
            let sentinel = {
                let backend = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                BackendSentinel::from_backend(backend.as_ref(), SentinelConfig::default())
            };
            let Ok(sentinel) = sentinel else {
                continue;
            };
            let report = sentinel.run(task_seed(SERVE_SEED, round));
            let was = shared.health.state(&key, channel);
            let action = shared.health.observe(&key, channel, report.verdict());
            let now_state = shared.health.state(&key, channel);
            if now_state != was && durable {
                // State transitions are durable: a quarantine seen at
                // round N must still reject at the next boot even if no
                // snapshot pass ran in between. (Non-default banks are
                // ephemeral; their states live and die in memory.)
                shared.wal_append(&WalRecord::Health {
                    tenant: id.tenant().to_owned(),
                    channel,
                    state: now_state,
                });
            }
            if action == HealthAction::Recalibrate && shared.recalibrate {
                // The expensive part happens on this thread's private
                // copy; workers never wait on it.
                let mut copy = {
                    let backend = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                    backend.clone_backend()
                };
                copy.calibrate_with(Runner::serial());
                if let Some(table) = copy.calibration().cloned() {
                    {
                        let mut backend =
                            slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                        backend.install_calibration(table.clone());
                    }
                    // The swapped-in table is the durable one now; the
                    // stale snapshot must not outlive it.
                    if durable {
                        if let Some(durability) = &shared.durability {
                            let state = shared.health.state(&key, channel);
                            if durability
                                .store
                                .save_channel(id.tenant(), channel, state, &table)
                                .is_err()
                            {
                                vardelay_obs::counter("persist.save_failures").add(1);
                            }
                        }
                    }
                }
                shared.health.note_recalibration();
            }
        }
    }
}

/// Cuts connections whose partial request line has been pending past
/// twice the IO deadline. Purely idle connections (clean framing, no
/// bytes owed) are left alone — only a half-sent line pins parser
/// state. The grace is double the write deadline on purpose: a
/// connection that is both half-framed *and* write-blocked should
/// surface as an `io_timeout` (the more specific diagnosis) before the
/// reaper gets to it.
fn reaper_loop(shared: &Arc<Shared>) {
    let timeout_ms = 2 * shared.io_timeout.as_millis() as u64;
    let tick = (shared.io_timeout / 4).clamp(Duration::from_millis(5), Duration::from_millis(50));
    while sleep_unless_draining(shared, tick) {
        let now = shared.now_ms();
        let conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
        for entry in conns.values() {
            let since = entry.pending_since_ms.load(Ordering::Relaxed);
            if since != 0 && now.saturating_sub(since - 1) > timeout_ms {
                let _ = entry.stream.shutdown(Shutdown::Both);
                // Clear the stamp so one bad socket is counted once;
                // the reader loop will error out and deregister.
                entry.pending_since_ms.store(0, Ordering::Relaxed);
                shared.stats.reaped.fetch_add(1, Ordering::Relaxed);
                vardelay_obs::counter("serve.conns_reaped").add(1);
            }
        }
    }
}
