//! Durable-serving end to end (DESIGN.md §16): a server with a state
//! directory survives an unclean restart — snapshots restore the
//! calibration banks, the WAL replays programmed state and the dedup
//! window, the epoch bumps, and every answer after the restart is
//! byte-identical to the answer before it. Eviction and clean drains
//! persist channel health, so a quarantined channel stays out of
//! service across a restart instead of silently re-admitting itself.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use vardelay_backend::BackendKind;
use vardelay_serve::{
    serve, ChannelState, Client, Envelope, ErrorKind, Request, Response, ServeConfig, ServerHandle,
};

const WAIT: Duration = Duration::from_secs(60);

fn scratch(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("vardelay_restart_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &PathBuf) -> ServeConfig {
    let mut config = ServeConfig::in_process();
    config.workers = 2;
    config.state_dir = Some(dir.clone());
    config
}

fn envelope(id: u64, request: Request) -> Envelope {
    Envelope {
        id: Some(id),
        deadline_ms: None,
        tenant: None,
        req_id: None,
        backend: None,
        request,
    }
}

/// Sends pre-rendered request lines sequentially and returns the raw
/// response lines exactly as they arrived — the unit of byte-identity.
fn wire_session(addr: SocketAddr, script: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::with_capacity(script.len());
    for request in script {
        writer.write_all(request.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("write");
        writer.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        lines.push(line.trim_end().to_owned());
    }
    lines
}

/// Every response carries the restart counter; byte-identity across a
/// restart is asserted modulo that one field.
fn strip_epoch(line: &str) -> String {
    match line.find(",\"server_epoch\":") {
        None => line.to_owned(),
        Some(start) => {
            // The field value is a bare integer, so the next `,` or `}`
            // past the key terminates it.
            let rest = &line[start + 1..];
            let end = rest.find([',', '}']).map_or(line.len(), |i| start + 1 + i);
            format!("{}{}", &line[..start], &line[end..])
        }
    }
}

fn wire_stats(client: &mut Client, id: u64) -> vardelay_serve::StatsReply {
    let (_, response) = client
        .call(&envelope(id, Request::Stats))
        .expect("a stats line");
    match response {
        Response::Stats(stats) => stats,
        other => panic!("expected stats, got {other:?}"),
    }
}

/// Simulates a crash-style stop: the listener drains but the handle is
/// dropped without `join()`, so the parting WAL compaction never runs
/// and the log is left for the next boot to replay.
fn stop_without_compaction(handle: ServerHandle, client: &mut Client, id: u64) {
    let (_, response) = client
        .call(&envelope(id, Request::Shutdown))
        .expect("draining");
    assert_eq!(response, Response::Draining);
    let addr = handle.addr();
    drop(handle);
    let deadline = Instant::now() + WAIT;
    while TcpStream::connect(addr).is_ok() {
        assert!(Instant::now() < deadline, "listener never closed");
        std::thread::sleep(Duration::from_millis(5));
    }
    // The drained workers have already answered every admitted request;
    // give their final WAL appends a beat to land before reopening.
    std::thread::sleep(Duration::from_millis(200));
}

/// The tentpole acceptance path: program delays with retry ids, stop
/// without compaction, restart on the same directory, and require (a)
/// banks restored from snapshots rather than recalibrated, (b) the WAL
/// replayed, (c) the epoch bumped, (d) retried requests answered from
/// the restored dedup window byte-identically, and (e) fresh solves
/// from the restored tables byte-identical to the pre-restart answers.
#[test]
fn warm_restart_replays_the_wal_and_answers_byte_identically() {
    let dir = scratch("warm");
    let targets: Vec<(usize, f64)> = (0..6).map(|ch| (ch, 24.0 + 7.5 * ch as f64)).collect();
    let script: Vec<String> = targets
        .iter()
        .enumerate()
        .map(|(i, &(channel, ps))| {
            envelope(i as u64 + 1, Request::SetDelay { channel, ps })
                .with_req_id(format!("w-{i}"))
                .to_value()
                .render()
        })
        .collect();
    let fresh: Vec<String> = targets
        .iter()
        .enumerate()
        .map(|(i, &(channel, ps))| {
            envelope(i as u64 + 1, Request::SetDelay { channel, ps })
                .to_value()
                .render()
        })
        .collect();

    // Cold server: program the bank, then stop uncleanly.
    let handle = serve(durable_config(&dir)).expect("bind cold");
    assert_eq!(handle.server_epoch(), 1, "first boot is epoch 1");
    let before = wire_session(handle.addr(), &script);
    for line in &before {
        assert!(
            line.contains("\"predicted_ps\""),
            "not a delay reply: {line}"
        );
        assert!(line.contains("\"server_epoch\":1"), "{line}");
    }
    let mut client = Client::connect(handle.addr()).expect("connect");
    let cold_stats = wire_stats(&mut client, 90);
    assert_eq!(cold_stats.server_epoch, 1);
    assert_eq!(cold_stats.banks_restored, 0, "nothing to restore cold");
    stop_without_compaction(handle, &mut client, 91);

    // Warm server on the same directory.
    let handle = serve(durable_config(&dir)).expect("bind warm");
    assert_eq!(handle.server_epoch(), 2, "restart bumps the epoch");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let stats = wire_stats(&mut client, 92);
    assert!(
        stats.banks_restored >= 1,
        "warm boot must restore the default bank: {stats:?}"
    );
    assert_eq!(
        stats.banks_recalibrated, 0,
        "uncorrupted snapshots must not force recalibration: {stats:?}"
    );
    assert!(
        stats.wal_records_replayed >= (targets.len() * 2) as u64,
        "six applies + six dedup records must replay: {stats:?}"
    );
    assert!(stats.restore_us > 0, "{stats:?}");

    // Retries with the original req_ids answer from the dedup window
    // that rode the WAL across the restart.
    let replayed = wire_session(handle.addr(), &script);
    for (old, new) in before.iter().zip(&replayed) {
        assert!(new.contains("\"server_epoch\":2"), "{new}");
        assert_eq!(
            strip_epoch(old),
            strip_epoch(new),
            "a replayed retry diverged from the original answer"
        );
    }
    let stats = wire_stats(&mut client, 93);
    assert_eq!(
        stats.dedup_hits,
        targets.len() as u64,
        "every retry must hit the restored window: {stats:?}"
    );

    // Fresh solves (no req_id) from the restored tables match too —
    // the restore really did bring back the calibrated bank.
    let solved = wire_session(handle.addr(), &fresh);
    for (old, new) in before.iter().zip(&solved) {
        assert_eq!(
            strip_epoch(old),
            strip_epoch(new),
            "a restored table solved differently than the original"
        );
    }

    // Clean drain compacts: the third boot restores from snapshots
    // alone, with nothing left in the log.
    handle.shutdown();
    handle.join();
    let handle = serve(durable_config(&dir)).expect("bind third");
    assert_eq!(handle.server_epoch(), 3);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let stats = wire_stats(&mut client, 94);
    assert!(stats.banks_restored >= 1, "{stats:?}");
    assert_eq!(
        stats.wal_records_replayed, 0,
        "a compacted log has nothing to replay: {stats:?}"
    );
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Health state is part of the durable record: a quarantined channel
/// stays quarantined through LRU eviction (the evicted hook persists
/// its state) and through a full restart (the snapshot restores it),
/// rather than silently re-entering service on a fresh health table.
#[test]
fn quarantine_survives_eviction_and_restart() {
    vardelay_faults::set_enabled(true);
    let dir = scratch("quarantine");
    let mut config = durable_config(&dir);
    config.workers = 1;
    config.shards = 1;
    config.max_banks = 1;
    config.health_period = Some(Duration::from_millis(25));
    config.recalibrate = false; // quarantine is sticky, like the soak gate's red leg
    let handle = serve(config).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Build the tenant's bank, drift it grossly, wait for quarantine.
    let (_, response) = client
        .call(
            &envelope(
                1,
                Request::SetDelay {
                    channel: 3,
                    ps: 50.0,
                },
            )
            .for_tenant("t-q"),
        )
        .expect("a response");
    assert!(matches!(response, Response::Delay(_)), "{response:?}");
    assert!(handle.inject_drift("t-q", 3, 40.0), "drift must land");
    let deadline = Instant::now() + WAIT;
    while handle.channel_state("t-q", 3) != ChannelState::Quarantined {
        assert!(Instant::now() < deadline, "never quarantined");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Evict t-q by touching another tenant through the cap-1 registry;
    // the eviction hook snapshots the table *and* the health state.
    let (_, response) = client
        .call(
            &envelope(
                2,
                Request::SetDelay {
                    channel: 0,
                    ps: 30.0,
                },
            )
            .for_tenant("t-b"),
        )
        .expect("a response");
    assert!(matches!(response, Response::Delay(_)), "{response:?}");

    let (_, response) = client.call(&envelope(3, Request::Shutdown)).expect("drain");
    assert_eq!(response, Response::Draining);
    handle.join();

    // Restart with the supervisor off: whatever health the snapshots
    // restore is exactly what admission must enforce.
    let mut config = durable_config(&dir);
    config.workers = 1;
    config.max_banks = 8;
    let handle = serve(config).expect("bind warm");
    assert_eq!(
        handle.channel_state("t-q", 3),
        ChannelState::Quarantined,
        "the restart forgot the quarantine"
    );
    let mut client = Client::connect(handle.addr()).expect("connect");
    let (_, response) = client
        .call(
            &envelope(
                4,
                Request::SetDelay {
                    channel: 3,
                    ps: 50.0,
                },
            )
            .for_tenant("t-q"),
        )
        .expect("a response");
    match response {
        Response::Error(err) => {
            assert_eq!(err.kind, ErrorKind::Unavailable, "{err:?}");
            assert!(err.detail.contains("quarantined"), "{}", err.detail);
        }
        other => panic!("quarantined channel served after restart: {other:?}"),
    }
    // Its healthy neighbors are back in service from the same snapshot.
    let (_, response) = client
        .call(
            &envelope(
                5,
                Request::SetDelay {
                    channel: 0,
                    ps: 30.0,
                },
            )
            .for_tenant("t-q"),
        )
        .expect("a response");
    assert!(matches!(response, Response::Delay(_)), "{response:?}");

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The backend identity is part of the snapshot fingerprint: a warm
/// restart whose default backend differs from the one that wrote the
/// state directory must refuse every persisted table and calibrate the
/// flipped backend fresh — a Vernier table installed into the circuit
/// (or vice versa) would serve silently wrong delays. Flipping back
/// restores nothing either, but recalibrates to answers byte-identical
/// to the original cold boot.
#[test]
fn a_backend_flip_invalidates_snapshots_and_forces_recalibration() {
    let dir = scratch("backend_flip");
    let script: Vec<String> = [(2usize, 40.0f64), (5, 88.5)]
        .iter()
        .enumerate()
        .map(|(i, &(channel, ps))| {
            envelope(i as u64 + 1, Request::SetDelay { channel, ps })
                .to_value()
                .render()
        })
        .collect();

    // Cold boot on the circuit default: program, then stop uncleanly.
    let handle = serve(durable_config(&dir)).expect("bind cold");
    assert_eq!(handle.backend(), BackendKind::Circuit);
    let cold = wire_session(handle.addr(), &script);
    for line in &cold {
        assert!(
            line.contains("\"predicted_ps\""),
            "not a delay reply: {line}"
        );
    }
    let mut client = Client::connect(handle.addr()).expect("connect");
    stop_without_compaction(handle, &mut client, 10);

    // Same directory, default flipped to the Vernier: the circuit
    // snapshot's fingerprint no longer matches, so nothing restores and
    // the flipped bank calibrates from scratch.
    let mut config = durable_config(&dir);
    config.backend = BackendKind::Vernier;
    let handle = serve(config).expect("bind flipped");
    assert_eq!(handle.backend(), BackendKind::Vernier);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let stats = wire_stats(&mut client, 11);
    assert_eq!(
        stats.banks_restored, 0,
        "a circuit snapshot must never install under the vernier: {stats:?}"
    );
    assert!(
        stats.banks_recalibrated >= 1,
        "the flipped default must calibrate fresh: {stats:?}"
    );
    // And it really is the Vernier serving: tapless settings within the
    // 1 ps contract resolution.
    let (_, response) = client
        .call(&envelope(
            12,
            Request::SetDelay {
                channel: 2,
                ps: 40.0,
            },
        ))
        .expect("a response");
    match response {
        Response::Delay(reply) => {
            assert_eq!(reply.tap, 0, "the vernier has no tap mux");
            assert!(reply.error_ps.abs() <= 1.0, "{reply:?}");
        }
        other => panic!("expected a delay reply, got {other:?}"),
    }
    stop_without_compaction(handle, &mut client, 13);

    // Flip back to the circuit: the vernier's snapshots are refused the
    // same way, and the recalibrated circuit answers byte-identically
    // (modulo epoch) to the original cold boot.
    let handle = serve(durable_config(&dir)).expect("bind flipped back");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let stats = wire_stats(&mut client, 14);
    assert_eq!(
        stats.banks_restored, 0,
        "a vernier snapshot must never install under the circuit: {stats:?}"
    );
    assert!(stats.banks_recalibrated >= 1, "{stats:?}");
    let back = wire_session(handle.addr(), &script);
    for (old, new) in cold.iter().zip(&back) {
        assert_eq!(
            strip_epoch(old),
            strip_epoch(new),
            "the round-tripped circuit diverged from its cold boot"
        );
    }
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The idempotency contract over live sockets: a duplicate `req_id` on
/// a *different connection* answers from the cache — even when the
/// tenant's quota bucket is empty, because dedup is checked before
/// admission — while shed responses are never cached, so a retry after
/// an `overloaded` really re-executes.
#[test]
fn duplicate_req_ids_answer_from_cache_across_connections() {
    let mut config = ServeConfig::in_process();
    config.workers = 2;
    config.quota_rps = Some(2.0);
    config.quota_burst = Some(1.0);
    let handle = serve(config).expect("bind");

    let request = envelope(
        7,
        Request::SetDelay {
            channel: 2,
            ps: 44.0,
        },
    )
    .for_tenant("hot")
    .with_req_id("once")
    .to_value()
    .render();

    // First connection executes and drains the burst allowance.
    let first = wire_session(handle.addr(), std::slice::from_ref(&request));
    assert!(first[0].contains("\"predicted_ps\""), "{}", first[0]);

    // Second connection, same req_id, empty bucket: the cached answer
    // comes back byte-identical without touching the quota.
    let second = wire_session(handle.addr(), std::slice::from_ref(&request));
    assert_eq!(first[0], second[0], "cached answer diverged");

    // A *new* req_id against the empty bucket is shed...
    let shed_request = envelope(
        8,
        Request::SetDelay {
            channel: 2,
            ps: 44.0,
        },
    )
    .for_tenant("hot")
    .with_req_id("shed")
    .to_value()
    .render();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let (_, response) = client.send_raw(&shed_request).expect("a response");
    match &response {
        Response::Error(err) => assert_eq!(err.kind, ErrorKind::Overloaded, "{err:?}"),
        other => panic!("empty bucket admitted a new req_id: {other:?}"),
    }

    // ...and the shed was not cached: once the bucket refills, the same
    // req_id executes for real.
    std::thread::sleep(Duration::from_millis(900));
    let (_, response) = client.send_raw(&shed_request).expect("a response");
    assert!(
        matches!(response, Response::Delay(_)),
        "shed response was wrongly cached: {response:?}"
    );

    let stats = wire_stats(&mut client, 95);
    assert_eq!(stats.dedup_hits, 1, "{stats:?}");

    handle.shutdown();
    handle.join();
}
