//! Network chaos over live sockets: slow-loris drips, mid-line
//! disconnects, and stalled readers from `vardelay-faults` against a
//! real server. The invariants: no worker ever wedges, the reaper cuts
//! partial-line connections at the IO deadline, write stalls surface as
//! counted `io_timeouts` (not hung threads), and a healthy client is
//! answered throughout every attack.

use std::time::{Duration, Instant};

use vardelay_serve::{
    serve, Client, Envelope, ErrorKind, Request, Response, ServeConfig, StatsReply,
};

const WAIT: Duration = Duration::from_secs(30);

fn chaos_config(io_timeout_ms: u64) -> ServeConfig {
    let mut config = ServeConfig::in_process();
    config.workers = 2;
    config.io_timeout = Duration::from_millis(io_timeout_ms);
    config
}

fn envelope(id: u64, request: Request) -> Envelope {
    Envelope {
        id: Some(id),
        deadline_ms: None,
        tenant: None,
        req_id: None,
        backend: None,
        request,
    }
}

/// One healthy round-trip, asserting the client is *answered* promptly
/// even while an attack floods another connection. A structured
/// `overloaded` shed is a prompt answer — that is backpressure working
/// as designed — so those are retried; anything else unexpected panics.
fn healthy_call(client: &mut Client, id: u64) -> StatsReply {
    let start = Instant::now();
    loop {
        let (_, response) = client
            .call(&envelope(id, Request::Stats))
            .expect("healthy client answered");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "healthy client starved for {:?} during the attack",
            start.elapsed()
        );
        match response {
            Response::Stats(stats) => return stats,
            Response::Error(err) if err.kind == ErrorKind::Overloaded => {
                std::thread::sleep(Duration::from_millis(5));
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }
}

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + WAIT;
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A slow-loris connection (one byte every 50 ms, never a newline) is
/// cut by the reaper at the partial-line deadline (2 × the 150 ms IO
/// timeout) — long before the drip would finish — while a healthy
/// client on another connection is answered the whole time.
#[test]
fn a_slow_loris_is_reaped_while_healthy_clients_are_served() {
    let handle = serve(chaos_config(150)).expect("bind");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");

    let line = "{\"op\":\"set_delay\",\"channel\":1,\"ps\":40.0,\"id\":77}".to_owned();
    let loris = std::thread::spawn(move || {
        vardelay_faults::slow_loris(addr, &line, Duration::from_millis(50))
    });

    let mut id = 1u64;
    wait_until("the reaper to cut the slow-loris connection", || {
        id += 1;
        healthy_call(&mut client, id).reaped >= 1
    });
    loris
        .join()
        .expect("loris thread")
        .expect("loris strike IO");

    // The drip never formed a request line, so it was never counted as
    // one; the healthy client's traffic is all there is.
    let stats = healthy_call(&mut client, 9_000);
    assert_eq!(
        stats.parse_errors, 0,
        "a reaped partial line is not a parse"
    );
    assert!(stats.reaped >= 1);

    handle.shutdown();
    let report = handle.join();
    assert!(report.stats.reaped >= 1, "{:?}", report.stats);
}

/// A volley of mid-line disconnects (half a request, then a hard close)
/// leaves no wedged worker and no phantom request: the discarded
/// partials are never parsed, and a single-worker server still answers
/// immediately afterwards.
#[test]
fn mid_line_disconnects_never_wedge_a_single_worker_server() {
    let mut config = chaos_config(200);
    config.workers = 1; // a single wedged worker would hang the test
    let handle = serve(config).expect("bind");
    let addr = handle.addr();

    let line = "{\"op\":\"deskew\",\"bus\":8,\"seed\":3,\"id\":5}";
    for _ in 0..8 {
        vardelay_faults::mid_line_disconnect(addr, line).expect("strike IO");
    }

    let mut client = Client::connect(addr).expect("connect");
    let stats = healthy_call(&mut client, 1);
    assert_eq!(
        stats.requests, 1,
        "half-sent lines must not count as requests"
    );
    assert_eq!(stats.parse_errors, 0, "discarded partials are not parses");
    let (_, response) = client
        .call(&envelope(
            2,
            Request::SetDelay {
                channel: 2,
                ps: 33.0,
            },
        ))
        .expect("set_delay after the volley");
    assert!(matches!(response, Response::Delay(_)), "{response:?}");

    handle.shutdown();
    handle.join();
}

/// A stalled reader pipelines thousands of requests and never reads a
/// byte back. Once the kernel buffers fill, the server's writes hit the
/// write deadline: the connection is cut, `io_timeouts` counts it, and
/// — the real invariant — every worker survives to serve the healthy
/// client during and after the attack.
#[test]
fn a_stalled_reader_draws_io_timeouts_and_never_wedges_the_server() {
    let handle = serve(chaos_config(100)).expect("bind");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");

    // 150k one-line stats requests draw well over 10 MB of responses —
    // decisively past an autotuned loopback send buffer (tcp_wmem caps
    // at 4 MB) with the receive window pinned by the never-reading
    // client — so the server's writer must block and then hit the
    // write deadline. The hold keeps the socket open well past that
    // deadline: a client that closes early resets the blocked write
    // instead of timing it out.
    let line = "{\"op\":\"stats\"}".to_owned();
    let staller = std::thread::spawn(move || {
        vardelay_faults::stalled_reader(addr, &line, 150_000, Duration::from_secs(5))
    });

    let mut id = 1u64;
    wait_until("a write deadline to fire on the stalled connection", || {
        id += 1;
        healthy_call(&mut client, id).io_timeouts >= 1
    });
    staller
        .join()
        .expect("staller thread")
        .expect("staller strike IO");

    // Still fully serviceable after the attack.
    let (_, response) = client
        .call(&envelope(
            9_000,
            Request::SetDelay {
                channel: 0,
                ps: 25.0,
            },
        ))
        .expect("set_delay after the attack");
    assert!(matches!(response, Response::Delay(_)), "{response:?}");

    handle.shutdown();
    let report = handle.join();
    assert!(report.stats.io_timeouts >= 1, "{:?}", report.stats);
}
