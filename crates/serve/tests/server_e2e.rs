//! End-to-end behavior of the serve loop over real sockets: batching,
//! backpressure, per-request deadlines, chaos containment (the
//! acceptance criterion: a killed worker request draws an `internal`
//! error while the server keeps serving), and graceful drain.

use std::time::Duration;

use vardelay_faults::RequestChaos;
use vardelay_serve::{serve, Client, Envelope, ErrorKind, Request, Response, ServeConfig};

fn envelope(id: u64, request: Request) -> Envelope {
    Envelope {
        id: Some(id),
        deadline_ms: None,
        tenant: None,
        req_id: None,
        backend: None,
        request,
    }
}

/// Same-channel `set_delay` requests pipelined into one batch window
/// are answered from a single solve: everyone reports the same batch
/// size and the same (last-write-wins) hardware setting, but keeps
/// their own `requested_ps`.
#[test]
fn same_channel_set_delays_coalesce_into_one_solve() {
    let mut config = ServeConfig::in_process();
    config.workers = 1;
    config.batch_window = Duration::from_millis(100);
    let handle = serve(config).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let targets = [30.0, 45.0, 60.0];
    for (i, ps) in targets.iter().enumerate() {
        client
            .send_only(&envelope(
                i as u64 + 1,
                Request::SetDelay {
                    channel: 2,
                    ps: *ps,
                },
            ))
            .expect("send");
    }

    let mut replies = Vec::new();
    for _ in 0..targets.len() {
        let (id, response) = client.read_response().expect("a response");
        match response {
            Response::Delay(reply) => replies.push((id.expect("id echoed"), reply)),
            other => panic!("expected a delay reply, got {other:?}"),
        }
    }
    replies.sort_by_key(|(id, _)| *id);

    let lead = &replies[0].1;
    assert_eq!(lead.batched, targets.len(), "window missed the followers");
    for ((id, reply), ps) in replies.iter().zip(targets) {
        assert_eq!(reply.channel, 2);
        assert_eq!(reply.requested_ps, ps, "id {id} lost its own target");
        // One solve answered everyone: identical hardware setting.
        assert_eq!(reply.tap, lead.tap);
        assert_eq!(reply.dac_code, lead.dac_code);
        assert_eq!(reply.predicted_ps, lead.predicted_ps);
        assert_eq!(reply.batched, lead.batched);
        assert!(
            (reply.error_ps - (reply.predicted_ps - ps)).abs() < 1e-9,
            "error_ps must be measured against the waiter's own request"
        );
    }
    // The solve landed on the last write: its own error is the solver's.
    assert!(
        (lead.predicted_ps - 60.0).abs() < 10.0,
        "batch solved for {} ps, wanted ~60 (last write wins)",
        lead.predicted_ps
    );

    handle.shutdown();
    let report = handle.join();
    assert_eq!(report.stats.batched, targets.len() as u64 - 1);
}

/// Runs the backpressure scenario once (single worker parked in a long
/// batch window, a flood piling into a queue of depth 1) and returns the
/// overloaded retry hints in arrival order plus the stats/delay counts.
fn overloaded_retry_hints() -> (Vec<u64>, u64, u64) {
    let mut config = ServeConfig::in_process();
    config.workers = 1;
    config.queue_depth = 1;
    config.batch_window = Duration::from_millis(150);
    let handle = serve(config).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // The lead set_delay parks the single worker in its batch window…
    client
        .send_only(&envelope(
            1,
            Request::SetDelay {
                channel: 0,
                ps: 40.0,
            },
        ))
        .expect("send");
    // …while these pile into a queue of depth 1.
    let floods = 5u64;
    for id in 2..2 + floods {
        client
            .send_only(&envelope(id, Request::Stats))
            .expect("send");
    }

    let mut delays = 0u64;
    let mut stats_ok = 0u64;
    let mut hints = Vec::new();
    for _ in 0..1 + floods {
        let (_, response) = client.read_response().expect("a response");
        match response {
            Response::Delay(_) => delays += 1,
            Response::Stats(_) => stats_ok += 1,
            Response::Error(err) if err.kind == ErrorKind::Overloaded => {
                hints.push(err.retry_after_ms.expect("overloaded carries a retry hint"));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(delays, 1, "the admitted set_delay must still complete");
    assert!(
        hints.len() >= 3,
        "queue depth 1 under {floods} pipelined requests shed only {}",
        hints.len()
    );
    assert_eq!(stats_ok + hints.len() as u64, floods);

    handle.shutdown();
    let report = handle.join();
    assert_eq!(report.stats.overloaded, hints.len() as u64);
    (hints, delays, stats_ok)
}

/// When the bounded queue is full the reader answers `overloaded` with
/// a retry hint immediately — the socket never stalls and admitted work
/// still completes. The hints carry deterministic per-connection jitter:
/// bounded backoffs that are *not* all equal (no lockstep re-stampede),
/// yet reproduce exactly across identical runs.
#[test]
fn a_full_queue_answers_overloaded_with_jittered_retry_hints() {
    let (hints, _, _) = overloaded_retry_hints();

    // The hint is base + jitter with base = 1 + batch_window_ms +
    // default_deadline_ms/100 = 171 and jitter in [0, base/2).
    let base = 1 + 150 + 2000 / 100;
    let spread = base / 2;
    for &hint in &hints {
        assert!(
            (base..base + spread).contains(&hint),
            "hint {hint} outside [{base}, {})",
            base + spread
        );
    }
    // Jitter must actually spread the flood: a constant hint would make
    // every shed client retry at the same instant.
    assert!(
        hints.windows(2).any(|w| w[0] != w[1]),
        "all {} hints identical ({}) — retry stampede not broken",
        hints.len(),
        hints[0]
    );

    // Deterministic: the same scenario replays the same hint sequence
    // (modulo how many requests were shed, which depends on timing).
    let (again, _, _) = overloaded_retry_hints();
    let common = hints.len().min(again.len());
    assert_eq!(
        hints[..common],
        again[..common],
        "per-connection jitter must be reproducible run to run"
    );
}

/// A zero-width jitter window (no batch window, sub-100 ms default
/// deadline → base = 1, spread = 0) must pin every retry hint at the
/// base instead of dividing by zero in `rng % spread`.
#[test]
fn a_zero_width_jitter_window_pins_the_hint_and_does_not_panic() {
    let mut config = ServeConfig::in_process();
    config.workers = 1;
    config.queue_depth = 1;
    config.batch_window = Duration::ZERO;
    config.default_deadline = Duration::from_millis(50);
    let handle = serve(config).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // A deskew lead parks the single worker long enough for the flood
    // to overflow the depth-1 queue.
    client
        .send_only(&envelope(1, Request::Deskew { bus: 32, seed: 7 }))
        .expect("send");
    let floods = 6u64;
    for id in 2..2 + floods {
        client
            .send_only(&envelope(id, Request::Stats))
            .expect("send");
    }

    let mut hints = Vec::new();
    let mut answered = 0u64;
    for _ in 0..1 + floods {
        let (_, response) = client.read_response().expect("a response");
        match response {
            Response::Error(err) if err.kind == ErrorKind::Overloaded => {
                hints.push(err.retry_after_ms.expect("overloaded carries a retry hint"));
            }
            _ => answered += 1,
        }
    }
    // base = 1 + 0 + 50/100 = 1, spread = 1/2 = 0 → every hint is
    // exactly the base. Before the guard this scenario panicked the
    // reader thread on `rng % 0`.
    for &hint in &hints {
        assert_eq!(hint, 1, "zero-spread hint must pin at base");
    }
    assert!(
        !hints.is_empty(),
        "queue depth 1 under {floods} pipelined requests shed nothing"
    );
    assert_eq!(answered + hints.len() as u64, 1 + floods);

    handle.shutdown();
    let report = handle.join();
    assert_eq!(report.stats.overloaded, hints.len() as u64);
}

/// An exhausted budget is a `deadline_exceeded` *response* on a healthy
/// connection, never a drop.
#[test]
fn an_expired_deadline_is_a_response_not_a_dropped_connection() {
    let handle = serve(ServeConfig::in_process()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let (id, response) = client
        .call(&Envelope {
            id: Some(9),
            deadline_ms: Some(0),
            tenant: None,
            req_id: None,
            backend: None,
            request: Request::Stats,
        })
        .expect("a response");
    assert_eq!(id, Some(9));
    assert_eq!(
        response.error_kind(),
        Some(ErrorKind::DeadlineExceeded),
        "{response:?}"
    );

    // Same connection, fresh budget: served, and the miss was counted.
    let (_, response) = client.call(&envelope(10, Request::Stats)).expect("stats");
    match response {
        Response::Stats(stats) => assert_eq!(stats.deadline_exceeded, 1),
        other => panic!("expected stats, got {other:?}"),
    }

    handle.shutdown();
    handle.join();
}

/// The acceptance criterion: a seeded chaos kill mid-request panics the
/// worker, the doomed client gets an `internal` error response, and the
/// server keeps answering later requests and drains cleanly.
#[test]
fn a_chaos_killed_request_gets_an_error_while_the_server_keeps_serving() {
    vardelay_faults::set_enabled(true);
    let mut config = ServeConfig::in_process();
    config.workers = 1;
    config.chaos = Some(RequestChaos::new(0xC4A05, 2));
    let handle = serve(config).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let total = 10u64;
    let mut outcomes = Vec::new();
    for id in 0..total {
        let (_, response) = client
            .call(&envelope(id, Request::Selftest))
            .expect("a response");
        match response {
            Response::Selftest(_) => outcomes.push(true),
            Response::Error(err) if err.kind == ErrorKind::Internal => {
                assert!(
                    err.detail.contains("chaos"),
                    "internal error must carry the panic message: {}",
                    err.detail
                );
                outcomes.push(false);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    let killed = outcomes.iter().filter(|ok| !**ok).count();
    assert!(
        killed >= 1,
        "chaos at one-in-2 never fired over {total} requests"
    );
    assert!(
        killed < total as usize,
        "chaos must not kill everything at one-in-2"
    );
    let first_kill = outcomes.iter().position(|ok| !*ok).unwrap();
    assert!(
        outcomes[first_kill..].iter().any(|ok| *ok),
        "no request succeeded after the first kill — worker did not survive"
    );

    // The drain after a chaos run is still clean and accounts for every
    // request.
    let (_, response) = client
        .call(&envelope(99, Request::Shutdown))
        .expect("draining");
    assert_eq!(response, Response::Draining);
    let report = handle.join();
    assert_eq!(report.stats.requests, total + 1);
    assert_eq!(report.stats.internal_errors, killed as u64);
    assert_eq!(report.stats.ok, total - killed as u64 + 1); // + the Draining reply
}

/// A wire `shutdown` answers `draining`, stops the accept loop, and the
/// joined report accounts for every request served.
#[test]
fn graceful_drain_reports_final_counters() {
    let mut config = ServeConfig::in_process();
    config.workers = 1;
    let handle = serve(config).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let (_, stats) = client.call(&envelope(1, Request::Stats)).expect("stats");
    assert!(matches!(stats, Response::Stats(_)));
    let (_, delay) = client
        .call(&envelope(
            2,
            Request::SetDelay {
                channel: 1,
                ps: 25.0,
            },
        ))
        .expect("delay");
    assert!(matches!(delay, Response::Delay(_)), "{delay:?}");

    assert!(!handle.is_draining());
    let (id, response) = client
        .call(&envelope(3, Request::Shutdown))
        .expect("draining");
    assert_eq!((id, &response), (Some(3), &Response::Draining));
    assert!(handle.is_draining());

    let report = handle.join();
    assert_eq!(report.stats.requests, 3);
    assert_eq!(report.stats.ok, 3);
    assert_eq!(report.stats.parse_errors, 0);
    assert_eq!(report.stats.internal_errors, 0);
    assert_eq!(report.stats.workers, 1);
    assert_eq!(report.stats.queue_depth, 0);
    let line = report.to_string();
    assert!(line.starts_with("drained: requests=3 ok=3"), "{line}");
}
