//! Wire-level backend selection (DESIGN.md §17): an explicit
//! `backend:"circuit"` selector must be byte-identical to leaving the
//! field off — same bank, same responses, no new state — while
//! `vernier` and `dll` selectors route to their own lazily built banks
//! and answer real delay solves through the trait. The refactor guard
//! at the socket: PR 10 must be invisible to every pre-backend client.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use vardelay_backend::BackendKind;
use vardelay_serve::{
    serve, Client, Envelope, ErrorKind, Request, Response, ServeConfig, ServerHandle,
};

fn boot() -> ServerHandle {
    let mut config = ServeConfig::in_process();
    config.workers = 2;
    serve(config).expect("bind in-process server")
}

/// A raw line-oriented session: sends the exact bytes given and returns
/// the exact bytes answered, so equivalence is checked at the wire, not
/// after a parse.
struct RawWire {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl RawWire {
    fn connect(handle: &ServerHandle) -> RawWire {
        let writer = TcpStream::connect(handle.addr()).expect("connect");
        writer.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        RawWire { reader, writer }
    }

    fn call(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
        let mut out = String::new();
        self.reader.read_line(&mut out).expect("a response line");
        out.trim_end().to_owned()
    }
}

fn delay(id: u64, channel: usize, ps: f64) -> Envelope {
    Envelope {
        id: Some(id),
        deadline_ms: None,
        tenant: None,
        req_id: None,
        backend: None,
        request: Request::SetDelay { channel, ps },
    }
}

fn banks(client: &mut Client) -> u64 {
    let (_, response) = client.call(&Envelope::new(Request::Stats)).expect("stats");
    match response {
        Response::Stats(stats) => stats.banks,
        other => panic!("expected stats, got {other:?}"),
    }
}

/// Pinning `backend:"circuit"` explicitly answers byte-for-byte the
/// same lines as omitting the field, and never mints a second bank —
/// the selector is routing metadata, not state.
#[test]
fn explicit_circuit_selector_is_byte_identical_to_the_default_path() {
    let handle = boot();
    let mut wire = RawWire::connect(&handle);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let before = banks(&mut client);

    let script = [(0usize, 0.0f64), (1, 17.5), (2, 40.0), (3, 99.9), (0, 61.5)];
    for (i, (channel, ps)) in script.iter().enumerate() {
        let bare = delay(i as u64, *channel, *ps);
        let pinned = bare.clone().on_backend(BackendKind::Circuit);
        let want = wire.call(&bare.to_value().render());
        let got = wire.call(&pinned.to_value().render());
        assert_eq!(
            got, want,
            "channel {channel} at {ps} ps: explicit circuit diverged from the default"
        );
        assert!(want.contains("\"tap\""), "not a delay reply: {want}");
    }

    assert_eq!(
        banks(&mut client),
        before,
        "an explicit default selector must reuse the default bank"
    );
    handle.shutdown();
    handle.join();
}

/// `vernier` and `dll` selectors each build their own bank on first
/// touch and answer real solves through the trait: tapless settings
/// (the behavioral parts have no VGA tap mux), solve error within the
/// backend's advertised resolution, and a healthy selftest.
#[test]
fn behavioral_selectors_route_to_their_own_banks_and_solve() {
    let handle = boot();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut expected_banks = banks(&mut client);

    for (kind, resolution_ps) in [(BackendKind::Vernier, 1.0), (BackendKind::Dll, 3.0)] {
        for (channel, ps) in [(0usize, 12.5f64), (5, 180.0), (7, 299.0)] {
            let (_, response) = client
                .call(&delay(ps as u64, channel, ps).on_backend(kind))
                .expect("a response");
            match response {
                Response::Delay(reply) => {
                    assert_eq!(reply.channel, channel, "{kind:?}");
                    assert_eq!(reply.tap, 0, "{kind:?} has no tap mux");
                    assert!(
                        reply.error_ps.abs() <= resolution_ps,
                        "{kind:?}: {ps} ps missed by {} ps",
                        reply.error_ps
                    );
                }
                other => panic!("{kind:?}: expected a delay reply, got {other:?}"),
            }
        }
        let (_, selftest) = client
            .call(&Envelope::new(Request::Selftest).on_backend(kind))
            .expect("selftest");
        match selftest {
            Response::Selftest(reply) => {
                assert_eq!(reply.verdict, "healthy", "{kind:?}: {}", reply.summary)
            }
            other => panic!("{kind:?}: expected selftest, got {other:?}"),
        }
        expected_banks += 1;
        assert_eq!(
            banks(&mut client),
            expected_banks,
            "{kind:?} must get its own bank"
        );
    }

    // Re-touching a behavioral backend reuses its bank.
    let (_, response) = client
        .call(&delay(99, 1, 25.0).on_backend(BackendKind::Vernier))
        .expect("a response");
    assert!(matches!(response, Response::Delay(_)), "{response:?}");
    assert_eq!(banks(&mut client), expected_banks, "bank leak on re-touch");

    handle.shutdown();
    handle.join();
}

/// An unknown selector is a structured `bad_request` that lists the
/// valid names, and the same connection keeps serving the default.
#[test]
fn unknown_selector_is_rejected_with_the_valid_names() {
    let handle = boot();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let (_, response) = client
        .send_raw("{\"op\":\"stats\",\"backend\":\"fpga\"}")
        .expect("a response");
    match &response {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::BadRequest, "{e:?}");
            assert!(e.detail.contains("circuit, vernier, dll"), "{}", e.detail);
        }
        other => panic!("expected bad_request, got {other:?}"),
    }
    let (_, ok) = client.call(&Envelope::new(Request::Stats)).expect("stats");
    assert!(matches!(ok, Response::Stats(_)), "{ok:?}");
    handle.shutdown();
    handle.join();
}
