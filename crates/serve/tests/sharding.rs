//! Sharded multi-tenant behavior over real sockets: serial-vs-sharded
//! wire equivalence (the PR 7 acceptance criterion), tenant-local
//! batching, per-tenant quotas, LRU bank eviction, and chaos
//! containment across shards.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use vardelay_faults::RequestChaos;
use vardelay_serve::{serve, Client, Envelope, ErrorKind, Request, Response, ServeConfig};

fn envelope(id: u64, request: Request) -> Envelope {
    Envelope {
        id: Some(id),
        deadline_ms: None,
        tenant: None,
        req_id: None,
        backend: None,
        request,
    }
}

/// Runs a fixed, sequential request script against `addr` and returns
/// the raw response lines exactly as they arrived on the wire.
fn wire_session(addr: std::net::SocketAddr, script: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::with_capacity(script.len());
    for request in script {
        writer.write_all(request.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("write");
        writer.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        lines.push(line.trim_end().to_owned());
    }
    lines
}

/// The acceptance criterion: a deterministic single-client script must
/// produce **byte-identical** wire responses whether the service runs
/// one shard or many — sharding is a routing refactor, not a semantic
/// change. (`stats` is excluded: it reports the shard count itself.)
#[test]
fn serial_and_sharded_servers_answer_byte_identically() {
    let mut script = Vec::new();
    let mut id = 0u64;
    for round in 0..3u64 {
        for channel in 0..8u64 {
            id += 1;
            let ps = 7.5 * ((channel + round * 3) % 16 + 1) as f64;
            script.push(format!(
                "{{\"op\":\"set_delay\",\"id\":{id},\"tenant\":\"t{:02}\",\
                 \"channel\":{channel},\"ps\":{ps}}}",
                channel % 3
            ));
        }
    }
    id += 1;
    script.push(format!(
        "{{\"op\":\"deskew\",\"id\":{id},\"bus\":6,\"seed\":42}}"
    ));
    id += 1;
    script.push(format!(
        "{{\"op\":\"inject_jitter\",\"id\":{id},\"vpp_mv\":80,\"rate_gbps\":3.2,\
         \"bits\":127,\"seed\":5}}"
    ));
    id += 1;
    script.push(format!(
        "{{\"op\":\"selftest\",\"id\":{id},\"tenant\":\"t01\"}}"
    ));

    let run = |shards: usize| {
        let mut config = ServeConfig::in_process();
        config.shards = shards;
        config.workers = 4;
        let handle = serve(config).expect("bind");
        let lines = wire_session(handle.addr(), &script);
        handle.shutdown();
        handle.join();
        lines
    };
    let serial = run(1);
    let sharded = run(4);
    assert_eq!(serial.len(), sharded.len());
    for (a, b) in serial.iter().zip(&sharded) {
        assert_eq!(a, b, "serial and sharded wire responses diverged");
    }
}

/// Batching is tenant-local: two tenants hammering the same channel in
/// one batch window coalesce within their own lane only, and each
/// waiter keeps its own tenant's solve.
#[test]
fn batches_never_cross_tenant_lanes() {
    let mut config = ServeConfig::in_process();
    config.workers = 1;
    config.batch_window = Duration::from_millis(100);
    let handle = serve(config).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Tenant a leads, tenant b wedges between a's two writes.
    let sends = [("a", 1, 30.0), ("b", 2, 45.0), ("a", 3, 60.0)];
    for (tenant, id, ps) in sends {
        client
            .send_only(&envelope(id, Request::SetDelay { channel: 2, ps }).for_tenant(tenant))
            .expect("send");
    }
    let mut replies = Vec::new();
    for _ in 0..sends.len() {
        let (id, response) = client.read_response().expect("a response");
        match response {
            Response::Delay(reply) => replies.push((id.expect("id"), reply)),
            other => panic!("expected a delay reply, got {other:?}"),
        }
    }
    replies.sort_by_key(|(id, _)| *id);
    let (_, a_lead) = &replies[0];
    let (_, b_solo) = &replies[1];
    let (_, a_follow) = &replies[2];
    assert_eq!(a_lead.batched, 2, "tenant a's two writes must coalesce");
    assert_eq!(a_follow.batched, 2);
    assert_eq!(
        b_solo.batched, 1,
        "tenant b must not be swept into a's batch"
    );
    // a's batch solved last-write-wins for 60; b solved its own 45.
    assert!(
        (a_lead.predicted_ps - 60.0).abs() < 10.0,
        "{}",
        a_lead.predicted_ps
    );
    assert!(
        (b_solo.predicted_ps - 45.0).abs() < 10.0,
        "{}",
        b_solo.predicted_ps
    );

    handle.shutdown();
    handle.join();
}

/// Token-bucket quotas shed a hot tenant at admission (counted in
/// `quota_rejections`) while a quiet tenant on the same connection is
/// untouched.
#[test]
fn a_hot_tenant_is_quota_limited_without_collateral_damage() {
    let mut config = ServeConfig::in_process();
    config.shards = 2;
    config.quota_rps = Some(5.0);
    config.quota_burst = Some(3.0);
    let handle = serve(config).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let mut hog_ok = 0u64;
    let mut hog_shed = 0u64;
    for id in 0..12 {
        let (_, response) = client
            .call(&envelope(id, Request::Stats).for_tenant("hog"))
            .expect("a response");
        match response {
            Response::Stats(_) => hog_ok += 1,
            Response::Error(err) if err.kind == ErrorKind::Overloaded => {
                assert!(err.detail.contains("quota"), "{}", err.detail);
                assert!(err.retry_after_ms.is_some(), "quota shed carries a hint");
                hog_shed += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(hog_shed > 0, "12 rapid calls at burst 3 must shed some");
    assert!(hog_ok >= 3, "the burst allowance must be honored");

    // The quiet tenant's fresh bucket is untouched by the hog's spree.
    for id in 100..103 {
        let (_, response) = client
            .call(&envelope(id, Request::Stats).for_tenant("calm"))
            .expect("a response");
        match response {
            Response::Stats(stats) => {
                assert_eq!(stats.quota_rejections, hog_shed);
                assert_eq!(stats.shards, 2);
            }
            other => panic!("calm tenant shed: {other:?}"),
        }
    }

    handle.shutdown();
    let report = handle.join();
    assert_eq!(report.stats.quota_rejections, hog_shed);
    assert_eq!(report.stats.overloaded, hog_shed);
}

/// The bank registry caps resident tenant banks, evicting least
/// recently used; evicted tenants are still served (re-calibration
/// rides the fast-solve cache) and `stats.banks` never exceeds the cap.
#[test]
fn cold_tenant_banks_are_evicted_at_the_cap_and_readmitted() {
    let mut config = ServeConfig::in_process();
    config.shards = 2;
    config.max_banks = 2;
    let handle = serve(config).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Four tenants (plus the eagerly-built default) churn through a
    // registry that holds two banks.
    for (i, tenant) in ["t-a", "t-b", "t-c", "t-a", "t-d"].iter().enumerate() {
        let (_, response) = client
            .call(
                &envelope(
                    i as u64,
                    Request::SetDelay {
                        channel: i % 8,
                        ps: 30.0 + i as f64,
                    },
                )
                .for_tenant(*tenant),
            )
            .expect("a response");
        assert!(matches!(response, Response::Delay(_)), "{response:?}");
    }
    let (_, response) = client.call(&envelope(99, Request::Stats)).expect("stats");
    match response {
        Response::Stats(stats) => {
            assert!(stats.banks <= 2, "cap 2 exceeded: {} banks", stats.banks);
            assert_eq!(stats.ok, 5);
        }
        other => panic!("expected stats, got {other:?}"),
    }

    handle.shutdown();
    handle.join();
}

/// Chaos containment survives sharding: a seeded kill on one shard's
/// worker draws an `internal` error for the doomed request while every
/// shard keeps serving its tenants.
#[test]
fn chaos_kills_stay_contained_within_a_sharded_server() {
    vardelay_faults::set_enabled(true);
    let mut config = ServeConfig::in_process();
    config.shards = 3;
    config.workers = 3;
    config.chaos = Some(RequestChaos::new(0x5AD_C4A05, 3));
    let handle = serve(config).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let tenants = ["t00", "t01", "t02"];
    let total = 12u64;
    let mut killed = 0u64;
    let mut served = 0u64;
    for id in 0..total {
        let tenant = tenants[(id % 3) as usize];
        let (_, response) = client
            .call(&envelope(id, Request::Selftest).for_tenant(tenant))
            .expect("a response");
        match response {
            Response::Selftest(_) => served += 1,
            Response::Error(err) if err.kind == ErrorKind::Internal => {
                assert!(err.detail.contains("chaos"), "{}", err.detail);
                killed += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(killed >= 1, "chaos at one-in-3 never fired over {total}");
    assert!(served >= 1, "no request survived — a shard died");

    handle.shutdown();
    let report = handle.join();
    assert_eq!(report.stats.requests, total);
    assert_eq!(report.stats.internal_errors, killed);
    assert_eq!(report.stats.ok, served);
    assert_eq!(report.stats.shards, 3);
}
