//! Wire-protocol robustness: arbitrary byte junk, truncated JSON, and
//! oversized lines must never panic a server thread and must always
//! draw a structured error response; every request/response type must
//! survive a render→parse round trip.
//!
//! The junk tests go over a real socket against a live in-process
//! server (shared across cases — one calibration, many connections),
//! so they exercise the reader thread's framing and error paths, not
//! just the parser.

use std::sync::OnceLock;

use proptest::prelude::*;
use vardelay_serve::{
    Client, DelayReply, DeskewReply, Envelope, ErrorKind, ErrorReply, JitterReply, Request,
    Response, SelftestReply, ServeConfig, ServerHandle, StatsReply, MAX_LINE_BYTES,
};

fn shared_server() -> &'static ServerHandle {
    static SERVER: OnceLock<ServerHandle> = OnceLock::new();
    SERVER.get_or_init(|| {
        let mut config = ServeConfig::in_process();
        config.workers = 2;
        vardelay_serve::serve(config).expect("bind in-process server")
    })
}

fn connect() -> Client {
    Client::connect(shared_server().addr()).expect("connect to in-process server")
}

proptest! {
    /// Random bytes (newlines stripped — they are the framing) always
    /// come back as one structured error, and the connection survives
    /// to serve a well-formed request afterwards.
    #[test]
    fn byte_junk_draws_a_structured_error_and_never_kills_the_server(
        junk in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let line: String = junk
            .iter()
            .map(|&b| if b == b'\n' || b == b'\r' { b'x' } else { b } as char)
            .collect();
        let mut client = connect();
        let (_, response) = client.send_raw(&line).expect("a response line");
        match response.error_kind() {
            Some(ErrorKind::ParseError) | Some(ErrorKind::BadRequest) => {}
            other => prop_assert!(false, "junk {line:?} drew {other:?}"),
        }
        // Same connection still serves.
        let (_, ok) = client.call(&Envelope::new(Request::Stats)).expect("stats");
        prop_assert!(matches!(ok, Response::Stats(_)), "{ok:?}");
    }

    /// Every strict prefix of a valid request line is invalid JSON, so
    /// it must parse-error — never panic, never be accepted.
    #[test]
    fn truncated_json_is_always_a_parse_error(
        cut in 0usize..30,
        channel in 0u64..16,
        ps in 0.0f64..400.0,
    ) {
        let full = Envelope::new(Request::SetDelay {
            channel: channel as usize,
            ps,
        })
        .to_value()
        .render();
        let cut = cut.min(full.len().saturating_sub(1));
        let truncated = &full[..cut];
        let err = Envelope::parse(truncated).expect_err("prefix accepted");
        prop_assert_eq!(err.kind, ErrorKind::ParseError, "{}", truncated);
    }

    /// The same truncations over a live socket: structured response,
    /// surviving connection.
    #[test]
    fn truncated_json_over_the_wire_draws_parse_error(cut in 1usize..14) {
        let full = Envelope::new(Request::Stats).to_value().render();
        let truncated = &full[..cut.min(full.len() - 1)];
        let mut client = connect();
        let (_, response) = client.send_raw(truncated).expect("a response line");
        prop_assert_eq!(response.error_kind(), Some(ErrorKind::ParseError), "{:?}", response);
        let (_, ok) = client.call(&Envelope::new(Request::Stats)).expect("stats");
        prop_assert!(matches!(ok, Response::Stats(_)), "{ok:?}");
    }

    /// Out-of-range and overflowing index fields — huge `channel`s
    /// above the protocol cap (up to `u64::MAX`), negative-looking
    /// values, float-valued channels — always draw a structured
    /// `bad_request` over a live socket, never a truncated index, a
    /// panic, or a dropped connection.
    #[test]
    fn overflowing_numeric_fields_draw_bad_request_over_the_wire(
        huge in (1u64 << 20) + 1..=u64::MAX,
        frac in 1u32..100,
        negative in 1u64..1_000_000,
    ) {
        let lines = [
            format!("{{\"op\":\"set_delay\",\"channel\":{huge},\"ps\":10}}"),
            format!("{{\"op\":\"set_delay\",\"channel\":-{negative},\"ps\":10}}"),
            format!("{{\"op\":\"set_delay\",\"channel\":0.{frac:02},\"ps\":10}}"),
            format!("{{\"op\":\"deskew\",\"bus\":{huge}}}"),
            format!("{{\"op\":\"inject_jitter\",\"vpp_mv\":80,\"rate_gbps\":3.2,\"bits\":{huge}}}"),
        ];
        let mut client = connect();
        for line in &lines {
            let (_, response) = client.send_raw(line).expect("a response line");
            prop_assert_eq!(
                response.error_kind(),
                Some(ErrorKind::BadRequest),
                "{} drew {:?}", line, response
            );
        }
        // Same connection still serves after the whole barrage.
        let (_, ok) = client.call(&Envelope::new(Request::Stats)).expect("stats");
        prop_assert!(matches!(ok, Response::Stats(_)), "{ok:?}");
    }

    /// Junk `backend` selectors — unknown names, oversized strings,
    /// non-string values — always draw a structured `bad_request` whose
    /// detail names the field, the unknown-name detail lists the valid
    /// backends, and the connection survives the whole barrage.
    #[test]
    fn junk_backend_selectors_draw_bad_request_over_the_wire(
        junk in proptest::collection::vec(any::<u8>(), 1..24),
        pad in 33usize..200,
    ) {
        // Lowercase letters only, so the line stays valid JSON; dodge
        // the three real names.
        let mut name: String = junk.iter().map(|&b| (b'a' + (b % 26)) as char).collect();
        if matches!(name.as_str(), "circuit" | "vernier" | "dll") {
            name.push('x');
        }
        let oversized = "v".repeat(pad);
        let mut client = connect();
        let lines = [
            format!("{{\"op\":\"stats\",\"backend\":\"{name}\"}}"),
            format!("{{\"op\":\"stats\",\"backend\":\"{oversized}\"}}"),
            "{\"op\":\"stats\",\"backend\":7}".to_owned(),
        ];
        for line in &lines {
            let (_, response) = client.send_raw(line).expect("a response line");
            match &response {
                Response::Error(e) => {
                    prop_assert_eq!(e.kind, ErrorKind::BadRequest, "{} drew {:?}", line, e);
                    prop_assert!(e.detail.contains("backend"), "{}", e.detail);
                }
                other => prop_assert!(false, "{line} drew {other:?}"),
            }
        }
        // The unknown-name rejection teaches the caller the valid set.
        let (_, response) = client
            .send_raw(&format!("{{\"op\":\"stats\",\"backend\":\"{name}\"}}"))
            .expect("a response line");
        match &response {
            Response::Error(e) => prop_assert!(
                e.detail.contains("circuit, vernier, dll"),
                "{}",
                e.detail
            ),
            other => prop_assert!(false, "{other:?}"),
        }
        // Same connection still serves.
        let (_, ok) = client.call(&Envelope::new(Request::Stats)).expect("stats");
        prop_assert!(matches!(ok, Response::Stats(_)), "{ok:?}");
    }

    /// In-range but out-of-bank channels (the service exposes 8) are
    /// rejected at admission with the channel-count detail, and the
    /// response still carries the request's correlation id.
    #[test]
    fn out_of_bank_channels_are_rejected_at_admission(channel in 8usize..1000) {
        let mut client = connect();
        let envelope = Envelope {
            id: Some(channel as u64),
            deadline_ms: None,
            tenant: None,
            req_id: None,
            backend: None,
            request: Request::SetDelay { channel, ps: 10.0 },
        };
        let (id, response) = client.call(&envelope).expect("a response line");
        prop_assert_eq!(id, Some(channel as u64));
        match &response {
            Response::Error(e) => {
                prop_assert_eq!(e.kind, ErrorKind::BadRequest);
                prop_assert!(e.detail.contains("out of range"), "{}", e.detail);
            }
            other => prop_assert!(false, "{other:?}"),
        }
    }
}

/// A line past [`MAX_LINE_BYTES`] draws exactly one `parse_error`, the
/// oversized tail is discarded to the next newline, and the connection
/// keeps serving.
#[test]
fn oversized_line_is_rejected_and_the_connection_recovers() {
    let mut client = connect();
    let huge = "z".repeat(MAX_LINE_BYTES + 4096);
    let (_, response) = client.send_raw(&huge).expect("a response line");
    assert_eq!(
        response.error_kind(),
        Some(ErrorKind::ParseError),
        "{response:?}"
    );
    let (_, ok) = client.call(&Envelope::new(Request::Stats)).expect("stats");
    assert!(matches!(ok, Response::Stats(_)), "{ok:?}");
}

/// Every response variant survives `to_value` → `parse` with its id.
#[test]
fn every_response_type_round_trips() {
    let all: Vec<Response> = vec![
        Response::Delay(DelayReply {
            channel: 3,
            requested_ps: 61.5,
            tap: 1,
            dac_code: 2048,
            vctrl_mv: 812.5,
            predicted_ps: 61.437,
            error_ps: -0.063,
            batched: 4,
        }),
        Response::Deskew(DeskewReply {
            bus: 8,
            before_ps: 118.2,
            after_ps: 2.9,
            healthy: 7,
            quarantined: vec![2],
            reference: 0,
            meets_target: true,
        }),
        Response::Jitter(JitterReply {
            edges: 65,
            slope_s_per_v: 4.1e-11,
        }),
        Response::Selftest(SelftestReply {
            verdict: "healthy".to_owned(),
            summary: "Healthy: dac stuck 0b0 flaky 0b0".to_owned(),
            partial: false,
        }),
        Response::Selftest(SelftestReply {
            verdict: "healthy".to_owned(),
            summary: "calibration ok; dac sweep skipped (deadline)".to_owned(),
            partial: true,
        }),
        Response::Stats(StatsReply {
            requests: 10,
            ok: 7,
            parse_errors: 1,
            bad_requests: 1,
            overloaded: 1,
            deadline_exceeded: 0,
            internal_errors: 0,
            batched: 2,
            quota_rejections: 1,
            unavailable: 2,
            io_timeouts: 1,
            reaped: 1,
            quarantined: 1,
            unhealthy: 2,
            recalibrations: 3,
            quarantines: 1,
            server_epoch: 2,
            banks_restored: 1,
            banks_recalibrated: 1,
            wal_records_replayed: 12,
            restore_us: 4_200,
            dedup_hits: 3,
            queue_depth: 3,
            workers: 2,
            shards: 4,
            banks: 2,
        }),
        Response::Error(ErrorReply {
            kind: ErrorKind::Unavailable,
            detail: "channel 7 is quarantined pending recalibration".to_owned(),
            retry_after_ms: Some(100),
        }),
        Response::Draining,
        Response::Error(ErrorReply {
            kind: ErrorKind::Overloaded,
            detail: "queue of 64 is full".to_owned(),
            retry_after_ms: Some(21),
        }),
        Response::Error(ErrorReply {
            kind: ErrorKind::DeadlineExceeded,
            detail: "budget of 5 ms exhausted".to_owned(),
            retry_after_ms: None,
        }),
    ];
    for (i, response) in all.into_iter().enumerate() {
        let id = Some(i as u64 + 100);
        let line = response.to_value(id).render();
        let (back_id, back) = Response::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert_eq!(back_id, id, "{line}");
        assert_eq!(back, response, "{line}");
    }
    // And the id-less form.
    let line = Response::Draining.to_value(None).render();
    assert_eq!(Response::parse(&line).unwrap(), (None, Response::Draining));
}

/// Every request variant survives the trip too (the unit tests in the
/// protocol module cover the field-level errors; this pins the full
/// envelope surface against a live parse).
#[test]
fn every_request_type_round_trips() {
    let all = vec![
        Envelope {
            id: Some(1),
            deadline_ms: Some(750),
            tenant: Some("lot-7".to_owned()),
            req_id: None,
            backend: None,
            request: Request::SetDelay {
                channel: 0,
                ps: 0.0,
            },
        },
        Envelope::new(Request::Deskew { bus: 16, seed: 9 }),
        Envelope::new(Request::InjectJitter {
            vpp_mv: 120.0,
            rate_gbps: 6.4,
            bits: 500,
            seed: 77,
        }),
        Envelope::new(Request::Selftest),
        Envelope::new(Request::Stats),
        Envelope::new(Request::Shutdown),
    ];
    for envelope in all {
        let line = envelope.to_value().render();
        let back = Envelope::parse(&line).unwrap_or_else(|e| panic!("{line}: {e:?}"));
        assert_eq!(back, envelope, "{line}");
    }
}
