//! End-to-end self-healing (DESIGN.md §15): a physically drifted
//! channel is detected by the sentinel loop, recalibrated in the
//! background, and — the acceptance criterion — answers **byte-
//! identical** to a freshly calibrated drifted bank once healed.
//! Gross drift walks the full quarantine → recovery arc over real
//! sockets; with recalibration sabotaged the channel stays out of
//! service forever, which is the red lever the chaos-soak gate pulls.

use std::time::{Duration, Instant};

use vardelay_core::config::ModelConfig;
use vardelay_core::{CombinedDelayCircuit, TempCo};
use vardelay_runner::Runner;
use vardelay_serve::{
    serve, ChannelState, Client, DelayReply, Envelope, ErrorKind, Request, Response, ServeConfig,
    ServerHandle, SERVE_SEED,
};
use vardelay_units::Time;

const TENANT: &str = "";
const WAIT: Duration = Duration::from_secs(60);

fn healing_config() -> ServeConfig {
    let mut config = ServeConfig::in_process();
    config.workers = 1;
    config.shards = 1;
    config.health_period = Some(Duration::from_millis(25));
    config
}

fn envelope(id: u64, request: Request) -> Envelope {
    Envelope {
        id: Some(id),
        deadline_ms: None,
        tenant: None,
        req_id: None,
        backend: None,
        request,
    }
}

fn set_delay(client: &mut Client, id: u64, channel: usize, ps: f64) -> Response {
    let (_, response) = client
        .call(&envelope(id, Request::SetDelay { channel, ps }))
        .expect("a response line");
    response
}

/// Polls `done` every few milliseconds until it returns true, panicking
/// with `what` after the global deadline.
fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + WAIT;
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// What a freshly built, freshly calibrated bank at `delta_k` kelvin
/// answers for `ps` — the ground truth a healed channel must match
/// bit-for-bit (same model, same [`SERVE_SEED`], same serial sweep).
fn fresh_drifted_answer(delta_k: f64, ps: f64) -> (usize, u32, f64, f64, f64) {
    let drifted = ModelConfig::paper_prototype().at_temperature_offset(delta_k, &TempCo::default());
    let mut circuit = CombinedDelayCircuit::new(&drifted, SERVE_SEED);
    circuit.calibrate_with(Runner::serial());
    let setting = circuit
        .set_delay(Time::from_ps(ps))
        .expect("fresh drifted circuit solves");
    let predicted_ps = setting.predicted_delay.as_ps();
    // The batch path recomputes each waiter's error in ps space
    // (`predicted_ps - ps`), so the wire-identical mirror must too.
    (
        setting.tap,
        setting.dac_code,
        setting.vctrl.as_mv(),
        predicted_ps,
        predicted_ps - ps,
    )
}

fn assert_matches_fresh(reply: &DelayReply, delta_k: f64, ps: f64) {
    let (tap, dac_code, vctrl_mv, predicted_ps, error_ps) = fresh_drifted_answer(delta_k, ps);
    assert_eq!(reply.tap, tap, "healed tap differs from a fresh bank");
    assert_eq!(reply.dac_code, dac_code, "healed dac code differs");
    assert_eq!(reply.vctrl_mv, vctrl_mv, "healed vctrl differs");
    assert_eq!(
        reply.predicted_ps, predicted_ps,
        "healed prediction differs"
    );
    assert_eq!(reply.error_ps, error_ps, "healed error differs");
}

fn wire_stats(client: &mut Client, id: u64) -> vardelay_serve::StatsReply {
    let (_, response) = client
        .call(&envelope(id, Request::Stats))
        .expect("a stats line");
    match response {
        Response::Stats(stats) => stats,
        other => panic!("expected stats, got {other:?}"),
    }
}

fn drain(handle: ServerHandle, client: &mut Client, id: u64) -> vardelay_serve::DrainReport {
    let (_, response) = client
        .call(&envelope(id, Request::Shutdown))
        .expect("draining");
    assert_eq!(response, Response::Draining);
    handle.join()
}

/// Mild drift (8 K): the sentinel flags it, the channel rides probation
/// — **still answering** the whole time — and the background rebuild
/// swaps in a table whose answers match a freshly calibrated drifted
/// bank exactly. No quarantine, no lost request.
#[test]
fn mild_drift_heals_in_probation_without_refusing_a_single_request() {
    vardelay_faults::set_enabled(true);
    let handle = serve(healing_config()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Pre-drift sanity: the channel answers.
    assert!(
        matches!(set_delay(&mut client, 1, 7, 60.0), Response::Delay(_)),
        "channel must serve before the fault"
    );

    assert!(
        handle.inject_drift(TENANT, 7, 8.0),
        "drift injection must land on the resident default bank"
    );

    // Wait for detect + heal, hammering the drifted channel throughout:
    // probation keeps serving, so every answer must be a Delay.
    let mut id = 10u64;
    wait_until("background recalibration after mild drift", || {
        id += 1;
        match set_delay(&mut client, id, 7, 60.0) {
            Response::Delay(_) => {}
            other => panic!("probation refused a request: {other:?}"),
        }
        id += 1;
        let stats = wire_stats(&mut client, id);
        stats.recalibrations >= 1 && stats.unhealthy == 0
    });

    // Healed: byte-identical to a fresh drifted bank.
    match set_delay(&mut client, 9_000, 7, 60.0) {
        Response::Delay(reply) => assert_matches_fresh(&reply, 8.0, 60.0),
        other => panic!("healed channel refused: {other:?}"),
    }
    assert_eq!(handle.channel_state(TENANT, 7), ChannelState::Healthy);

    let report = drain(handle, &mut client, 9_001);
    assert_eq!(
        report.stats.quarantines, 0,
        "mild drift must not quarantine"
    );
    assert!(report.stats.recalibrations >= 1);
    assert_eq!(report.stats.unavailable, 0);
}

/// Gross drift (40 K): quarantine answers a structured `unavailable`
/// with the documented retry hint while healthy channels keep serving;
/// after recalibration plus the re-admission rounds the channel returns
/// and answers byte-identical to a fresh drifted bank.
#[test]
fn gross_drift_quarantines_then_recovers_end_to_end() {
    vardelay_faults::set_enabled(true);
    let handle = serve(healing_config()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    assert!(matches!(
        set_delay(&mut client, 1, 5, 45.0),
        Response::Delay(_)
    ));
    assert!(handle.inject_drift(TENANT, 5, 40.0));

    // Detection: the channel starts refusing with the structured error.
    let mut id = 10u64;
    let mut saw_unavailable = false;
    wait_until("quarantine after gross drift", || {
        id += 1;
        match set_delay(&mut client, id, 5, 45.0) {
            Response::Delay(_) => {}
            Response::Error(err) if err.kind == ErrorKind::Unavailable => {
                assert!(
                    err.detail.contains("quarantined"),
                    "unavailable must say why: {}",
                    err.detail
                );
                // period 25 ms × (recovery rounds 3 + 1).
                assert_eq!(err.retry_after_ms, Some(100), "retry hint");
                saw_unavailable = true;
            }
            other => panic!("unexpected response under quarantine: {other:?}"),
        }
        // Healthy channels are untouched the whole time.
        id += 1;
        match set_delay(&mut client, id, 0, 30.0) {
            Response::Delay(_) => {}
            other => panic!("healthy channel 0 degraded: {other:?}"),
        }
        saw_unavailable
    });

    // Recovery: recalibration plus K consecutive healthy rounds.
    wait_until("re-admission after recalibration", || {
        handle.channel_state(TENANT, 5) == ChannelState::Healthy
    });
    match set_delay(&mut client, 9_000, 5, 45.0) {
        Response::Delay(reply) => assert_matches_fresh(&reply, 40.0, 45.0),
        other => panic!("recovered channel refused: {other:?}"),
    }

    let report = drain(handle, &mut client, 9_001);
    assert!(report.stats.quarantines >= 1, "{:?}", report.stats);
    assert!(report.stats.recalibrations >= 1, "{:?}", report.stats);
    assert!(report.stats.unavailable >= 1, "{:?}", report.stats);
    assert_eq!(report.stats.quarantined, 0, "nothing left in quarantine");
}

/// With recalibration sabotaged (`VARDELAY_SERVE_RECAL=0` in the soak
/// gate; the config knob here), a grossly drifted channel is detected
/// and quarantined but can never heal: it keeps refusing for as long as
/// anyone cares to wait, while healthy channels serve on. This is the
/// determinism behind the gate's red leg.
#[test]
fn sabotaged_recalibration_leaves_the_channel_quarantined_forever() {
    vardelay_faults::set_enabled(true);
    let mut config = healing_config();
    config.recalibrate = false;
    let handle = serve(config).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    assert!(matches!(
        set_delay(&mut client, 1, 3, 70.0),
        Response::Delay(_)
    ));
    assert!(handle.inject_drift(TENANT, 3, 40.0));

    let mut id = 10u64;
    wait_until("quarantine with recalibration disabled", || {
        id += 1;
        matches!(
            set_delay(&mut client, id, 3, 70.0),
            Response::Error(ref err) if err.kind == ErrorKind::Unavailable
        )
    });

    // Ten more sentinel periods: still quarantined, still refusing —
    // the stale table is never rebuilt, so the verdict never improves.
    std::thread::sleep(Duration::from_millis(250));
    assert!(matches!(
        handle.channel_state(TENANT, 3),
        ChannelState::Quarantined
    ));
    match set_delay(&mut client, 9_000, 3, 70.0) {
        Response::Error(err) => assert_eq!(err.kind, ErrorKind::Unavailable),
        other => panic!("sabotaged channel healed anyway: {other:?}"),
    }
    assert!(
        matches!(set_delay(&mut client, 9_001, 0, 30.0), Response::Delay(_)),
        "healthy channels must be unaffected"
    );

    let report = drain(handle, &mut client, 9_002);
    assert_eq!(
        report.stats.recalibrations, 0,
        "sabotage means zero rebuilds"
    );
    assert_eq!(report.stats.quarantines, 1, "one incident, counted once");
    assert_eq!(report.stats.quarantined, 1, "still serving nothing on ch 3");
}
