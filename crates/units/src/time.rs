//! The [`Time`] quantity: instants and intervals in seconds.

use crate::quantity_ops;

/// An instant on the simulation timeline, or a time interval, in seconds.
///
/// The suite deals with sub-picosecond effects over captures of at most a
/// few microseconds, so an `f64` of seconds (~1e-16 relative precision at
/// 1 µs) loses nothing while keeping arithmetic ergonomic.
///
/// # Examples
///
/// ```
/// use vardelay_units::Time;
///
/// let coarse_step = Time::from_ps(33.0);
/// let four_taps = coarse_step * 3.0;
/// assert!((four_taps.as_ps() - 99.0).abs() < 1e-9);
/// assert!(Time::from_fs(500.0) < Time::from_ps(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Time(pub(crate) f64);

quantity_ops!(Time);

impl Time {
    /// Creates a time from seconds.
    #[inline]
    pub const fn from_s(s: f64) -> Self {
        Time(s)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: f64) -> Self {
        Time(us * 1e-6)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: f64) -> Self {
        Time(ns * 1e-9)
    }

    /// Creates a time from picoseconds — the suite's working scale.
    #[inline]
    pub const fn from_ps(ps: f64) -> Self {
        Time(ps * 1e-12)
    }

    /// Creates a time from femtoseconds.
    #[inline]
    pub const fn from_fs(fs: f64) -> Self {
        Time(fs * 1e-15)
    }

    /// Returns the time in seconds.
    #[inline]
    pub const fn as_s(self) -> f64 {
        self.0
    }

    /// Returns the time in microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the time in nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the time in picoseconds.
    #[inline]
    pub fn as_ps(self) -> f64 {
        self.0 * 1e12
    }

    /// Returns the time in femtoseconds.
    #[inline]
    pub fn as_fs(self) -> f64 {
        self.0 * 1e15
    }

    /// Rounds toward negative infinity to a multiple of `step`, i.e. the
    /// quantization an ATE timing generator applies to a programmed delay.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use vardelay_units::Time;
    /// // ATE native deskew granularity is ~100 ps.
    /// let q = Time::from_ps(273.0).floor_to(Time::from_ps(100.0));
    /// assert!((q.as_ps() - 200.0).abs() < 1e-9);
    /// ```
    pub fn floor_to(self, step: Time) -> Time {
        assert!(step.0 > 0.0, "quantization step must be positive");
        Time((self.0 / step.0).floor() * step.0)
    }

    /// Rounds to the nearest multiple of `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    pub fn round_to(self, step: Time) -> Time {
        assert!(step.0 > 0.0, "quantization step must be positive");
        Time((self.0 / step.0).round() * step.0)
    }
}

impl core::fmt::Display for Time {
    /// Formats with an auto-selected engineering scale, e.g. `33.000 ps`.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let a = self.0.abs();
        let (value, unit) = if a == 0.0 || (1e-12..1e-9).contains(&a) {
            (self.as_ps(), "ps")
        } else if a < 1e-12 {
            (self.as_fs(), "fs")
        } else if a < 1e-6 {
            (self.as_ns(), "ns")
        } else if a < 1e-3 {
            (self.as_us(), "us")
        } else {
            (self.0, "s")
        };
        write!(f, "{value:.3} {unit}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_round_trips() {
        let t = Time::from_ps(156.25);
        assert!((t.as_ns() - 0.15625).abs() < 1e-12);
        assert!((t.as_fs() - 156_250.0).abs() < 1e-6);
        assert!((Time::from_ns(1.0).as_ps() - 1000.0).abs() < 1e-9);
        assert!((Time::from_us(2.0).as_ns() - 2000.0).abs() < 1e-9);
        assert!((Time::from_s(1e-12).as_ps() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = Time::from_ps(10.0);
        let b = Time::from_ps(3.0);
        assert!(a > b);
        assert!((a - b).as_ps() - 7.0 < 1e-12);
        assert!(((-b).as_ps() + 3.0).abs() < 1e-12);
        let mut c = a;
        c += b;
        assert!((c.as_ps() - 13.0).abs() < 1e-12);
        c -= a;
        assert!((c.as_ps() - 3.0).abs() < 1e-12);
        assert!(((2.0 * a).as_ps() - 20.0).abs() < 1e-12);
        assert!(((a / 4.0).as_ps() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantization() {
        let step = Time::from_ps(100.0);
        assert!((Time::from_ps(399.9).floor_to(step).as_ps() - 300.0).abs() < 1e-9);
        assert!((Time::from_ps(350.1).round_to(step).as_ps() - 400.0).abs() < 1e-9);
        assert!((Time::from_ps(-50.0).floor_to(step).as_ps() + 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn quantization_rejects_zero_step() {
        let _ = Time::from_ps(1.0).floor_to(Time::ZERO);
    }

    #[test]
    fn display_picks_engineering_scale() {
        assert_eq!(format!("{}", Time::from_ps(33.0)), "33.000 ps");
        assert_eq!(format!("{}", Time::from_fs(750.0)), "750.000 fs");
        assert_eq!(format!("{}", Time::from_ns(1.5)), "1.500 ns");
        assert_eq!(format!("{}", Time::ZERO), "0.000 ps");
    }
}
