//! The [`Frequency`] and [`BitRate`] quantities.

use crate::{quantity_ops, Time};

/// A repetition rate in hertz, used for clock signals and filter corners.
///
/// # Examples
///
/// ```
/// use vardelay_units::Frequency;
///
/// let rz_clock = Frequency::from_ghz(6.4);
/// assert!((rz_clock.period().as_ps() - 156.25).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Frequency(pub(crate) f64);

quantity_ops!(Frequency);

impl Frequency {
    /// Creates a frequency from hertz.
    #[inline]
    pub const fn from_hz(hz: f64) -> Self {
        Frequency(hz)
    }

    /// Creates a frequency from megahertz.
    #[inline]
    pub const fn from_mhz(mhz: f64) -> Self {
        Frequency(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    #[inline]
    pub const fn from_ghz(ghz: f64) -> Self {
        Frequency(ghz * 1e9)
    }

    /// Returns the frequency in hertz.
    #[inline]
    pub const fn as_hz(self) -> f64 {
        self.0
    }

    /// Returns the frequency in megahertz.
    #[inline]
    pub fn as_mhz(self) -> f64 {
        self.0 * 1e-6
    }

    /// Returns the frequency in gigahertz.
    #[inline]
    pub fn as_ghz(self) -> f64 {
        self.0 * 1e-9
    }

    /// Returns the period `1/f`.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[inline]
    pub fn period(self) -> Time {
        assert!(self.0 != 0.0, "period of zero frequency is undefined");
        Time::from_s(1.0 / self.0)
    }

    /// Returns the time constant `1/(2*pi*f)` of a one-pole filter whose
    /// −3 dB corner is at this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[inline]
    pub fn one_pole_tau(self) -> Time {
        assert!(
            self.0 != 0.0,
            "time constant of zero frequency is undefined"
        );
        Time::from_s(1.0 / (2.0 * core::f64::consts::PI * self.0))
    }

    /// The NRZ bit rate whose fundamental (101010…) tone is this frequency:
    /// an `f` GHz clock toggles like a `2f` Gb/s NRZ stream. The paper uses
    /// exactly this equivalence when stressing the circuit with RZ clocks
    /// beyond the generator's 7 Gb/s NRZ limit.
    #[inline]
    pub fn equivalent_nrz_rate(self) -> BitRate {
        BitRate(self.0 * 2.0)
    }
}

impl core::fmt::Display for Frequency {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.0.abs() >= 1e9 {
            write!(f, "{:.3} GHz", self.as_ghz())
        } else if self.0.abs() >= 1e6 {
            write!(f, "{:.3} MHz", self.as_mhz())
        } else {
            write!(f, "{:.3} Hz", self.0)
        }
    }
}

/// A serial data rate in bits per second.
///
/// Distinct from [`Frequency`] because an NRZ stream at `r` Gb/s has a
/// fundamental at `r/2` GHz — conflating the two is the most common timing
/// bug in test-bench code.
///
/// # Examples
///
/// ```
/// use vardelay_units::BitRate;
///
/// let rate = BitRate::from_gbps(6.4);
/// assert!((rate.bit_period().as_ps() - 156.25).abs() < 1e-9);
/// assert!((rate.fundamental().as_ghz() - 3.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct BitRate(pub(crate) f64);

quantity_ops!(BitRate);

impl BitRate {
    /// Creates a bit rate from bits per second.
    #[inline]
    pub const fn from_bps(bps: f64) -> Self {
        BitRate(bps)
    }

    /// Creates a bit rate from megabits per second.
    #[inline]
    pub const fn from_mbps(mbps: f64) -> Self {
        BitRate(mbps * 1e6)
    }

    /// Creates a bit rate from gigabits per second.
    #[inline]
    pub const fn from_gbps(gbps: f64) -> Self {
        BitRate(gbps * 1e9)
    }

    /// Returns the rate in bits per second.
    #[inline]
    pub const fn as_bps(self) -> f64 {
        self.0
    }

    /// Returns the rate in gigabits per second.
    #[inline]
    pub fn as_gbps(self) -> f64 {
        self.0 * 1e-9
    }

    /// Returns the unit interval (bit period) `1/r`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    #[inline]
    pub fn bit_period(self) -> Time {
        assert!(self.0 != 0.0, "bit period of zero rate is undefined");
        Time::from_s(1.0 / self.0)
    }

    /// Returns the fundamental frequency of the densest (101010…) NRZ
    /// pattern at this rate, `r/2`.
    #[inline]
    pub fn fundamental(self) -> Frequency {
        Frequency(self.0 / 2.0)
    }
}

impl core::fmt::Display for BitRate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.3} Gb/s", self.as_gbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_and_tau() {
        let f = Frequency::from_ghz(1.0);
        assert!((f.period().as_ps() - 1000.0).abs() < 1e-9);
        // tau = 1/(2*pi*1GHz) ≈ 159.15 ps
        assert!((f.one_pole_tau().as_ps() - 159.154_943).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn zero_frequency_period_panics() {
        let _ = Frequency::ZERO.period();
    }

    #[test]
    fn rz_clock_to_nrz_equivalence() {
        // Paper: a 6.4 GHz RZ clock is "in some ways comparable to a
        // 12.8 Gb/s NRZ rate".
        let eq = Frequency::from_ghz(6.4).equivalent_nrz_rate();
        assert!((eq.as_gbps() - 12.8).abs() < 1e-9);
    }

    #[test]
    fn bit_rate_round_trips() {
        assert!((BitRate::from_mbps(800.0).as_gbps() - 0.8).abs() < 1e-12);
        assert!((BitRate::from_bps(6.4e9).as_gbps() - 6.4).abs() < 1e-12);
        assert!((BitRate::from_gbps(4.8).bit_period().as_ps() - 208.333_333).abs() < 1e-3);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Frequency::from_ghz(6.4)), "6.400 GHz");
        assert_eq!(format!("{}", Frequency::from_mhz(250.0)), "250.000 MHz");
        assert_eq!(format!("{}", BitRate::from_gbps(6.4)), "6.400 Gb/s");
    }
}
