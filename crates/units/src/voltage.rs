//! The [`Voltage`] quantity.

use crate::quantity_ops;

/// An electrical potential or swing, in volts.
///
/// Used for buffer output amplitudes (100–750 mV in the paper's
/// variable-gain buffer), control voltages (`Vctrl`, 0–1.5 V) and noise
/// amplitudes.
///
/// # Examples
///
/// ```
/// use vardelay_units::Voltage;
///
/// let vctrl_span = Voltage::from_v(1.5);
/// let lsb = vctrl_span / 4096.0; // 12-bit DAC
/// assert!(lsb.as_mv() < 0.4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Voltage(pub(crate) f64);

quantity_ops!(Voltage);

impl Voltage {
    /// Creates a voltage from volts.
    #[inline]
    pub const fn from_v(v: f64) -> Self {
        Voltage(v)
    }

    /// Creates a voltage from millivolts.
    #[inline]
    pub const fn from_mv(mv: f64) -> Self {
        Voltage(mv * 1e-3)
    }

    /// Creates a voltage from microvolts.
    #[inline]
    pub const fn from_uv(uv: f64) -> Self {
        Voltage(uv * 1e-6)
    }

    /// Returns the voltage in volts.
    #[inline]
    pub const fn as_v(self) -> f64 {
        self.0
    }

    /// Returns the voltage in millivolts.
    #[inline]
    pub fn as_mv(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the voltage in microvolts.
    #[inline]
    pub fn as_uv(self) -> f64 {
        self.0 * 1e6
    }

    /// Linearly interpolates between `self` and `other` by fraction
    /// `t` (`t = 0` yields `self`, `t = 1` yields `other`). `t` outside
    /// `[0, 1]` extrapolates.
    #[inline]
    pub fn lerp(self, other: Voltage, t: f64) -> Voltage {
        Voltage(self.0 + (other.0 - self.0) * t)
    }
}

impl core::fmt::Display for Voltage {
    /// Formats in millivolts below 1 V and volts above, e.g. `750.0 mV`.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.0.abs() < 1.0 {
            write!(f, "{:.1} mV", self.as_mv())
        } else {
            write!(f, "{:.3} V", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_round_trips() {
        assert!((Voltage::from_mv(750.0).as_v() - 0.75).abs() < 1e-12);
        assert!((Voltage::from_v(1.5).as_mv() - 1500.0).abs() < 1e-9);
        assert!((Voltage::from_uv(500.0).as_mv() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let lo = Voltage::from_mv(100.0);
        let hi = Voltage::from_mv(750.0);
        assert_eq!(lo.lerp(hi, 0.0), lo);
        assert_eq!(lo.lerp(hi, 1.0), hi);
        assert!((lo.lerp(hi, 0.5).as_mv() - 425.0).abs() < 1e-9);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Voltage::from_mv(750.0)), "750.0 mV");
        assert_eq!(format!("{}", Voltage::from_v(1.5)), "1.500 V");
    }
}
