//! Typed physical quantities for the `vardelay` simulation suite.
//!
//! Everything in the suite is measured in picoseconds, millivolts and
//! gigahertz; raw `f64`s invite unit mistakes (the classic "was that ps or
//! ns?"). This crate provides thin, `Copy` newtypes over `f64` SI base units
//! with explicit constructors and accessors per scale:
//!
//! * [`Time`] — an instant or interval, stored in seconds.
//! * [`Voltage`] — stored in volts.
//! * [`Frequency`] — stored in hertz.
//! * [`BitRate`] — stored in bits per second.
//!
//! # Examples
//!
//! ```
//! use vardelay_units::{Time, Voltage, Frequency, BitRate};
//!
//! let bit = BitRate::from_gbps(6.4).bit_period();
//! assert!((bit.as_ps() - 156.25).abs() < 1e-9);
//!
//! let half = bit * 0.5;
//! assert!(half < bit);
//!
//! let swing = Voltage::from_mv(750.0) - Voltage::from_mv(100.0);
//! assert!((swing.as_mv() - 650.0).abs() < 1e-9);
//!
//! let clk = Frequency::from_ghz(6.4);
//! assert!((clk.period().as_ps() - 156.25).abs() < 1e-9);
//! ```

mod frequency;
mod time;
mod voltage;

pub use frequency::{BitRate, Frequency};
pub use time::Time;
pub use voltage::Voltage;

/// Implements arithmetic, ordering helpers, `Display` scaffolding and
/// constructor/accessor pairs shared by all scalar quantity newtypes.
macro_rules! quantity_ops {
    ($ty:ident) => {
        impl $ty {
            /// Returns the quantity whose magnitude is zero.
            pub const ZERO: $ty = $ty(0.0);

            /// Returns the raw magnitude in SI base units.
            #[inline]
            pub const fn as_base(self) -> f64 {
                self.0
            }

            /// Creates a quantity directly from SI base units.
            #[inline]
            pub const fn from_base(value: f64) -> Self {
                $ty(value)
            }

            /// Returns the absolute value of the quantity.
            #[inline]
            pub fn abs(self) -> Self {
                $ty(self.0.abs())
            }

            /// Returns the smaller of two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                $ty(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                $ty(self.0.max(other.0))
            }

            /// Clamps the quantity into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp requires lo <= hi");
                $ty(self.0.clamp(lo.0, hi.0))
            }

            /// Total ordering that sorts NaN last, mirroring
            /// [`f64::total_cmp`].
            #[inline]
            pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }

            /// Returns `true` if the magnitude is finite (not NaN/inf).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl core::ops::Add for $ty {
            type Output = $ty;
            #[inline]
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $ty {
            type Output = $ty;
            #[inline]
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $ty {
            type Output = $ty;
            #[inline]
            fn neg(self) -> $ty {
                $ty(-self.0)
            }
        }

        impl core::ops::Mul<f64> for $ty {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$ty> for f64 {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: $ty) -> $ty {
                $ty(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $ty {
            type Output = $ty;
            #[inline]
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }

        impl core::ops::Div<$ty> for $ty {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $ty) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::ops::AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: $ty) {
                self.0 -= rhs.0;
            }
        }

        impl core::iter::Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                $ty(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $ty> for $ty {
            fn sum<I: Iterator<Item = &'a $ty>>(iter: I) -> $ty {
                $ty(iter.map(|q| q.0).sum())
            }
        }
    };
}

pub(crate) use quantity_ops;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantities_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Time>();
        assert_send_sync::<Voltage>();
        assert_send_sync::<Frequency>();
        assert_send_sync::<BitRate>();
    }

    #[test]
    fn ratio_of_like_quantities_is_dimensionless() {
        let r = Time::from_ps(50.0) / Time::from_ps(25.0);
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Time = (1..=4).map(|i| Time::from_ps(i as f64)).sum();
        assert!((total.as_ps() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_and_min_max() {
        let t = Time::from_ps(200.0);
        assert_eq!(
            t.clamp(Time::from_ps(0.0), Time::from_ps(140.0)),
            Time::from_ps(140.0)
        );
        assert_eq!(t.min(Time::from_ps(10.0)), Time::from_ps(10.0));
        assert_eq!(t.max(Time::from_ps(10.0)), t);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn clamp_panics_on_inverted_bounds() {
        let _ = Time::from_ps(1.0).clamp(Time::from_ps(2.0), Time::from_ps(1.0));
    }
}
