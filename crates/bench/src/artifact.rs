//! Crash-safe artifact writes (DESIGN.md §11) — re-exported from
//! [`vardelay_obs::artifact`].
//!
//! The stage-then-rename protocol and the FNV-1a content digest started
//! life here in PR 4, scoped to repro CSVs and checkpoints. PR 9's
//! serving-durability work (calibration snapshots, the state WAL) needs
//! the same primitives below the bench crate, so the implementation
//! moved to the bottom of the crate graph; these re-exports keep every
//! existing `artifact::write_atomic`/`artifact::digest` call site
//! compiling unchanged.

pub use vardelay_obs::artifact::{digest, sweep_stale_tmp, tmp_path, write_atomic};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_still_matches_the_analog_fingerprint_fold() {
        // PR 4 checkpoints recorded digests computed through
        // `vardelay_analog::Fingerprint::push_str`; the moved
        // implementation must stay byte-compatible or every existing
        // checkpoint silently stops matching on `--resume`.
        for contents in ["", "x,y\n1,2\n", "fig07_delay_vs_vctrl", "\u{00b5}s"] {
            let mut f = vardelay_analog::Fingerprint::new();
            f.push_str(contents);
            assert_eq!(digest(contents), f.finish(), "contents {contents:?}");
        }
    }

    #[test]
    fn write_atomic_round_trips_through_the_re_export() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("vardelay_bench_artifact_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        write_atomic(&path, "a,b\n1,2\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        assert!(!tmp_path(&path).exists());
        std::fs::write(dir.join("dead.csv.tmp"), "torn").unwrap();
        assert_eq!(sweep_stale_tmp(&dir).unwrap(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
