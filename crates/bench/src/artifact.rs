//! Crash-safe artifact writes (DESIGN.md §11).
//!
//! A campaign killed mid-`fs::write` leaves a half-written CSV that is
//! indistinguishable from a complete one — the worst possible failure
//! for a benchmark harness whose outputs are byte-compared across runs.
//! Every repro artifact therefore goes through [`write_atomic`]: the
//! bytes land in a sibling `<file>.tmp` first and are published with a
//! single `rename`, which POSIX guarantees is atomic within a
//! filesystem. A crash leaves either the old complete file, the new
//! complete file, or a stale `.tmp` that the next run sweeps away
//! ([`sweep_stale_tmp`]) — never a torn artifact under the real name.
//!
//! [`digest`] is the FNV-1a content hash checkpoints use to prove an
//! on-disk CSV is exactly the one a finished experiment wrote (same hash
//! family as the PR 1 characterization-cache keys, via
//! [`vardelay_analog::Fingerprint`]).

use std::io;
use std::path::{Path, PathBuf};

use vardelay_analog::Fingerprint;
use vardelay_obs as obs;

/// The sibling temporary path [`write_atomic`] stages into
/// (`fig07.csv` → `fig07.csv.tmp`).
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_owned());
    name.push_str(".tmp");
    path.with_file_name(name)
}

/// Writes `contents` to `path` atomically: stage into [`tmp_path`], then
/// `rename` over the destination. Readers never observe a torn file.
///
/// # Errors
///
/// The underlying I/O error from the staging write or the rename (the
/// staged `.tmp` is cleaned up on a failed rename).
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = tmp_path(path);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// FNV-1a digest of an artifact's contents — the checkpoint format's
/// proof that a CSV on disk is byte-identical to the one recorded.
pub fn digest(contents: &str) -> u64 {
    let mut f = Fingerprint::new();
    f.push_str(contents);
    f.finish()
}

/// Removes every `*.tmp` file under `dir` (recursively), returning how
/// many were swept. A `.tmp` can only exist if a previous run died
/// between staging and renaming — it is garbage by construction, and the
/// acceptance bar is that an interrupted campaign never leaves one
/// behind after the next run. Counted in `repro.stale_tmp_swept`.
///
/// # Errors
///
/// The underlying I/O error from walking `dir` (a missing `dir` is not
/// an error — there is nothing to sweep).
pub fn sweep_stale_tmp(dir: &Path) -> io::Result<usize> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut swept = 0;
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            swept += sweep_stale_tmp(&path)?;
        } else if path.extension().is_some_and(|e| e == "tmp") {
            std::fs::remove_file(&path)?;
            obs::counter("repro.stale_tmp_swept").incr();
            swept += 1;
        }
    }
    Ok(swept)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("vardelay_artifact_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_publishes_and_leaves_no_tmp() {
        let dir = scratch("atomic");
        let path = dir.join("out.csv");
        write_atomic(&path, "a,b\n1,2\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        assert!(!tmp_path(&path).exists(), "staging file renamed away");
        // Overwrite goes through the same protocol.
        write_atomic(&path, "a,b\n3,4\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n3,4\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_removes_only_tmp_files_recursively() {
        let dir = scratch("sweep");
        std::fs::create_dir_all(dir.join("checkpoints")).unwrap();
        std::fs::write(dir.join("keep.csv"), "data").unwrap();
        std::fs::write(dir.join("dead.csv.tmp"), "torn").unwrap();
        std::fs::write(dir.join("checkpoints/ck.json.tmp"), "torn").unwrap();
        assert_eq!(sweep_stale_tmp(&dir).unwrap(), 2);
        assert!(dir.join("keep.csv").exists());
        assert!(!dir.join("dead.csv.tmp").exists());
        assert!(!dir.join("checkpoints/ck.json.tmp").exists());
        // Missing directory sweeps nothing.
        assert_eq!(sweep_stale_tmp(&dir.join("absent")).unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn digest_is_content_stable_and_sensitive() {
        assert_eq!(digest("x,y\n1,2\n"), digest("x,y\n1,2\n"));
        assert_ne!(digest("x,y\n1,2\n"), digest("x,y\n1,3\n"));
    }
}
