//! `repro` — regenerates every table and figure of the paper's evaluation
//! from the behavioral model and prints the same rows/series the paper
//! reports. CSVs are written under `target/repro/` **atomically** (staged
//! as `<file>.tmp`, then renamed — a kill mid-run never leaves a torn
//! CSV); every run appends one record to the `BENCH_repro.json` journal
//! (JSONL, append-only under an advisory lock — a single-figure run never
//! clobbers the record of a full `all` run, and two concurrent repro
//! processes cannot interleave a line).
//!
//! Usage:
//!
//! ```text
//! repro [all|<name>[,<name>...]] [--resume]
//!   names: fig1 fig2 fig7 fig9 fig12 fig13 fig14 fig15 fig16 fig17
//!          table1 ablation extensions faults
//! repro compare [all|serve-bench|fairness|hotpath|soak|restart|backends]
//!                 # regression gate: diff the latest two valid `all`
//!                 # journal records, exit non-zero on >10 % wall-clock
//!                 # regression (exit 2 when <2 valid records remain);
//!                 # with no target, also gates the latest two
//!                 # serve-bench records when the journal has them, the
//!                 # multi-tenant fairness/p99.9 gate once two
//!                 # serve-bench-mt records exist, and the hot-path
//!                 # dimensions (per-request p99 solve time,
//!                 # allocations per request) once two instrumented
//!                 # `all` records exist
//! repro serve     # the delay-control server (DESIGN.md §12): listens
//!                 # on VARDELAY_SERVE_ADDR until a wire `shutdown`,
//!                 # then drains and appends a serve-drain record
//! repro serve-bench [mt]
//!                 # seeded open-loop load generator; appends a
//!                 # serve-bench latency/throughput journal record.
//!                 # `mt` runs the multi-tenant campaign instead (16
//!                 # tenants × 2 clients, per-tenant throughput and
//!                 # max/min fairness ratio, p99.9) and appends a
//!                 # serve-bench-mt record; VARDELAY_BENCH_HOT_TENANT=N
//!                 # injects a 10× hot tenant for the starved-tenant
//!                 # gate check
//! repro soak      # the self-healing chaos campaign (DESIGN.md §15):
//!                 # drift incidents + network chaos against a live
//!                 # server under load; measures detection latency,
//!                 # MTTR, and healthy-channel availability and appends
//!                 # a `soak` record for `repro compare soak`.
//!                 # VARDELAY_FAULTS=0 masks the injection (quiet run,
//!                 # no record); VARDELAY_SERVE_RECAL=0 sabotages
//!                 # healing so the gate's red leg is provable
//! repro restart   # the durable-serving campaign (DESIGN.md §16):
//!                 # cold boot → program delays with retry ids →
//!                 # crash-shaped stop → warm boot on the same state
//!                 # directory; measures cold/warm start, banks
//!                 # restored, WAL records replayed, and byte-level
//!                 # replay divergence, and appends a `restart` record
//!                 # for `repro compare restart`. With faults armed it
//!                 # also corrupts a snapshot and requires the refused
//!                 # bank to recalibrate
//! repro backends  # the cross-backend campaign (DESIGN.md §17): every
//!                 # DelayBackend kind (circuit, vernier, dll) measured
//!                 # against its advertised contract — resolution,
//!                 # range, monotonicity, dead time, one-LSB solves —
//!                 # plus a deskew-under-faults leg per backend; writes
//!                 # backends_compare.csv and appends a `backends`
//!                 # record for `repro compare backends`
//! ```
//!
//! After each experiment a checkpoint (input fingerprint + CSV digests)
//! lands under `target/repro/checkpoints/`; `--resume` skips experiments
//! whose checkpoint still matches, so a killed campaign continues from
//! where it died with byte-identical final CSVs (DESIGN.md §11).
//!
//! `repro faults` runs the fault-injection campaign (DESIGN.md §10): every
//! fault class from `vardelay-faults` is injected and the run fails
//! (exit 1) unless each one is detected by the self-test or the degraded
//! deskew loop.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use vardelay_analog::{characterization_cache_stats, characterization_single_flight_waits};
use vardelay_ate::report::{deskew_summary, deskew_table};
use vardelay_bench::checkpoint::{checkpoint_dir, Checkpoint, CsvRecord};
use vardelay_bench::{
    ablation, artifact, backends_campaign, checkpoint, eyes, faults_campaign, fine_delay,
    injection, serve_bench, skew, try_output_dir,
};
use vardelay_measure::report::fmt_ps;
use vardelay_measure::{Series, Table};
use vardelay_obs as obs;
use vardelay_obs::journal;
use vardelay_obs::json::Value;
use vardelay_runner::{Deadline, Runner};

/// The append-only benchmark journal at the repository root (see
/// EXPERIMENTS.md §Runtime for the record schema).
const JOURNAL_PATH: &str = "BENCH_repro.json";

/// Name of the experiment currently running, so a failed write can say
/// which experiment's output was lost.
static CURRENT_EXPERIMENT: Mutex<String> = Mutex::new(String::new());
/// Human-readable descriptions of every failed write.
static SAVE_FAILURES: Mutex<Vec<String>> = Mutex::new(Vec::new());
/// Total CSV data points written (the repro throughput denominator).
static CSV_POINTS: AtomicUsize = AtomicUsize::new(0);
/// Total CSV files written (journal accounting; tracked outside the obs
/// registry so the record stays correct with `VARDELAY_OBS=0`).
static CSV_FILES: AtomicUsize = AtomicUsize::new(0);
/// (file name, content digest) of every CSV the *currently running*
/// experiment wrote — drained into that experiment's checkpoint.
static CSV_DIGESTS: Mutex<Vec<(String, u64)>> = Mutex::new(Vec::new());

// The experiment-name and failure-list locks are only ever held around
// trivial reads/pushes, but a panicking experiment (the whole point of the
// fault campaign) can still poison them — recover the data instead of
// compounding the panic, since a poisoned diagnostics list is still a
// valid diagnostics list.
fn set_current_experiment(name: &str) {
    name.clone_into(
        &mut CURRENT_EXPERIMENT
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
}

fn current_experiment() -> String {
    CURRENT_EXPERIMENT
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Records a diagnostic that must turn the run's exit status red, without
/// aborting the remaining experiments.
fn record_save_failure(failure: String) {
    eprintln!("repro: {failure}");
    SAVE_FAILURES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(failure);
}

fn save_csv(name: &str, csv: &str) {
    let experiment = current_experiment();
    let result = try_output_dir().and_then(|dir| {
        let path = dir.join(format!("{name}.csv"));
        // Staged-then-renamed: a kill at any instant leaves either the
        // complete old file, the complete new file, or a stale `.tmp`
        // the next run sweeps — never a torn CSV (DESIGN.md §11).
        artifact::write_atomic(&path, csv).map(|()| path)
    });
    match result {
        Ok(path) => {
            CSV_POINTS.fetch_add(csv.lines().count().saturating_sub(1), Ordering::Relaxed);
            CSV_FILES.fetch_add(1, Ordering::Relaxed);
            CSV_DIGESTS
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push((format!("{name}.csv"), artifact::digest(csv)));
            obs::counter("repro.csv_files").incr();
            obs::counter("repro.csv_bytes").add(csv.len() as u64);
            println!("  [csv: {}]", path.display());
        }
        Err(e) => {
            record_save_failure(format!(
                "experiment {experiment}: could not save {name}.csv under target/repro: {e}"
            ));
        }
    }
}

/// Drains the CSV records accumulated since the last drain (i.e. the
/// current experiment's outputs).
fn drain_csv_digests() -> Vec<CsvRecord> {
    CSV_DIGESTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .drain(..)
        .map(|(file, digest)| CsvRecord { file, digest })
        .collect()
}

fn save_series(name: &str, series: &Series) {
    save_csv(name, &series.to_csv());
}

fn save_table(name: &str, table: &Table) {
    save_csv(name, &table.to_csv());
}

fn series_table(title: &str, series: &[&Series]) -> Table {
    let first = series.first().expect("at least one series");
    // Series swept over different grids used to index everything with the
    // first one's length and panic mid-run; validate up front, record a
    // red-exit diagnostic, and render the common prefix instead.
    let rows = series.iter().map(|s| s.len()).min().unwrap_or(0);
    if series.iter().any(|s| s.len() != rows) {
        let lengths = series
            .iter()
            .map(|s| format!("{} has {} points", s.label, s.len()))
            .collect::<Vec<_>>()
            .join("; ");
        record_save_failure(format!(
            "experiment {}: series lengths differ in table {title:?} ({lengths}); \
             truncated to the common {rows} rows",
            current_experiment()
        ));
    }
    let mut headers = vec![first.x_label.as_str()];
    headers.extend(series.iter().map(|s| s.label.as_str()));
    let mut table = Table::new(title, &headers);
    for i in 0..rows {
        let mut row = vec![format!("{:.3}", first.xs[i])];
        for s in series {
            row.push(format!("{:.2}", s.ys[i]));
        }
        table.push_owned_row(row);
    }
    table
}

fn fig7() {
    println!("\n### Fig. 7 — fine delay vs Vctrl (4-stage)");
    let series = fine_delay::fig7_delay_vs_vctrl(31);
    let summary = fine_delay::fig7_summary(&series);
    println!("{}", series_table("Delay vs control voltage", &[&series]));
    println!(
        "range = {} (paper ~56 ps); mid slope = {:.1} ps/V; mid R^2 = {:.4}",
        summary.range, summary.mid_slope_ps_per_v, summary.mid_r_squared
    );
    save_series("fig07_delay_vs_vctrl", &series);
}

fn fig9() {
    println!("\n### Fig. 9 — coarse tap delays");
    let taps = fine_delay::fig9_coarse_taps();
    let mut table = Table::new(
        "Coarse taps (paper measured 0/33/70/95 ps)",
        &["tap", "designed_ps", "measured_ps", "deviation_ps"],
    );
    for t in &taps {
        table.push_owned_row(vec![
            t.tap.to_string(),
            fmt_ps(t.designed),
            fmt_ps(t.measured),
            fmt_ps(t.measured - t.designed),
        ]);
    }
    println!("{table}");
    save_table("fig09_coarse_taps", &table);
}

fn eye_result(r: &eyes::EyeExperimentResult, paper: &str) {
    println!("{}", r.label);
    println!(
        "  fine range = {}, TJ in = {}, TJ out = {}, added = {}",
        r.fine_range, r.input_tj, r.output_tj, r.added_tj
    );
    println!("  paper: {paper}");
}

/// The eye/TJ summary CSV for Figs. 12–14 (EXPERIMENTS.md promises every
/// experiment lands CSVs in `target/repro/`).
fn eye_summary_table(r: &eyes::EyeExperimentResult) -> Table {
    let mut table = Table::new(&r.label, &["metric", "ps"]);
    for (metric, value) in [
        ("fine_range_ps", r.fine_range),
        ("input_tj_ps", r.input_tj),
        ("output_tj_ps", r.output_tj),
        ("added_tj_ps", r.added_tj),
    ] {
        table.push_owned_row(vec![metric.to_owned(), format!("{:.3}", value.as_ps())]);
    }
    table
}

fn fig12() {
    println!("\n### Fig. 12 — 4.8 Gb/s eye");
    let r = eyes::fig12_eye_4g8(8000);
    eye_result(&r, "fine range 49.5 ps, TJ out 18.5 ps (~+7 ps)");
    save_table("fig12_eye_summary", &eye_summary_table(&r));
}

fn fig13() {
    println!("\n### Fig. 13 — 6.4 Gb/s eye through combined circuit");
    let r = eyes::fig13_eye_6g4(8000);
    eye_result(&r, "TJ in 26 ps -> TJ out 39 ps (+13 ps)");
    save_table("fig13_eye_summary", &eye_summary_table(&r));
}

fn fig14() {
    println!("\n### Fig. 14 — 6.4 GHz RZ clock");
    let r = eyes::fig14_rz_6g4(8000);
    eye_result(&r, "fine range 23.5 ps, TJ 10.5 ps");
    save_table("fig14_eye_summary", &eye_summary_table(&r));
}

fn fig15() {
    println!("\n### Fig. 15 — delay range vs clock frequency");
    let freqs = fine_delay::fig15_default_freqs();
    let (s4, s2) = fine_delay::fig15_range_vs_frequency(&freqs);
    println!(
        "{}",
        series_table("Fine range vs RZ clock frequency (GHz)", &[&s4, &s2])
    );
    println!("paper: 4-stage usable beyond 6.4 GHz; 2-stage ineffective past ~6 GHz");
    save_series("fig15_range_4stage", &s4);
    save_series("fig15_range_2stage", &s2);
}

fn fig16() {
    println!("\n### Fig. 16 — jitter injection at 3.2 Gb/s");
    let r = injection::fig16_injection(8000);
    println!(
        "reference TJ = {}, baseline out TJ = {}, with {} noise TJ = {}",
        r.reference_tj, r.baseline_tj, r.noise_vpp, r.injected_tj
    );
    println!("paper: reference 8 ps -> 69 ps with 900 mVpp noise");
    let mut table = Table::new("Fig.16 jitter injection at 3.2 Gb/s", &["metric", "value"]);
    for (metric, value) in [
        ("reference_tj_ps", r.reference_tj.as_ps()),
        ("baseline_tj_ps", r.baseline_tj.as_ps()),
        ("injected_tj_ps", r.injected_tj.as_ps()),
        ("noise_vpp_mv", r.noise_vpp.as_v() * 1e3),
    ] {
        table.push_owned_row(vec![metric.to_owned(), format!("{value:.3}")]);
    }
    save_table("fig16_injection_summary", &table);
}

fn fig17() {
    println!("\n### Fig. 17 — added jitter vs noise amplitude");
    let series = injection::fig17_injection_sweep(6000, 11);
    println!("{}", series_table("Added jitter vs noise Vpp", &[&series]));
    println!("paper: approximately linear, ~40 ps added at 0.9 Vpp");
    save_series("fig17_injection_sweep", &series);
}

fn fig2() {
    println!("\n### Fig. 2 — parallel-bus deskew (4 x 6.4 Gb/s)");
    let outcome = skew::fig2_deskew(4);
    let table = deskew_table(&outcome);
    println!("{table}");
    println!("{}", deskew_summary(&outcome));
    save_table("fig02_deskew", &table);
}

fn fig1() {
    println!("\n### Fig. 1 — clock-to-data-eye alignment");
    let r = skew::fig1_eye_alignment();
    println!(
        "receiver scan across one UI ({}): best sampling phase = {} ({:.2} UI)",
        r.ui,
        r.best_phase,
        r.best_phase / r.ui
    );
    save_series("fig01_eye_scan", &r.scan);
}

fn table1() {
    println!("\n### Table 1 — application requirements (paper Section 1)");
    let t = fine_delay::table1_requirements();
    let mut table = Table::new(
        "Requirements check",
        &["requirement", "paper_target", "measured", "met"],
    );
    let rows = [
        (
            "setting resolution",
            "<= 1 ps",
            format!("{}", t.setting_resolution),
            t.setting_resolution.as_ps() <= 1.0,
        ),
        (
            "total range",
            ">= 120 ps",
            format!("{}", t.total_range),
            t.total_range.as_ps() >= 120.0,
        ),
        (
            "fine range @ 6.4 Gb/s covers 33 ps coarse step",
            "> 33 ps",
            format!("{}", t.fine_range_at_6g4),
            t.fine_range_at_6g4.as_ps() > 33.0,
        ),
    ];
    for (req, target, measured, met) in rows {
        table.push_owned_row(vec![
            req.to_owned(),
            target.to_owned(),
            measured,
            if met { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    println!("{table}");
    save_table("table1_requirements", &table);
}

fn ablation_report() {
    println!("\n### Ablation A1 — stage count and architecture");
    let rows = ablation::stage_count_ablation(6, 4000);
    let mut table = Table::new(
        "Stage-count ablation",
        &["stages", "dc_range_ps", "range@6.4GHz_ps", "added_tj_ps"],
    );
    for r in &rows {
        table.push_owned_row(vec![
            r.stages.to_string(),
            fmt_ps(r.dc_range),
            fmt_ps(r.range_at_6g4),
            fmt_ps(r.added_tj),
        ]);
    }
    println!("{table}");
    save_table("ablation_stages", &table);

    let cmp = ablation::architecture_comparison(4000);
    println!(
        "coarse+fine added TJ = {} vs all-fine (8-stage) = {} (range {})",
        cmp.coarse_plus_fine_tj, cmp.all_fine_tj, cmp.all_fine_range
    );
    println!("paper Section 3: the coarse mux avoids the extra cascade's jitter");

    let ctrl = ablation::control_strategy_ablation();
    println!(
        "control strategy: common Vctrl range {} / INL {} vs staggered per-stage range {} / INL {}",
        ctrl.common_range, ctrl.common_inl, ctrl.staggered_range, ctrl.staggered_inl
    );
    println!("the paper's common control trades linearity for range and simplicity");
}

fn extensions() {
    use vardelay_bench::extensions;
    println!("\n### Extensions (beyond the paper's figures)");
    let x1 = extensions::x1_multichannel();
    println!(
        "X1 4-channel unit: shared-cal accuracy {} pk-pk, per-channel {} pk-pk, common range {}",
        x1.shared_accuracy, x1.per_channel_accuracy, x1.common_range
    );
    let x2 = extensions::x2_tolerance();
    match x2.max_tolerated {
        Some(t) => println!("X2 jitter tolerance: receiver tolerates up to {t} of injected TJ"),
        None => println!("X2 jitter tolerance: receiver failed without stress"),
    }
    let x3 = extensions::x3_drift();
    println!(
        "X3 temperature drift: fine range {} at cal temp -> {} at +40 K (recalibration restores sub-ps accuracy)",
        x3.cold_range, x3.hot_range
    );
    let b1 = extensions::b1_baseline_comparison(400);
    println!(
        "B1 baseline: eye height {:.0} mV in -> vardelay {:.0} mV vs clock-phase interpolator {:.0} mV \
         (interpolator clock-delay error only {})",
        b1.input_height * 1e3,
        b1.vardelay_height * 1e3,
        b1.interpolator_height * 1e3,
        b1.interpolator_clock_error
    );
    let x4 = extensions::x4_coded_traffic(6000);
    println!(
        "X4 8b/10b traffic: output TJ {} (PRBS7: {}) — line coding is handled transparently",
        x4.coded_tj, x4.prbs_tj
    );
}

fn faults() {
    println!("\n### Faults — injected-fault detection campaign (DESIGN.md \u{a7}10)");
    let campaign = faults_campaign::faults_campaign();
    if !campaign.injection_enabled {
        println!("{}", campaign.summary());
        return;
    }
    let table = campaign.table();
    println!("{table}");
    println!("{}", campaign.summary());
    save_table("faults_campaign", &table);
    if campaign.detected() < campaign.expected() || !campaign.degraded_all_ok() {
        record_save_failure(format!(
            "experiment faults: campaign below expectations — {}",
            campaign.summary()
        ));
    }
}

/// Best-effort `git describe` so journal records are attributable to a
/// commit; falls back to `"unknown"` outside a git checkout.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Appends this run's record to the `BENCH_repro.json` journal (one
/// JSONL line per run — **append**, never overwrite, so a single-figure
/// run cannot clobber the trajectory of full `all` runs) and writes the
/// same record to `target/repro/BENCH_repro_last.json` for consumers
/// that only want the latest run.
///
/// A run that produced **no CSV output at all** (a skipped campaign —
/// e.g. `repro faults` under `VARDELAY_FAULTS=0` — or a `--resume` run
/// where every checkpoint matched) appends nothing: a zero-point record
/// carries no measurement and would only pollute the time series. A
/// `--resume` run that skipped *some* experiments is recorded with
/// `resumed: true` so `repro compare` knows not to use its partial wall
/// clock as a baseline.
fn write_runtime_record(arg: &str, wall_s: f64, timings: &[(String, f64)], resume_skips: usize) {
    let points = CSV_POINTS.load(Ordering::Relaxed);
    let files = CSV_FILES.load(Ordering::Relaxed);
    let (hits, misses) = characterization_cache_stats();
    let waits = characterization_single_flight_waits();
    let (solve_hits, solve_misses) = vardelay_core::solve_cache_stats();
    println!(
        "\nruntime: {wall_s:.2} s on {} thread(s), {points} CSV points in {files} files, \
         cache {hits} hits / {misses} misses / {waits} single-flight waits, \
         solve cache {solve_hits} hits / {solve_misses} misses \
         [journal: {JOURNAL_PATH}]",
        Runner::global().threads()
    );
    if points == 0 && files == 0 {
        println!("repro: no CSV output this run; zero-point journal append skipped");
    } else {
        let mut per_experiment = Value::obj();
        for (name, s) in timings {
            per_experiment = per_experiment.with(name, (s * 1000.0).round() / 1000.0);
        }
        let mut record = Value::obj()
            .with("schema", journal::SCHEMA_VERSION)
            .with("experiments", arg)
            .with("threads", Runner::global().threads())
            .with("git", git_describe())
            .with("unix_ms", unix_ms())
            .with("wall_s", (wall_s * 1000.0).round() / 1000.0)
            .with("csv_files", files)
            .with("csv_points", points)
            .with(
                "points_per_s",
                if wall_s > 0.0 {
                    ((points as f64 / wall_s) * 1000.0).round() / 1000.0
                } else {
                    0.0
                },
            )
            .with("cache_hits", hits)
            .with("cache_misses", misses)
            .with("single_flight_waits", waits)
            .with("solve_hits", solve_hits)
            .with("solve_misses", solve_misses)
            .with("solve_fallbacks", vardelay_core::solve_fallbacks());
        // The hot-path dimensions (per-request p99 solve time and
        // allocations per solve request) come from the obs registry, so
        // a `VARDELAY_OBS=0` run simply omits them — the hotpath compare
        // gate skips uninstrumented records.
        let solve = obs::histogram("core.solve_us").summary();
        if solve.count > 0 {
            let allocs = obs::counter("waveform.pool_allocs").get();
            record = record.with("solve_p99_us", solve.p99).with(
                "allocs_per_request",
                ((allocs as f64 / solve.count as f64) * 1000.0).round() / 1000.0,
            );
            println!(
                "hotpath: {} solve(s), p99 {} \u{00b5}s, {:.1} allocs/request \
                 ({} pool reuses)",
                solve.count,
                solve.p99,
                allocs as f64 / solve.count as f64,
                obs::counter("waveform.pool_reuses").get()
            );
        }
        if resume_skips > 0 {
            record = record
                .with("resumed", true)
                .with("resume_skips", resume_skips);
        }
        record = record.with("per_experiment_s", per_experiment);
        if let Err(e) = journal::append(Path::new(JOURNAL_PATH), &record) {
            eprintln!("repro: could not append to {JOURNAL_PATH}: {e}");
        }
        if let Ok(dir) = try_output_dir() {
            let last = dir.join("BENCH_repro_last.json");
            if let Err(e) = artifact::write_atomic(&last, &(record.render() + "\n")) {
                eprintln!("repro: could not write {}: {e}", last.display());
            }
        }
    }
    if obs::enabled() {
        println!(
            "\n--- metrics ({}) ---\n{}",
            "vardelay-obs",
            obs::snapshot()
        );
    }
}

/// `repro compare` — the regression gate: diffs the latest two `all`
/// records in the journal and fails (exit 1) when the newer wall clock
/// regressed by more than [`journal::DEFAULT_THRESHOLD`]. Exit 2 when
/// there are not yet two comparable records.
fn run_compare(target: Option<&str>) -> ! {
    let records = match journal::load(Path::new(JOURNAL_PATH)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("repro compare: {e}");
            std::process::exit(2);
        }
    };
    match target {
        None => {
            // Default gate: the `all` wall clock, plus the serving SLO
            // whenever the journal holds two serve-bench records. A
            // journal with fewer serve records is not an error — serving
            // may simply never have been benchmarked on this checkout.
            let mut regressed = false;
            match journal::compare_latest(&records, "all", journal::DEFAULT_THRESHOLD) {
                Ok(cmp) => {
                    println!("repro compare: {cmp}");
                    regressed |= cmp.regressed;
                }
                Err(e) => {
                    eprintln!("repro compare: {e}");
                    std::process::exit(2);
                }
            }
            match journal::compare_latest_serve(&records, journal::SERVE_THRESHOLD) {
                Ok(cmp) => {
                    println!("repro compare: {cmp}");
                    regressed |= cmp.regressed;
                }
                Err(journal::CompareError::TooFewRecords { .. }) => {}
                Err(e) => {
                    eprintln!("repro compare: {e}");
                    std::process::exit(2);
                }
            }
            // The multi-tenant fairness gate arms itself once two
            // serve-bench-mt records exist.
            match journal::compare_latest_fairness(
                &records,
                journal::SERVE_THRESHOLD,
                journal::FAIRNESS_THRESHOLD,
            ) {
                Ok(cmp) => {
                    println!("repro compare: {cmp}");
                    regressed |= cmp.regressed;
                }
                Err(journal::CompareError::TooFewRecords { .. }) => {}
                Err(e) => {
                    eprintln!("repro compare: {e}");
                    std::process::exit(2);
                }
            }
            // The hot-path gate (solve p99, allocations per request)
            // arms itself once two instrumented `all` records exist;
            // journals written before the fast path landed (or with
            // VARDELAY_OBS=0) are simply not gated yet.
            match journal::compare_latest_hotpath(
                &records,
                journal::SOLVE_THRESHOLD,
                journal::DEFAULT_THRESHOLD,
            ) {
                Ok(cmp) => {
                    println!("repro compare: {cmp}");
                    regressed |= cmp.regressed;
                }
                Err(journal::CompareError::TooFewRecords { .. }) => {}
                Err(e) => {
                    eprintln!("repro compare: {e}");
                    std::process::exit(2);
                }
            }
            // The self-healing gate arms itself once two soak records
            // exist.
            match journal::compare_latest_soak(
                &records,
                journal::SOAK_MTTR_THRESHOLD,
                journal::SOAK_AVAILABILITY_FLOOR,
            ) {
                Ok(cmp) => {
                    println!("repro compare: {cmp}");
                    regressed |= cmp.regressed;
                }
                Err(journal::CompareError::TooFewRecords { .. }) => {}
                Err(e) => {
                    eprintln!("repro compare: {e}");
                    std::process::exit(2);
                }
            }
            // The durable-restart gate arms itself once two restart
            // records exist.
            match journal::compare_latest_restart(&records, journal::RESTART_THRESHOLD) {
                Ok(cmp) => {
                    println!("repro compare: {cmp}");
                    regressed |= cmp.regressed;
                }
                Err(journal::CompareError::TooFewRecords { .. }) => {}
                Err(e) => {
                    eprintln!("repro compare: {e}");
                    std::process::exit(2);
                }
            }
            // The cross-backend contract gate is absolute and arms
            // itself on the first backends record.
            match journal::compare_latest_backends(&records) {
                Ok(cmp) => {
                    println!("repro compare: {cmp}");
                    regressed |= cmp.regressed;
                }
                Err(journal::CompareError::TooFewRecords { .. }) => {}
                Err(e) => {
                    eprintln!("repro compare: {e}");
                    std::process::exit(2);
                }
            }
            std::process::exit(i32::from(regressed));
        }
        Some("all") => match journal::compare_latest(&records, "all", journal::DEFAULT_THRESHOLD) {
            Ok(cmp) => {
                println!("repro compare: {cmp}");
                std::process::exit(i32::from(cmp.regressed));
            }
            Err(e) => {
                eprintln!("repro compare: {e}");
                std::process::exit(2);
            }
        },
        Some("serve-bench") => {
            match journal::compare_latest_serve(&records, journal::SERVE_THRESHOLD) {
                Ok(cmp) => {
                    println!("repro compare: {cmp}");
                    std::process::exit(i32::from(cmp.regressed));
                }
                Err(e) => {
                    eprintln!("repro compare: {e}");
                    std::process::exit(2);
                }
            }
        }
        Some("fairness") => {
            match journal::compare_latest_fairness(
                &records,
                journal::SERVE_THRESHOLD,
                journal::FAIRNESS_THRESHOLD,
            ) {
                Ok(cmp) => {
                    println!("repro compare: {cmp}");
                    std::process::exit(i32::from(cmp.regressed));
                }
                Err(e) => {
                    eprintln!("repro compare: {e}");
                    std::process::exit(2);
                }
            }
        }
        Some("hotpath") => {
            match journal::compare_latest_hotpath(
                &records,
                journal::SOLVE_THRESHOLD,
                journal::DEFAULT_THRESHOLD,
            ) {
                Ok(cmp) => {
                    println!("repro compare: {cmp}");
                    std::process::exit(i32::from(cmp.regressed));
                }
                Err(e) => {
                    eprintln!("repro compare: {e}");
                    std::process::exit(2);
                }
            }
        }
        Some("soak") => {
            match journal::compare_latest_soak(
                &records,
                journal::SOAK_MTTR_THRESHOLD,
                journal::SOAK_AVAILABILITY_FLOOR,
            ) {
                Ok(cmp) => {
                    println!("repro compare: {cmp}");
                    std::process::exit(i32::from(cmp.regressed));
                }
                Err(e) => {
                    eprintln!("repro compare: {e}");
                    std::process::exit(2);
                }
            }
        }
        Some("restart") => {
            match journal::compare_latest_restart(&records, journal::RESTART_THRESHOLD) {
                Ok(cmp) => {
                    println!("repro compare: {cmp}");
                    std::process::exit(i32::from(cmp.regressed));
                }
                Err(e) => {
                    eprintln!("repro compare: {e}");
                    std::process::exit(2);
                }
            }
        }
        Some("backends") => match journal::compare_latest_backends(&records) {
            Ok(cmp) => {
                println!("repro compare: {cmp}");
                std::process::exit(i32::from(cmp.regressed));
            }
            Err(e) => {
                eprintln!("repro compare: {e}");
                std::process::exit(2);
            }
        },
        Some(other) => {
            eprintln!(
                "repro compare: unknown target {other:?} (expected \"all\", \"serve-bench\", \
                 \"fairness\", \"hotpath\", \"soak\", \"restart\" or \"backends\")"
            );
            std::process::exit(2);
        }
    }
}

/// `repro serve` — runs the standalone delay-control server until a
/// wire `shutdown` request arrives, then drains gracefully and appends
/// a `serve-drain` record to the journal (so the CI smoke job can
/// assert the drain flushed its counters).
fn run_serve() -> ! {
    let config = vardelay_serve::ServeConfig::from_env();
    let handle = match vardelay_serve::serve(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("repro serve: {e}");
            std::process::exit(2);
        }
    };
    println!("repro serve: listening on {}", handle.addr());
    let report = handle.join();
    println!("repro serve: {report}");
    let record = Value::obj()
        .with("schema", journal::SCHEMA_VERSION)
        .with("experiments", "serve-drain")
        .with("git", git_describe())
        .with("unix_ms", unix_ms())
        .with("requests", report.stats.requests)
        .with("ok", report.stats.ok)
        .with("parse_errors", report.stats.parse_errors)
        .with("bad_requests", report.stats.bad_requests)
        .with("overloaded", report.stats.overloaded)
        .with("deadline_exceeded", report.stats.deadline_exceeded)
        .with("internal_errors", report.stats.internal_errors)
        .with("batched", report.stats.batched);
    if let Err(e) = journal::append(Path::new(JOURNAL_PATH), &record) {
        eprintln!("repro serve: could not append to {JOURNAL_PATH}: {e}");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `repro serve-bench [mt]` — the serving-SLO benchmarks. With
/// `VARDELAY_SERVE_ADDR` set, drives the server already listening
/// there; otherwise spins up an in-process server on an ephemeral port
/// (sharded per `VARDELAY_SERVE_SHARDS`, default 4, for the `mt`
/// campaign), drives it, and drains it. The single-tenant run appends a
/// `serve-bench` record; `mt` runs the seeded multi-tenant campaign and
/// appends a `serve-bench-mt` record for the fairness gate.
fn run_serve_bench(mode: Option<&str>) -> ! {
    let mt = match mode {
        None => false,
        Some("mt") => true,
        Some(other) => {
            eprintln!("repro serve-bench: unknown mode {other:?} (expected \"mt\" or nothing)");
            std::process::exit(2);
        }
    };
    let drive = |addr: std::net::SocketAddr| -> std::io::Result<(String, Value)> {
        if mt {
            let config = serve_bench::MtLoadConfig::from_env();
            if let Some(hot) = config.hot_tenant {
                println!(
                    "repro serve-bench: hot-tenant injection on tenant {hot} \
                     (VARDELAY_BENCH_HOT_TENANT)"
                );
            }
            serve_bench::run_mt_load(addr, &config)
                .map(|report| (report.summary(), report.record(&git_describe(), unix_ms())))
        } else {
            let config = serve_bench::LoadConfig::default();
            serve_bench::run_load(addr, &config)
                .map(|report| (report.summary(), report.record(&git_describe(), unix_ms())))
        }
    };
    let external = std::env::var("VARDELAY_SERVE_ADDR")
        .ok()
        .filter(|a| !a.trim().is_empty());
    let result = match external {
        Some(addr) => {
            let addr: std::net::SocketAddr = match addr.parse() {
                Ok(addr) => addr,
                Err(e) => {
                    eprintln!("repro serve-bench: bad VARDELAY_SERVE_ADDR {addr:?}: {e}");
                    std::process::exit(2);
                }
            };
            println!("repro serve-bench: driving external server at {addr}");
            drive(addr)
        }
        None => {
            let mut config = vardelay_serve::ServeConfig::in_process();
            if mt {
                // The mt campaign exists to exercise the sharded path:
                // default to the standalone shard count unless pinned.
                config.shards = std::env::var("VARDELAY_SERVE_SHARDS")
                    .ok()
                    .and_then(|raw| raw.trim().parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or(4);
            }
            let handle = match vardelay_serve::serve(config) {
                Ok(handle) => handle,
                Err(e) => {
                    eprintln!("repro serve-bench: {e}");
                    std::process::exit(2);
                }
            };
            println!(
                "repro serve-bench: in-process server on {} (set VARDELAY_SERVE_ADDR to \
                 drive an external one)",
                handle.addr()
            );
            let result = drive(handle.addr());
            handle.shutdown();
            let drained = handle.join();
            println!("repro serve-bench: {drained}");
            result
        }
    };
    let (summary, record) = match result {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("repro serve-bench: load generator failed: {e}");
            std::process::exit(2);
        }
    };
    println!("{summary}");
    if let Err(e) = journal::append(Path::new(JOURNAL_PATH), &record) {
        eprintln!("repro serve-bench: could not append to {JOURNAL_PATH}: {e}");
        std::process::exit(1);
    }
    println!("repro serve-bench: record appended [journal: {JOURNAL_PATH}]");
    std::process::exit(0);
}

/// `repro soak` — the self-healing chaos campaign (DESIGN.md §15).
/// Runs drift incidents and network chaos against a live in-process
/// server under seeded load, then appends a `soak` journal record with
/// the measured detection latency, MTTR, and healthy-channel
/// availability for `repro compare soak`. A faults-masked run
/// (`VARDELAY_FAULTS=0`) soaks load only and appends **no** record — a
/// campaign that injected nothing has no healing measurement, and a
/// zero-point record would only pollute the MTTR trajectory.
fn run_soak() -> ! {
    let config = vardelay_bench::soak::SoakConfig::from_env();
    let report = match vardelay_bench::soak::run_soak(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("repro soak: campaign failed: {e}");
            std::process::exit(2);
        }
    };
    println!("{}", report.summary());
    if !report.faults_enabled {
        println!(
            "repro soak: fault injection masked (VARDELAY_FAULTS=0); \
             quiet run, journal append skipped"
        );
        std::process::exit(0);
    }
    let record = report.record(&git_describe(), unix_ms());
    if let Err(e) = journal::append(Path::new(JOURNAL_PATH), &record) {
        eprintln!("repro soak: could not append to {JOURNAL_PATH}: {e}");
        std::process::exit(1);
    }
    println!("repro soak: record appended [journal: {JOURNAL_PATH}]");
    std::process::exit(0);
}

/// `repro restart` — the durable-serving campaign (DESIGN.md §16).
/// Cold boot, crash-shaped stop, warm boot on the same state directory;
/// appends a `restart` journal record with the measured cold/warm start
/// times, restore counters, and byte-level replay divergence for
/// `repro compare restart`. Unlike `repro soak`, a faults-masked run
/// still appends — the cold/warm measurement needs no injection; only
/// the snapshot-sabotage leg is skipped.
fn run_restart() -> ! {
    let config = vardelay_bench::restart::RestartConfig::from_env();
    let report = match vardelay_bench::restart::run_restart(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("repro restart: campaign failed: {e}");
            std::process::exit(2);
        }
    };
    println!("{}", report.summary());
    let record = report.record(&git_describe(), unix_ms());
    if let Err(e) = journal::append(Path::new(JOURNAL_PATH), &record) {
        eprintln!("repro restart: could not append to {JOURNAL_PATH}: {e}");
        std::process::exit(1);
    }
    println!("repro restart: record appended [journal: {JOURNAL_PATH}]");
    std::process::exit(0);
}

/// `repro backends` — the cross-backend comparison campaign
/// (DESIGN.md §17). Measures every [`vardelay_backend::DelayBackend`]
/// kind against its advertised contract, runs the per-backend
/// deskew-under-faults leg, writes `backends_compare.csv`, and appends
/// a `backends` journal record for `repro compare backends`. A
/// contract violation, a reference drift from the directly-driven
/// circuit, or an undetected fault exits 2 — the gate's evidence must
/// never be silently green.
fn run_backends() -> ! {
    let config = backends_campaign::BackendsConfig::from_env();
    let report = backends_campaign::backends_campaign(&config);
    let table = report.table();
    println!("{table}");
    println!("{}", report.summary());
    set_current_experiment("backends");
    save_csv("backends_compare", &table.to_csv());
    let record = report.record(&git_describe(), unix_ms());
    if let Err(e) = journal::append(Path::new(JOURNAL_PATH), &record) {
        eprintln!("repro backends: could not append to {JOURNAL_PATH}: {e}");
        std::process::exit(1);
    }
    println!("repro backends: record appended [journal: {JOURNAL_PATH}]");
    if save_failure_count() > 0 {
        std::process::exit(1);
    }
    let failed = report.contract_violations() > 0
        || report.reference_drift
        || report.faults_detected() < report.faults_expected();
    if failed {
        eprintln!(
            "repro backends: campaign below expectations — {}",
            report.summary()
        );
        std::process::exit(2);
    }
    std::process::exit(0);
}

/// Every experiment, in the paper's presentation order — the order
/// `repro all` runs them and the order checkpoints are laid down in.
const EXPERIMENTS: &[(&str, fn())] = &[
    ("fig7", fig7),
    ("fig9", fig9),
    ("fig12", fig12),
    ("fig13", fig13),
    ("fig14", fig14),
    ("fig15", fig15),
    ("fig16", fig16),
    ("fig17", fig17),
    ("fig2", fig2),
    ("fig1", fig1),
    ("table1", table1),
    ("ablation", ablation_report),
    ("extensions", extensions),
    ("faults", faults),
];

/// Resolves `all` or a comma-separated selection against the experiment
/// table. Duplicate names are collapsed to their first occurrence —
/// `repro fig12,fig12` must not run the experiment twice and
/// double-write its checkpoint. `Err` carries the first unknown name.
fn parse_selection(arg: &str) -> Result<Vec<(&'static str, fn())>, String> {
    if arg == "all" {
        return Ok(EXPERIMENTS.to_vec());
    }
    let mut picked: Vec<(&'static str, fn())> = Vec::new();
    for name in arg.split(',').filter(|s| !s.is_empty()) {
        match EXPERIMENTS.iter().find(|(n, _)| *n == name) {
            Some(&entry) => {
                if !picked.iter().any(|(n, _)| *n == entry.0) {
                    picked.push(entry);
                }
            }
            None => return Err(name.to_owned()),
        }
    }
    if picked.is_empty() {
        return Err(arg.to_owned());
    }
    Ok(picked)
}

fn usage_exit(unknown: &str) -> ! {
    let names = EXPERIMENTS
        .iter()
        .map(|(n, _)| *n)
        .collect::<Vec<_>>()
        .join(" ");
    eprintln!(
        "unknown experiment {unknown:?}; usage: repro [all|<name>[,<name>...]] [--resume] | \
         compare [all|serve-bench|fairness|hotpath|soak|restart|backends] | serve | \
         serve-bench [mt] | soak | restart | backends\n  names: {names}"
    );
    std::process::exit(2);
}

fn save_failure_count() -> usize {
    SAVE_FAILURES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .len()
}

/// Runs one experiment, under a post-hoc deadline when
/// `VARDELAY_DEADLINE_MS` is set. Returns whether the experiment is
/// checkpointable (completed within budget without panicking).
fn run_experiment(name: &str, f: fn(), budget: Option<Duration>) -> bool {
    let Some(budget) = budget else {
        f();
        return true;
    };
    // One task on the serial runner: the supervisor thread flags the
    // straggler, and even an experiment that never polls the token is
    // caught post-hoc (elapsed > budget ⇒ DeadlineExceeded).
    match Runner::serial()
        .run_with_deadline(1, budget, |_, _deadline: &Deadline| f())
        .pop()
    {
        Some(Ok(())) => true,
        Some(Err(e)) => {
            record_save_failure(format!("experiment {name}: {e}"));
            false
        }
        None => false,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => run_compare(args.get(1).map(String::as_str)),
        Some("serve") => run_serve(),
        Some("serve-bench") => run_serve_bench(args.get(1).map(String::as_str)),
        Some("soak") => run_soak(),
        Some("restart") => run_restart(),
        Some("backends") => run_backends(),
        _ => {}
    }
    let mut resume = false;
    let mut selection_arg: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            "--resume" => resume = true,
            "compare" => run_compare(None),
            _ if arg.starts_with('-') => usage_exit(&arg),
            _ if selection_arg.is_some() => usage_exit(&arg),
            _ => selection_arg = Some(arg),
        }
    }
    let arg = selection_arg.unwrap_or_else(|| "all".to_owned());
    let selection = parse_selection(&arg).unwrap_or_else(|unknown| usage_exit(&unknown));

    // A previous run killed mid-write can only leave `.tmp` stage files
    // behind (renames are atomic); clear them before producing output.
    match artifact::sweep_stale_tmp(Path::new("target/repro")) {
        Ok(0) | Err(_) => {}
        Ok(n) => println!("repro: swept {n} stale .tmp file(s) from an interrupted run"),
    }

    let deadline_budget = Deadline::budget_from_env();
    if let Some(b) = deadline_budget {
        println!(
            "repro: per-experiment deadline {} ms (VARDELAY_DEADLINE_MS)",
            b.as_millis()
        );
    }

    let started = Instant::now();
    let mut timings: Vec<(String, f64)> = Vec::new();
    let mut resume_skips = 0usize;
    for &(name, f) in &selection {
        let fp = checkpoint::fingerprint(name);
        let out_dir = try_output_dir();
        let ckpt_dir = out_dir.as_ref().map(|out| checkpoint_dir(out)).ok();
        if resume {
            let matched = out_dir
                .as_ref()
                .ok()
                .zip(ckpt_dir.as_ref())
                .is_some_and(|(out, dir)| {
                    Checkpoint::load(dir, name).is_some_and(|ck| ck.matches(fp, out))
                });
            if matched {
                println!("repro: {name} — checkpoint matches, skipped (--resume)");
                obs::counter("repro.checkpoint_skips").incr();
                resume_skips += 1;
                continue;
            }
        }
        set_current_experiment(name);
        drain_csv_digests(); // discard any leftovers from a failed experiment
        let failures_before = save_failure_count();
        let t0 = Instant::now();
        let completed = {
            let _span = obs::span(&format!("repro.{name}_us"));
            run_experiment(name, f, deadline_budget)
        };
        timings.push((name.to_owned(), t0.elapsed().as_secs_f64()));
        let csvs = drain_csv_digests();
        if completed && save_failure_count() == failures_before {
            let ck = Checkpoint {
                experiment: name.to_owned(),
                fingerprint: fp,
                csvs,
            };
            match ckpt_dir.as_ref().map(|dir| ck.save(dir)) {
                Some(Ok(_)) | None => {}
                // Warn-only: a lost checkpoint just means resume re-runs
                // this experiment.
                Some(Err(e)) => eprintln!("repro: could not checkpoint {name}: {e}"),
            }
        }
        // The chaos gate's seeded crash: dies *after* the checkpoint
        // lands, the worst case for resume correctness.
        vardelay_faults::kill_point(name);
    }
    if resume_skips > 0 {
        println!(
            "repro: resumed — {resume_skips} experiment(s) skipped, {} re-run",
            selection.len() - resume_skips
        );
    }
    write_runtime_record(
        &arg,
        started.elapsed().as_secs_f64(),
        &timings,
        resume_skips,
    );
    let failures = SAVE_FAILURES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if !failures.is_empty() {
        eprintln!(
            "\nrepro: {} output file(s) could not be written:",
            failures.len()
        );
        for f in failures.iter() {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::parse_selection;

    #[test]
    fn selection_deduplicates_and_preserves_first_occurrence_order() {
        let names = |arg: &str| -> Vec<&'static str> {
            parse_selection(arg)
                .unwrap()
                .into_iter()
                .map(|(n, _)| n)
                .collect()
        };
        assert_eq!(names("fig12,fig12"), vec!["fig12"]);
        assert_eq!(names("fig9,fig12,fig9,fig12,fig9"), vec!["fig9", "fig12"]);
        // Dedup never reorders: first occurrence wins.
        assert_eq!(names("faults,fig7,faults"), vec!["faults", "fig7"]);
    }

    #[test]
    fn selection_rejects_unknown_names_anywhere_in_the_list() {
        assert_eq!(parse_selection("fig12,bogus"), Err("bogus".to_owned()));
        assert_eq!(parse_selection("bogus,fig12"), Err("bogus".to_owned()));
        assert_eq!(parse_selection(""), Err("".to_owned()));
        assert_eq!(parse_selection(",,"), Err(",,".to_owned()));
    }
}
