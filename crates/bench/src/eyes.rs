//! Experiments E3–E5 (Figs. 12–14): eye measurements of the delay circuit
//! passing live traffic.

use crate::EXPERIMENT_SEED;
use vardelay_analog::{CharacterizedDelay, EdgeTransform};
use vardelay_core::{FineDelayLine, ModelConfig};
use vardelay_measure::{tie_sequence, JitterStats};
use vardelay_siggen::{
    BitPattern, CompositeJitter, EdgeStream, GaussianRj, JitterModel, SinusoidalPj,
};
use vardelay_units::{BitRate, Frequency, Time, Voltage};

/// The figures reported for one eye experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct EyeExperimentResult {
    /// Experiment label (e.g. `"Fig.12 4.8 Gb/s NRZ"`).
    pub label: String,
    /// Fine adjustment range at this signal's toggle interval.
    pub fine_range: Time,
    /// Input total jitter (peak-to-peak over the capture).
    pub input_tj: Time,
    /// Output total jitter (peak-to-peak over the capture).
    pub output_tj: Time,
    /// `output_tj − input_tj`, the "added jitter" the paper quotes.
    pub added_tj: Time,
}

fn tj_pp(stream: &EdgeStream) -> Time {
    let tie = tie_sequence(stream);
    JitterStats::from_times(&tie)
        .expect("capture carries edges")
        .peak_to_peak
}

/// Builds the edge-domain model of the full combined circuit (fine table
/// plus the aggregate RJ of `active` stages) at the mid control voltage.
fn combined_edge_model(cfg: &ModelConfig, active: usize, seed: u64) -> CharacterizedDelay {
    let line = FineDelayLine::new(&cfg.quiet(), seed);
    let (vctrls, intervals) = line.default_grids();
    let table = line.characterize(&vctrls, &intervals);
    let mid = Voltage::from_v(0.75);
    CharacterizedDelay::new(table, mid, cfg.chain_rj(active), seed.wrapping_add(7))
}

/// Fig. 12 — a 4.8 Gb/s NRZ data eye through the fine delay line.
///
/// The paper measures a 49.5 ps fine range and 18.5 ps output TJ, about
/// 7 ps above the input reference.
pub fn fig12_eye_4g8(bits: usize) -> EyeExperimentResult {
    let rate = BitRate::from_gbps(4.8);
    let cfg = ModelConfig::paper_prototype();
    // Bench reference signal: ~11.5 ps pk-pk (RJ + a PJ tone).
    let clean = EdgeStream::nrz(&BitPattern::prbs7(1, bits), rate);
    let input = CompositeJitter::new()
        .with(GaussianRj::new(Time::from_ps(1.05), EXPERIMENT_SEED))
        .with(SinusoidalPj::new(
            Time::from_ps(2.6),
            Frequency::from_mhz(37.0),
            0.0,
        ))
        .apply(&clean);

    // Fine line only (paper Fig. 12 measures the fine section): 5 active
    // stages.
    let mut model = combined_edge_model(&cfg, cfg.stages + 1, EXPERIMENT_SEED);
    let output = model.transform(&input);

    let line = FineDelayLine::new(&cfg.quiet(), EXPERIMENT_SEED);
    let input_tj = tj_pp(&input);
    let output_tj = tj_pp(&output);
    EyeExperimentResult {
        label: "Fig.12 4.8 Gb/s NRZ through fine line".to_owned(),
        fine_range: line.delay_range(rate.bit_period()),
        input_tj,
        output_tj,
        added_tj: output_tj - input_tj,
    }
}

/// Fig. 13 — a 6.4 Gb/s DUT-like signal (≈26 ps input TJ) through the
/// complete combined circuit (7 active stages). The paper measures
/// ≈39 ps output TJ (+13 ps).
pub fn fig13_eye_6g4(bits: usize) -> EyeExperimentResult {
    let rate = BitRate::from_gbps(6.4);
    let cfg = ModelConfig::paper_prototype();
    // DUT output: substantial RJ plus a strong periodic component.
    let clean = EdgeStream::nrz(&BitPattern::prbs7(1, bits), rate);
    let input = CompositeJitter::new()
        .with(GaussianRj::new(Time::from_ps(1.3), EXPERIMENT_SEED + 1))
        .with(SinusoidalPj::new(
            Time::from_ps(8.0),
            Frequency::from_mhz(61.0),
            0.4,
        ))
        .apply(&clean);

    let mut model = combined_edge_model(&cfg, cfg.active_components(), EXPERIMENT_SEED + 1);
    // The coarse section adds a static tap delay; irrelevant for TJ but
    // kept for completeness (tap 1 selected).
    let output = model.transform(&input).delayed(cfg.coarse_taps[1]);

    let line = FineDelayLine::new(&cfg.quiet(), EXPERIMENT_SEED);
    let input_tj = tj_pp(&input);
    let output_tj = tj_pp(&output);
    EyeExperimentResult {
        label: "Fig.13 6.4 Gb/s NRZ through combined circuit".to_owned(),
        fine_range: line.delay_range(rate.bit_period()),
        input_tj,
        output_tj,
        added_tj: output_tj - input_tj,
    }
}

/// Fig. 14 — a 6.4 GHz RZ clock (12.8 Gb/s-equivalent) through the fine
/// line. The paper measures a 23.5 ps fine range and 10.5 ps TJ.
pub fn fig14_rz_6g4(cycles: usize) -> EyeExperimentResult {
    let freq = Frequency::from_ghz(6.4);
    let cfg = ModelConfig::paper_prototype();
    let clean = EdgeStream::rz_clock(freq, cycles);
    let input = GaussianRj::new(Time::from_ps(0.6), EXPERIMENT_SEED + 2).apply(&clean);

    let mut model = combined_edge_model(&cfg, cfg.stages + 1, EXPERIMENT_SEED + 2);
    let output = model.transform(&input);

    // A 50 %-duty clock has edges every half period; fold TIE accordingly.
    let half = freq.period() * 0.5;
    let tj_rz = |s: &EdgeStream| {
        JitterStats::from_times(&vardelay_measure::tie_sequence_with_ui(s, half))
            .expect("capture carries edges")
            .peak_to_peak
    };
    let line = FineDelayLine::new(&cfg.quiet(), EXPERIMENT_SEED);
    let input_tj = tj_rz(&input);
    let output_tj = tj_rz(&output);
    EyeExperimentResult {
        label: "Fig.14 6.4 GHz RZ clock through fine line".to_owned(),
        fine_range: line.delay_range(freq.period() * 0.5),
        input_tj,
        output_tj,
        added_tj: output_tj - input_tj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_shape() {
        let r = fig12_eye_4g8(4000);
        // Range comparable to the paper's 49.5 ps.
        assert!(
            (40.0..60.0).contains(&r.fine_range.as_ps()),
            "range {}",
            r.fine_range
        );
        // Output jitter exceeds input by a bounded amount.
        assert!(r.added_tj > Time::ZERO, "no added jitter: {r:?}");
        assert!(
            r.added_tj < Time::from_ps(15.0),
            "added {} implausibly high",
            r.added_tj
        );
    }

    #[test]
    fn fig13_shape() {
        let r = fig13_eye_6g4(4000);
        assert!(
            (20.0..35.0).contains(&r.input_tj.as_ps()),
            "input {}",
            r.input_tj
        );
        assert!(r.output_tj > r.input_tj);
        // Paper: +13 ps at 6.4 Gb/s ("slightly more jitter above 6 Gb/s").
        assert!(r.added_tj < Time::from_ps(22.0), "added {}", r.added_tj);
    }

    #[test]
    fn fig14_shape() {
        let r = fig14_rz_6g4(4000);
        // Compressed but usable range (paper: 23.5 ps).
        assert!(
            (18.0..35.0).contains(&r.fine_range.as_ps()),
            "range {}",
            r.fine_range
        );
        // Clock pattern: no data-dependent jitter, so TJ stays modest
        // (paper: 10.5 ps).
        assert!(r.output_tj < Time::from_ps(18.0), "tj {}", r.output_tj);
    }

    #[test]
    fn added_jitter_grows_with_rate() {
        // Paper §4: "slightly more jitter was observed above 6 Gb/s".
        let slow = fig12_eye_4g8(3000);
        let fast = fig13_eye_6g4(3000);
        assert!(fast.added_tj > slow.added_tj * 0.8, "{slow:?} vs {fast:?}");
    }
}
