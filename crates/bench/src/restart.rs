//! `repro restart` — the durable-serving warm-restart campaign
//! (DESIGN.md §16).
//!
//! Boots a durable in-process server on a scratch state directory and
//! times the **cold start** (full calibration sweep), programs a seeded
//! batch of `set_delay`s carrying retry ids, then stops the server the
//! unclean way — drained but never compacted, so the WAL is left for
//! the next boot. A second boot on the same directory times the **warm
//! start** (snapshot restore → sentinel verification → WAL replay) and
//! the campaign re-issues the identical request script twice: once with
//! the original `req_id`s (every answer must come from the restored
//! dedup window) and once without (every answer must come from the
//! restored tables). Any byte-level divergence from the pre-restart
//! answers — modulo the `server_epoch` stamp — counts as a
//! `replay_mismatch`, and the gate treats a single one as a failure:
//! a recovered server must never serve a wrong table.
//!
//! With fault injection armed ([`vardelay_faults::enabled`]) the
//! campaign adds a sabotage leg: it corrupts one snapshot file on disk
//! and boots a third time, requiring the server to *refuse* the corrupt
//! snapshot, recalibrate that bank from scratch, and still answer the
//! fresh script byte-identically. The aggregate lands in a `restart`
//! journal record gated by `repro compare restart` via
//! [`vardelay_obs::journal::compare_latest_restart`]: warm must beat
//! cold, at least one bank must restore, nothing may recalibrate on an
//! intact store, and the warm start must not blow up run-over-run.
//!
//! One honesty caveat, also noted in EXPERIMENTS.md: because both legs
//! run in one process, the warm boot additionally benefits from the
//! process-wide characterization cache the cold boot filled. The gate's
//! warm<cold leg is therefore conservative evidence that the snapshot
//! path is cheap, not a pure measure of it; `restore_us` (recovery work
//! only) is recorded alongside for the direct number.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use vardelay_obs::json::Value;
use vardelay_serve::{serve, Client, Envelope, Request, Response, ServeConfig, ServerHandle};
use vardelay_siggen::SplitMix64;

use crate::EXPERIMENT_SEED;

/// Campaign shape. [`Default`] is what CI runs: 24 programmed delays
/// across the 8 channels, a scratch state directory under the system
/// temp dir, and the shared experiment seed.
#[derive(Debug, Clone)]
pub struct RestartConfig {
    /// `set_delay` requests programmed before the unclean stop.
    pub requests: usize,
    /// State directory; `None` uses (and afterwards removes) a scratch
    /// directory under the system temp dir.
    pub state_dir: Option<PathBuf>,
    /// Seed for the programmed delay targets.
    pub seed: u64,
}

impl Default for RestartConfig {
    fn default() -> Self {
        RestartConfig {
            requests: 24,
            state_dir: None,
            seed: EXPERIMENT_SEED,
        }
    }
}

impl RestartConfig {
    /// The default campaign with the request count taken from
    /// `VARDELAY_RESTART_REQUESTS` when set.
    pub fn from_env() -> Self {
        let mut config = RestartConfig::default();
        if let Some(n) = std::env::var("VARDELAY_RESTART_REQUESTS")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            config.requests = n;
        }
        config
    }
}

/// What the campaign measured.
#[derive(Debug, Clone)]
pub struct RestartReport {
    /// Whether the sabotage leg ran ([`vardelay_faults::enabled`]).
    pub faults_enabled: bool,
    /// `set_delay` requests programmed before the stop.
    pub requests: u64,
    /// First-boot wall clock (bind → serving), microseconds.
    pub cold_start_us: u64,
    /// Restarted-boot wall clock on the same directory, microseconds.
    pub warm_start_us: u64,
    /// Banks the warm boot restored from snapshots.
    pub banks_restored: u64,
    /// Banks the warm boot recalibrated despite the intact store
    /// (anything above zero is a gate failure).
    pub banks_recalibrated: u64,
    /// WAL records the warm boot replayed.
    pub wal_records_replayed: u64,
    /// The warm boot's own recovery work (restore + verify + replay),
    /// microseconds, as reported by the server.
    pub restore_us: u64,
    /// Retried requests answered from the restored dedup window.
    pub dedup_hits: u64,
    /// Post-restart answers that diverged byte-for-byte (modulo the
    /// epoch stamp) from their pre-restart twins, across both the
    /// retried and the fresh script and the sabotage leg.
    pub replay_mismatches: u64,
    /// Banks the sabotage boot recalibrated after the snapshot
    /// corruption (0 when faults are masked; ≥1 expected otherwise).
    pub sabotage_recalibrated: u64,
    /// The server's worker count (the gate's comparability key).
    pub workers: u64,
    /// Wall clock of the whole campaign.
    pub wall: Duration,
}

impl RestartReport {
    /// One greppable summary line. The CI restart job asserts on
    /// `banks_restored=`, `replay_mismatches=` and (faults armed)
    /// `sabotage_recalibrated=`.
    pub fn summary(&self) -> String {
        format!(
            "restart: requests={} cold_start={} us warm_start={} us restore={} us \
             banks_restored={} banks_recalibrated={} wal_records_replayed={} \
             dedup_hits={} replay_mismatches={} sabotage_recalibrated={} \
             workers={} faults={}",
            self.requests,
            self.cold_start_us,
            self.warm_start_us,
            self.restore_us,
            self.banks_restored,
            self.banks_recalibrated,
            self.wal_records_replayed,
            self.dedup_hits,
            self.replay_mismatches,
            self.sabotage_recalibrated,
            self.workers,
            if self.faults_enabled { "on" } else { "off" }
        )
    }

    /// The journal record `repro compare restart` gates on via
    /// [`vardelay_obs::journal::compare_latest_restart`].
    pub fn record(&self, git: &str, unix_ms: u64) -> Value {
        Value::obj()
            .with("schema", vardelay_obs::journal::SCHEMA_VERSION)
            .with("experiments", "restart")
            .with("threads", self.workers)
            .with("git", git)
            .with("unix_ms", unix_ms)
            .with("wall_s", self.wall.as_secs_f64())
            .with("requests", self.requests)
            .with("cold_start_us", self.cold_start_us as f64)
            .with("warm_start_us", self.warm_start_us as f64)
            .with("restore_us", self.restore_us)
            .with("banks_restored", self.banks_restored)
            .with("banks_recalibrated", self.banks_recalibrated)
            .with("wal_records_replayed", self.wal_records_replayed)
            .with("dedup_hits", self.dedup_hits)
            .with("replay_mismatches", self.replay_mismatches)
            .with("sabotage_recalibrated", self.sabotage_recalibrated)
    }
}

/// Every response carries the restart counter; byte-identity across a
/// restart is judged modulo that one field.
fn strip_epoch(line: &str) -> String {
    match line.find(",\"server_epoch\":") {
        None => line.to_owned(),
        Some(start) => {
            // The field value is a bare integer, so the next `,` or `}`
            // past the key terminates it.
            let rest = &line[start + 1..];
            let end = rest.find([',', '}']).map_or(line.len(), |i| start + 1 + i);
            format!("{}{}", &line[..start], &line[end..])
        }
    }
}

/// Sends pre-rendered request lines sequentially and returns the raw
/// response lines exactly as they arrived.
fn wire_session(addr: SocketAddr, script: &[String]) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut lines = Vec::with_capacity(script.len());
    for request in script {
        writer.write_all(request.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut line = String::new();
        reader.read_line(&mut line)?;
        lines.push(line.trim_end().to_owned());
    }
    Ok(lines)
}

fn durable_config(dir: &Path) -> ServeConfig {
    let mut config = ServeConfig::in_process();
    config.workers = 2;
    config.shards = 1;
    config.state_dir = Some(dir.to_path_buf());
    config
}

fn stats(client: &mut Client, id: u64) -> std::io::Result<vardelay_serve::StatsReply> {
    let (_, response) = client.call(&Envelope {
        id: Some(id),
        deadline_ms: None,
        tenant: None,
        req_id: None,
        backend: None,
        request: Request::Stats,
    })?;
    match response {
        Response::Stats(stats) => Ok(stats),
        other => Err(std::io::Error::other(format!("stats drew {other:?}"))),
    }
}

/// Drains the listener but drops the handle without `join()`, so the
/// parting WAL compaction never runs — the crash-shaped stop the warm
/// boot must recover from.
fn stop_without_compaction(handle: ServerHandle) -> std::io::Result<()> {
    handle.shutdown();
    let addr = handle.addr();
    drop(handle);
    let deadline = Instant::now() + Duration::from_secs(30);
    while TcpStream::connect(addr).is_ok() {
        if Instant::now() >= deadline {
            return Err(std::io::Error::other("listener never closed on shutdown"));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // The drained workers have answered every admitted request; give
    // their final WAL appends a beat to land before reopening the log.
    std::thread::sleep(Duration::from_millis(200));
    Ok(())
}

/// Flips one byte in the middle of the first snapshot file found under
/// the store, returning whether anything was sabotaged.
fn corrupt_one_snapshot(dir: &std::path::Path) -> std::io::Result<bool> {
    let banks = dir.join("banks");
    let Ok(tenants) = std::fs::read_dir(&banks) else {
        return Ok(false);
    };
    for tenant in tenants.flatten() {
        let Ok(files) = std::fs::read_dir(tenant.path()) else {
            continue;
        };
        for file in files.flatten() {
            let path = file.path();
            if path.extension().and_then(|e| e.to_str()) != Some("snap") {
                continue;
            }
            let mut bytes = std::fs::read(&path)?;
            if bytes.is_empty() {
                continue;
            }
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&path, &bytes)?;
            return Ok(true);
        }
    }
    Ok(false)
}

fn count_mismatches(before: &[String], after: &[String]) -> u64 {
    before
        .iter()
        .zip(after)
        .filter(|(old, new)| strip_epoch(old) != strip_epoch(new))
        .count() as u64
        + before.len().abs_diff(after.len()) as u64
}

/// Runs the campaign and gathers the report.
///
/// # Errors
///
/// Returns an I/O error when a server cannot bind, a connection dies
/// mid-script, or the scratch directory cannot be prepared; answer
/// divergence is *counted* (`replay_mismatches`) rather than erroring,
/// so the gate — not the campaign — decides what a mismatch means.
pub fn run_restart(config: &RestartConfig) -> std::io::Result<RestartReport> {
    vardelay_obs::set_enabled(true);
    let faults_enabled = vardelay_faults::enabled();
    let scratch = config.state_dir.is_none();
    let dir = config.state_dir.clone().unwrap_or_else(|| {
        let mut dir = std::env::temp_dir();
        dir.push(format!("vardelay_restart_{}", std::process::id()));
        dir
    });
    if scratch {
        let _ = std::fs::remove_dir_all(&dir);
    }
    let started = Instant::now();

    // The seeded script: every request carries a retry id so the warm
    // boot's dedup window can be measured.
    let mut rng = SplitMix64::new(config.seed);
    let targets: Vec<(usize, f64)> = (0..config.requests)
        .map(|i| (i % 8, 7.5 * (rng.next_u64() % 16 + 1) as f64))
        .collect();
    let render = |with_req_id: bool| -> Vec<String> {
        targets
            .iter()
            .enumerate()
            .map(|(i, &(channel, ps))| {
                let envelope = Envelope {
                    id: Some(i as u64 + 1),
                    deadline_ms: None,
                    tenant: None,
                    req_id: with_req_id.then(|| format!("r-{i}")),
                    backend: None,
                    request: Request::SetDelay { channel, ps },
                };
                envelope.to_value().render()
            })
            .collect()
    };
    let retried = render(true);
    let fresh = render(false);

    // Cold leg: first boot pays the full calibration sweep.
    let t0 = Instant::now();
    let handle = serve(durable_config(&dir))?;
    let cold_start_us = t0.elapsed().as_micros() as u64;
    let before = wire_session(handle.addr(), &retried)?;
    stop_without_compaction(handle)?;

    // Warm leg: snapshots + WAL on the same directory.
    let t1 = Instant::now();
    let handle = serve(durable_config(&dir))?;
    let warm_start_us = t1.elapsed().as_micros() as u64;
    let mut probe = Client::connect(handle.addr())?;
    let warm_stats = stats(&mut probe, 9_000)?;
    let replay = wire_session(handle.addr(), &retried)?;
    let mut replay_mismatches = count_mismatches(&before, &replay);
    let dedup_hits = stats(&mut probe, 9_001)?.dedup_hits;
    let solved = wire_session(handle.addr(), &fresh)?;
    replay_mismatches += count_mismatches(&before, &solved);
    handle.shutdown();
    let drained = handle.join();

    // Sabotage leg (faults armed): a corrupted snapshot must be refused
    // and recalibrated — and the answers must still not change.
    let mut sabotage_recalibrated = 0u64;
    if faults_enabled && corrupt_one_snapshot(&dir)? {
        let handle = serve(durable_config(&dir))?;
        let mut probe = Client::connect(handle.addr())?;
        sabotage_recalibrated = stats(&mut probe, 9_002)?.banks_recalibrated;
        let answers = wire_session(handle.addr(), &fresh)?;
        replay_mismatches += count_mismatches(&before, &answers);
        handle.shutdown();
        handle.join();
    }

    if scratch {
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(RestartReport {
        faults_enabled,
        requests: config.requests as u64,
        cold_start_us,
        warm_start_us,
        banks_restored: warm_stats.banks_restored,
        banks_recalibrated: warm_stats.banks_recalibrated,
        wal_records_replayed: warm_stats.wal_records_replayed,
        restore_us: warm_stats.restore_us,
        dedup_hits,
        replay_mismatches,
        sabotage_recalibrated,
        workers: drained.stats.workers,
        wall: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(warm_start_us: u64, banks_restored: u64, replay_mismatches: u64) -> RestartReport {
        RestartReport {
            faults_enabled: true,
            requests: 24,
            cold_start_us: 900_000,
            warm_start_us,
            banks_restored,
            banks_recalibrated: 0,
            wal_records_replayed: 48,
            restore_us: 30_000,
            dedup_hits: 24,
            replay_mismatches,
            sabotage_recalibrated: 1,
            workers: 2,
            wall: Duration::from_secs(4),
        }
    }

    #[test]
    fn the_record_round_trips_through_the_restart_gate() {
        let record = report(100_000, 1, 0).record("deadbeef", 1_700_000_000_000);
        let reparsed = Value::parse(&record.render()).expect("record renders valid JSON");
        assert_eq!(
            reparsed.get("experiments").and_then(Value::as_str),
            Some("restart")
        );
        let records = vec![record.clone(), record];
        let cmp = vardelay_obs::journal::compare_latest_restart(
            &records,
            vardelay_obs::journal::RESTART_THRESHOLD,
        )
        .expect("two identical records compare");
        assert!(!cmp.regressed, "{cmp}");
    }

    #[test]
    fn a_diverging_replay_turns_the_gate_red() {
        let green = report(100_000, 1, 0).record("deadbeef", 1_700_000_000_000);
        let red = report(100_000, 1, 2).record("deadbeef", 1_700_000_100_000);
        let cmp = vardelay_obs::journal::compare_latest_restart(
            &[green, red],
            vardelay_obs::journal::RESTART_THRESHOLD,
        )
        .expect("records compare");
        assert!(cmp.regressed, "{cmp}");
        assert!(cmp.to_string().contains("REGRESSED"), "{cmp}");
    }

    #[test]
    fn a_cold_shaped_warm_start_turns_the_gate_red() {
        // Warm no faster than cold means the snapshots bought nothing.
        let green = report(100_000, 1, 0).record("deadbeef", 1_700_000_000_000);
        let red = report(950_000, 1, 0).record("deadbeef", 1_700_000_100_000);
        let cmp = vardelay_obs::journal::compare_latest_restart(
            &[green, red],
            // Growth leg loosened out of the way: the warm<cold leg
            // must trip on its own.
            20.0,
        )
        .expect("records compare");
        assert!(cmp.regressed, "{cmp}");
    }

    #[test]
    fn the_summary_carries_the_fields_ci_greps() {
        let summary = report(100_000, 1, 0).summary();
        for needle in [
            "banks_restored=1",
            "banks_recalibrated=0",
            "replay_mismatches=0",
            "sabotage_recalibrated=1",
            "dedup_hits=24",
            "faults=on",
        ] {
            assert!(summary.contains(needle), "{needle} missing from {summary}");
        }
    }

    #[test]
    fn epoch_stripping_only_removes_the_one_field() {
        assert_eq!(
            strip_epoch("{\"id\":1,\"server_epoch\":3,\"ok\":true}"),
            "{\"id\":1,\"ok\":true}"
        );
        assert_eq!(strip_epoch("{\"id\":1,\"server_epoch\":12}"), "{\"id\":1}");
        assert_eq!(strip_epoch("{\"id\":1}"), "{\"id\":1}");
    }
}
