//! `repro serve-bench`: the in-process load generator and SLO record.
//!
//! Drives a `vardelay-serve` instance with `N` client threads on an
//! **open-loop** arrival schedule: each client's send times are fixed
//! up front from seeded exponential gaps ([`vardelay_runner::task_seed`]
//! per client) and never react to server speed — a client that falls
//! behind its schedule (because responses are slow) stops sleeping and
//! fires back-to-back until it catches up, so a slow server faces
//! *more* concurrent pressure, not politely reduced load. Latency is
//! measured send→response per request; backlog the server accumulates
//! under that pressure lands in the tail quantiles.
//!
//! Latencies land in a local obs log₂ [`Histogram`]; the resulting
//! p50/p95/p99 plus throughput and per-kind response counts become a
//! `serve-bench` journal record, gated by `repro compare` via
//! [`vardelay_obs::journal::compare_latest_serve`].

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use vardelay_obs::json::Value;
use vardelay_obs::Histogram;
use vardelay_runner::task_seed;
use vardelay_serve::{Client, Envelope, ErrorKind, Request, Response};
use vardelay_siggen::SplitMix64;

use crate::EXPERIMENT_SEED;

/// Load shape. [`Default`] is the smoke load CI runs: 4 clients × 100
/// requests at a 10 ms mean gap (~400 offered req/s), sized so even a
/// single-core single-worker server absorbs it without shedding — the
/// smoke gate asserts zero `overloaded`.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client sends.
    pub requests_per_client: usize,
    /// Mean of the exponential inter-arrival gap per client.
    pub mean_gap: Duration,
    /// Root seed for arrival schedules and request mixes.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            clients: 4,
            requests_per_client: 100,
            mean_gap: Duration::from_millis(10),
            seed: EXPERIMENT_SEED,
        }
    }
}

/// What the load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests sent (and responses received — strict request/response).
    pub requests: u64,
    /// Successful responses.
    pub ok: u64,
    /// `parse_error` responses (must be 0 — the generator sends only
    /// well-formed lines).
    pub parse_errors: u64,
    /// `bad_request` responses (must be 0 likewise).
    pub bad_requests: u64,
    /// `overloaded` responses.
    pub overloaded: u64,
    /// `deadline_exceeded` responses.
    pub deadline_exceeded: u64,
    /// `internal` responses.
    pub internal_errors: u64,
    /// `unavailable` responses (a quarantined channel refusing
    /// `set_delay` while the health loop rebuilds its table).
    pub unavailable: u64,
    /// Responses answered as part of a multi-request batch.
    pub batched: u64,
    /// Transport-level failures (connection refused/reset mid-run).
    pub transport_errors: u64,
    /// Wall clock of the whole run.
    pub wall: Duration,
    /// Completed responses per second.
    pub throughput_rps: f64,
    /// Median send→response latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// The server's worker count (from its `stats` reply) — the
    /// comparability key for the regression gate.
    pub workers: u64,
}

impl LoadReport {
    /// One greppable summary line (the CI smoke job asserts on the
    /// `parse_error=` / `overloaded=` fields).
    pub fn summary(&self) -> String {
        format!(
            "serve-bench: requests={} ok={} parse_error={} bad_request={} overloaded={} \
             deadline_exceeded={} internal={} unavailable={} batched={} transport={} \
             throughput={:.0} req/s p50={} us p95={} us p99={} us workers={}",
            self.requests,
            self.ok,
            self.parse_errors,
            self.bad_requests,
            self.overloaded,
            self.deadline_exceeded,
            self.internal_errors,
            self.unavailable,
            self.batched,
            self.transport_errors,
            self.throughput_rps,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.workers
        )
    }

    /// The journal record `repro compare` gates on. `git` and `unix_ms`
    /// are the caller's (the repro binary stamps them like its runtime
    /// records).
    pub fn record(&self, git: &str, unix_ms: u64) -> Value {
        Value::obj()
            .with("schema", vardelay_obs::journal::SCHEMA_VERSION)
            .with("experiments", "serve-bench")
            .with("threads", self.workers)
            .with("git", git)
            .with("unix_ms", unix_ms)
            .with("wall_s", self.wall.as_secs_f64())
            .with("requests", self.requests)
            .with("ok", self.ok)
            .with("parse_errors", self.parse_errors)
            .with("bad_requests", self.bad_requests)
            .with("overloaded", self.overloaded)
            .with("deadline_exceeded", self.deadline_exceeded)
            .with("internal_errors", self.internal_errors)
            .with("unavailable", self.unavailable)
            .with("batched", self.batched)
            .with("transport_errors", self.transport_errors)
            .with("throughput_rps", self.throughput_rps)
            .with("p50_us", self.p50_us)
            .with("p95_us", self.p95_us)
            .with("p99_us", self.p99_us)
    }
}

/// The deterministic request mix, by client and position. Mostly
/// `set_delay` on a quantized ps grid (so same-channel requests can
/// coalesce), salted with `inject_jitter` and `stats`.
fn request_for(rng: &mut SplitMix64, client: usize, k: usize) -> Request {
    match k % 25 {
        7 => Request::Stats,
        15 => Request::InjectJitter {
            vpp_mv: 40.0 + 10.0 * (client % 4) as f64,
            rate_gbps: 3.2,
            bits: 64,
            seed: rng.next_u64() % 1024 + 1,
        },
        _ => {
            // 8 channels × 16 grid points: plenty of collisions for the
            // batching path. The grid tops out at 112.5 ps, inside the
            // >120 ps combined range the circuit tests pin, so no mix
            // request can draw an out-of-range rejection.
            let channel = (rng.next_u64() % 8) as usize;
            let step = rng.next_u64() % 16;
            Request::SetDelay {
                channel,
                ps: 7.5 * step as f64,
            }
        }
    }
}

/// Runs the load against a server at `addr` and gathers the report.
///
/// Latency histograms require obs to be recording, so this forces
/// [`vardelay_obs::set_enabled`]`(true)` for the duration — the load
/// run *is* the measurement, there is nothing to opt out of.
///
/// # Errors
///
/// Returns an I/O error only when the initial connections fail;
/// failures mid-run are counted as `transport_errors` instead.
pub fn run_load(addr: SocketAddr, config: &LoadConfig) -> std::io::Result<LoadReport> {
    vardelay_obs::set_enabled(true);
    let latency = Histogram::new();
    let counts = ResponseCounts::default();

    // Connect everything up front so a dead server is a clean error,
    // not a pile of per-thread failures.
    let mut clients: Vec<Client> = Vec::with_capacity(config.clients);
    for _ in 0..config.clients {
        clients.push(Client::connect(addr)?);
    }

    let started = Instant::now();
    std::thread::scope(|scope| {
        for (client_index, mut client) in clients.drain(..).enumerate() {
            let latency = &latency;
            let counts = &counts;
            let config = &config;
            scope.spawn(move || {
                let mut rng = SplitMix64::new(task_seed(config.seed, client_index as u64));
                let mean_us = config.mean_gap.as_micros() as f64;
                let mut scheduled_us = 0.0f64;
                for k in 0..config.requests_per_client {
                    // Exponential inter-arrival gap, fixed by seed: the
                    // schedule does not react to server speed.
                    scheduled_us += -mean_us * (1.0 - rng.next_f64()).ln();
                    let scheduled = started + Duration::from_micros(scheduled_us as u64);
                    if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let envelope = Envelope {
                        id: Some((client_index * 1_000_000 + k) as u64),
                        deadline_ms: None,
                        tenant: None,
                        req_id: None,
                        backend: None,
                        request: request_for(&mut rng, client_index, k),
                    };
                    let sent = Instant::now();
                    match client.call(&envelope) {
                        Ok((_, response)) => {
                            latency.record(sent.elapsed().as_micros() as u64);
                            counts.count(&response);
                        }
                        Err(_) => {
                            counts.transport.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let wall = started.elapsed();

    // One authoritative stats call for the server's worker count (the
    // gate's comparability key).
    let workers = Client::connect(addr)
        .and_then(|mut c| c.call(&Envelope::new(Request::Stats)))
        .ok()
        .and_then(|(_, response)| match response {
            Response::Stats(stats) => Some(stats.workers),
            _ => None,
        })
        .unwrap_or(0);

    let requests = (config.clients * config.requests_per_client) as u64;
    let completed = requests - counts.transport.load(Ordering::Relaxed);
    Ok(LoadReport {
        requests,
        ok: counts.ok.load(Ordering::Relaxed),
        parse_errors: counts.parse_errors.load(Ordering::Relaxed),
        bad_requests: counts.bad_requests.load(Ordering::Relaxed),
        overloaded: counts.overloaded.load(Ordering::Relaxed),
        unavailable: counts.unavailable.load(Ordering::Relaxed),
        deadline_exceeded: counts.deadline_exceeded.load(Ordering::Relaxed),
        internal_errors: counts.internal_errors.load(Ordering::Relaxed),
        batched: counts.batched.load(Ordering::Relaxed),
        transport_errors: counts.transport.load(Ordering::Relaxed),
        wall,
        throughput_rps: completed as f64 / wall.as_secs_f64().max(1e-9),
        p50_us: latency.quantile(0.50),
        p95_us: latency.quantile(0.95),
        p99_us: latency.quantile(0.99),
        workers,
    })
}

/// How much harder a hot tenant pushes than its balanced peers: 10×
/// the requests at one tenth the mean gap. Used by the CI
/// starved-tenant injection (`VARDELAY_BENCH_HOT_TENANT`) to drive the
/// fairness ratio far past the gate.
pub const HOT_TENANT_FACTOR: usize = 10;

/// Multi-tenant load shape. [`Default`] is the seeded campaign CI runs:
/// 16 tenants × 2 clients × 40 requests at a 50 ms mean gap — 32
/// concurrent connections offering ~640 req/s in aggregate, balanced so
/// the max/min per-tenant throughput ratio sits near 1.0 on an honest
/// scheduler.
#[derive(Debug, Clone)]
pub struct MtLoadConfig {
    /// Distinct tenants, labeled `t00..`.
    pub tenants: usize,
    /// Concurrent client connections per tenant.
    pub clients_per_tenant: usize,
    /// Requests each balanced client sends.
    pub requests_per_client: usize,
    /// Mean exponential inter-arrival gap per balanced client.
    pub mean_gap: Duration,
    /// When set, that tenant's clients offer [`HOT_TENANT_FACTOR`]×
    /// the volume at 1/[`HOT_TENANT_FACTOR`] the gap — the
    /// starved-tenant injection the fairness gate must catch.
    pub hot_tenant: Option<usize>,
    /// Root seed for arrival schedules and request mixes.
    pub seed: u64,
}

impl Default for MtLoadConfig {
    fn default() -> Self {
        MtLoadConfig {
            tenants: 16,
            clients_per_tenant: 2,
            requests_per_client: 40,
            mean_gap: Duration::from_millis(50),
            hot_tenant: None,
            seed: EXPERIMENT_SEED,
        }
    }
}

impl MtLoadConfig {
    /// The default campaign, with the hot-tenant injection taken from
    /// `VARDELAY_BENCH_HOT_TENANT` (a tenant index; out-of-range or
    /// non-numeric values are ignored).
    pub fn from_env() -> Self {
        let mut config = MtLoadConfig::default();
        config.hot_tenant = std::env::var("VARDELAY_BENCH_HOT_TENANT")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|&t| t < config.tenants);
        config
    }
}

/// The wire label for tenant `index` (`t00`, `t01`, …) — the same
/// labels the sharding e2e tests use.
pub fn tenant_label(index: usize) -> String {
    format!("t{index:02}")
}

/// The sentinel fairness ratio reported when at least one tenant
/// completed zero requests. Large and finite (the journal's JSON
/// renderer has no encoding for ∞) and far past any plausible gate
/// threshold.
pub const STARVED_FAIRNESS: f64 = 1e9;

/// What the multi-tenant campaign measured.
#[derive(Debug, Clone)]
pub struct MtLoadReport {
    /// Tenants driven.
    pub tenants: usize,
    /// Total client connections.
    pub clients: u64,
    /// Requests sent across all tenants.
    pub requests: u64,
    /// Successful responses.
    pub ok: u64,
    /// `overloaded` responses (queue overflow **and** quota sheds).
    pub overloaded: u64,
    /// Other error responses (parse/bad-request/deadline/internal).
    pub other_errors: u64,
    /// Transport-level failures mid-run.
    pub transport_errors: u64,
    /// Completed (`ok`) responses per tenant, in tenant order.
    pub per_tenant_ok: Vec<u64>,
    /// Max/min of `per_tenant_ok` ([`STARVED_FAIRNESS`] when a tenant
    /// finished with zero).
    pub fairness_ratio: f64,
    /// Wall clock of the whole campaign.
    pub wall: Duration,
    /// Completed responses per second, all tenants.
    pub throughput_rps: f64,
    /// Median send→response latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile latency, microseconds — the SLO the fairness
    /// gate tracks run-over-run.
    pub p999_us: u64,
    /// The server's worker count (the gate's comparability key).
    pub workers: u64,
    /// The server's shard count.
    pub shards: u64,
    /// Quota sheds the server counted during the campaign.
    pub quota_rejections: u64,
    /// The injected hot tenant, if any.
    pub hot_tenant: Option<usize>,
}

impl MtLoadReport {
    /// One greppable summary line (the CI smoke job asserts on
    /// `fairness=` and the error fields).
    pub fn summary(&self) -> String {
        format!(
            "serve-bench-mt: tenants={} clients={} requests={} ok={} overloaded={} \
             other_errors={} transport={} quota_rejected={} fairness={:.2} \
             throughput={:.0} req/s p50={} us p99={} us p999={} us workers={} shards={}{}",
            self.tenants,
            self.clients,
            self.requests,
            self.ok,
            self.overloaded,
            self.other_errors,
            self.transport_errors,
            self.quota_rejections,
            self.fairness_ratio,
            self.throughput_rps,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.workers,
            self.shards,
            match self.hot_tenant {
                Some(t) => format!(" hot_tenant={t}"),
                None => String::new(),
            }
        )
    }

    /// The journal record `repro compare fairness` gates on via
    /// [`vardelay_obs::journal::compare_latest_fairness`].
    pub fn record(&self, git: &str, unix_ms: u64) -> Value {
        let wall_s = self.wall.as_secs_f64().max(1e-9);
        let mut per_tenant = Value::obj();
        for (tenant, &ok) in self.per_tenant_ok.iter().enumerate() {
            per_tenant = per_tenant.with(&tenant_label(tenant), ok as f64 / wall_s);
        }
        let mut record = Value::obj()
            .with("schema", vardelay_obs::journal::SCHEMA_VERSION)
            .with("experiments", "serve-bench-mt")
            .with("threads", self.workers)
            .with("git", git)
            .with("unix_ms", unix_ms)
            .with("wall_s", self.wall.as_secs_f64())
            .with("tenants", self.tenants as u64)
            .with("clients", self.clients)
            .with("requests", self.requests)
            .with("ok", self.ok)
            .with("overloaded", self.overloaded)
            .with("other_errors", self.other_errors)
            .with("transport_errors", self.transport_errors)
            .with("quota_rejections", self.quota_rejections)
            .with("shards", self.shards)
            .with("fairness_ratio", self.fairness_ratio)
            .with("per_tenant_rps", per_tenant)
            .with("throughput_rps", self.throughput_rps)
            .with("p50_us", self.p50_us)
            .with("p99_us", self.p99_us)
            .with("p999_us", self.p999_us);
        if let Some(hot) = self.hot_tenant {
            record = record.with("hot_tenant", hot as u64);
        }
        record
    }
}

/// Runs the seeded multi-tenant campaign against a server at `addr`.
///
/// Every client runs the same open-loop exponential schedule as
/// [`run_load`], tagged with its tenant's label; the hot tenant (if
/// injected) runs [`HOT_TENANT_FACTOR`]× requests at
/// 1/[`HOT_TENANT_FACTOR`] the gap. Per-tenant completions feed the
/// max/min fairness ratio; all latencies share one histogram for the
/// campaign-wide p99.9.
///
/// # Errors
///
/// Returns an I/O error only when the initial connections fail;
/// failures mid-run are counted as `transport_errors` instead.
pub fn run_mt_load(addr: SocketAddr, config: &MtLoadConfig) -> std::io::Result<MtLoadReport> {
    vardelay_obs::set_enabled(true);
    let latency = Histogram::new();
    let counts = ResponseCounts::default();
    let per_tenant_ok: Vec<AtomicU64> = (0..config.tenants).map(|_| AtomicU64::new(0)).collect();
    let total_clients = config.tenants * config.clients_per_tenant;

    let mut clients: Vec<Client> = Vec::with_capacity(total_clients);
    for _ in 0..total_clients {
        clients.push(Client::connect(addr)?);
    }

    let requests_for = |tenant: usize| {
        if config.hot_tenant == Some(tenant) {
            config.requests_per_client * HOT_TENANT_FACTOR
        } else {
            config.requests_per_client
        }
    };

    let started = Instant::now();
    std::thread::scope(|scope| {
        for (client_index, mut client) in clients.drain(..).enumerate() {
            let latency = &latency;
            let counts = &counts;
            let config = &config;
            let per_tenant_ok = &per_tenant_ok;
            scope.spawn(move || {
                let tenant = client_index / config.clients_per_tenant;
                let label = tenant_label(tenant);
                let hot = config.hot_tenant == Some(tenant);
                let requests = requests_for(tenant);
                let mut rng = SplitMix64::new(task_seed(config.seed, client_index as u64));
                let mean_us = config.mean_gap.as_micros() as f64
                    / if hot { HOT_TENANT_FACTOR as f64 } else { 1.0 };
                let mut scheduled_us = 0.0f64;
                for k in 0..requests {
                    scheduled_us += -mean_us * (1.0 - rng.next_f64()).ln();
                    let scheduled = started + Duration::from_micros(scheduled_us as u64);
                    if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let envelope = Envelope {
                        id: Some((client_index * 1_000_000 + k) as u64),
                        deadline_ms: None,
                        tenant: Some(label.clone()),
                        req_id: None,
                        backend: None,
                        request: request_for(&mut rng, client_index, k),
                    };
                    let sent = Instant::now();
                    match client.call(&envelope) {
                        Ok((_, response)) => {
                            latency.record(sent.elapsed().as_micros() as u64);
                            counts.count(&response);
                            if response.error_kind().is_none() {
                                per_tenant_ok[tenant].fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            counts.transport.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let wall = started.elapsed();

    // One authoritative stats call for the server-side shape (worker
    // count is the gate's comparability key).
    let (workers, shards, quota_rejections) = Client::connect(addr)
        .and_then(|mut c| c.call(&Envelope::new(Request::Stats)))
        .ok()
        .and_then(|(_, response)| match response {
            Response::Stats(stats) => Some((stats.workers, stats.shards, stats.quota_rejections)),
            _ => None,
        })
        .unwrap_or((0, 0, 0));

    let per_tenant_ok: Vec<u64> = per_tenant_ok
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .collect();
    let requests: u64 = (0..config.tenants)
        .map(|t| (requests_for(t) * config.clients_per_tenant) as u64)
        .sum();
    let ok = counts.ok.load(Ordering::Relaxed);
    let overloaded = counts.overloaded.load(Ordering::Relaxed);
    let transport_errors = counts.transport.load(Ordering::Relaxed);
    let completed = requests - transport_errors;
    Ok(MtLoadReport {
        tenants: config.tenants,
        clients: total_clients as u64,
        requests,
        ok,
        overloaded,
        other_errors: completed - ok - overloaded,
        transport_errors,
        fairness_ratio: fairness_ratio(&per_tenant_ok),
        per_tenant_ok,
        wall,
        throughput_rps: ok as f64 / wall.as_secs_f64().max(1e-9),
        p50_us: latency.quantile(0.50),
        p99_us: latency.quantile(0.99),
        p999_us: latency.quantile(0.999),
        workers,
        shards,
        quota_rejections,
        hot_tenant: config.hot_tenant,
    })
}

/// Max/min of per-tenant completion counts; [`STARVED_FAIRNESS`] when
/// any tenant finished with zero, `1.0` for the empty/degenerate case.
fn fairness_ratio(per_tenant_ok: &[u64]) -> f64 {
    let (Some(&max), Some(&min)) = (per_tenant_ok.iter().max(), per_tenant_ok.iter().min()) else {
        return 1.0;
    };
    if min == 0 {
        if max == 0 {
            1.0
        } else {
            STARVED_FAIRNESS
        }
    } else {
        max as f64 / min as f64
    }
}

#[derive(Debug, Default)]
struct ResponseCounts {
    ok: AtomicU64,
    parse_errors: AtomicU64,
    bad_requests: AtomicU64,
    overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    internal_errors: AtomicU64,
    unavailable: AtomicU64,
    batched: AtomicU64,
    transport: AtomicU64,
}

impl ResponseCounts {
    fn count(&self, response: &Response) {
        match response.error_kind() {
            None => {
                self.ok.fetch_add(1, Ordering::Relaxed);
                if let Response::Delay(reply) = response {
                    if reply.batched > 1 {
                        self.batched.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Some(ErrorKind::ParseError) => {
                self.parse_errors.fetch_add(1, Ordering::Relaxed);
            }
            Some(ErrorKind::BadRequest) => {
                self.bad_requests.fetch_add(1, Ordering::Relaxed);
            }
            Some(ErrorKind::Overloaded) => {
                self.overloaded.fetch_add(1, Ordering::Relaxed);
            }
            Some(ErrorKind::DeadlineExceeded) => {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            Some(ErrorKind::Internal) => {
                self.internal_errors.fetch_add(1, Ordering::Relaxed);
            }
            Some(ErrorKind::Unavailable) => {
                self.unavailable.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_mix_is_deterministic_and_mostly_set_delay() {
        let gen = |client: usize| -> Vec<Request> {
            let mut rng = SplitMix64::new(task_seed(EXPERIMENT_SEED, client as u64));
            (0..100).map(|k| request_for(&mut rng, client, k)).collect()
        };
        assert_eq!(gen(0), gen(0));
        assert_ne!(gen(0), gen(1));
        let mix = gen(0);
        let set_delays = mix
            .iter()
            .filter(|r| matches!(r, Request::SetDelay { .. }))
            .count();
        assert!(set_delays >= 90, "{set_delays}");
        for request in &mix {
            if let Request::SetDelay { channel, ps } = request {
                assert!(*channel < 8);
                assert!((0.0..=120.0).contains(ps));
            }
        }
    }

    #[test]
    fn the_record_round_trips_through_the_serve_gate() {
        let report = LoadReport {
            requests: 600,
            ok: 600,
            parse_errors: 0,
            bad_requests: 0,
            overloaded: 0,
            deadline_exceeded: 0,
            internal_errors: 0,
            unavailable: 0,
            batched: 12,
            transport_errors: 0,
            wall: Duration::from_millis(400),
            throughput_rps: 1500.0,
            p50_us: 511,
            p95_us: 1023,
            p99_us: 2047,
            workers: 4,
        };
        let record = report.record("deadbeef", 1_700_000_000_000);
        let reparsed = Value::parse(&record.render()).expect("record renders valid JSON");
        assert_eq!(
            reparsed.get("experiments").and_then(Value::as_str),
            Some("serve-bench")
        );
        let records = vec![record.clone(), record];
        let cmp = vardelay_obs::journal::compare_latest_serve(
            &records,
            vardelay_obs::journal::SERVE_THRESHOLD,
        )
        .expect("two identical records compare");
        assert!(!cmp.regressed, "{cmp}");
    }

    #[test]
    fn the_fairness_ratio_is_max_over_min_with_a_starvation_sentinel() {
        assert_eq!(fairness_ratio(&[]), 1.0);
        assert_eq!(fairness_ratio(&[0, 0, 0]), 1.0);
        assert_eq!(fairness_ratio(&[40, 40, 40]), 1.0);
        assert_eq!(fairness_ratio(&[80, 40]), 2.0);
        assert_eq!(fairness_ratio(&[40, 0, 40]), STARVED_FAIRNESS);
    }

    fn mt_report(fairness: f64, hot: Option<usize>) -> MtLoadReport {
        MtLoadReport {
            tenants: 16,
            clients: 32,
            requests: 1280,
            ok: 1280,
            overloaded: 0,
            other_errors: 0,
            transport_errors: 0,
            per_tenant_ok: vec![80; 16],
            fairness_ratio: fairness,
            wall: Duration::from_secs(2),
            throughput_rps: 640.0,
            p50_us: 511,
            p99_us: 2047,
            p999_us: 4095,
            workers: 4,
            shards: 4,
            quota_rejections: 0,
            hot_tenant: hot,
        }
    }

    #[test]
    fn the_mt_record_round_trips_through_the_fairness_gate() {
        let record = mt_report(1.12, None).record("deadbeef", 1_700_000_000_000);
        let reparsed = Value::parse(&record.render()).expect("record renders valid JSON");
        assert_eq!(
            reparsed.get("experiments").and_then(Value::as_str),
            Some("serve-bench-mt")
        );
        assert!(
            reparsed
                .get("per_tenant_rps")
                .and_then(|v| v.get("t15"))
                .is_some(),
            "per-tenant throughput must be in the record"
        );
        let records = vec![record.clone(), record];
        let cmp = vardelay_obs::journal::compare_latest_fairness(
            &records,
            vardelay_obs::journal::SERVE_THRESHOLD,
            vardelay_obs::journal::FAIRNESS_THRESHOLD,
        )
        .expect("two identical records compare");
        assert!(!cmp.regressed, "{cmp}");
    }

    #[test]
    fn a_hot_tenant_injection_trips_the_fairness_gate() {
        let baseline = mt_report(1.08, None).record("deadbeef", 1_700_000_000_000);
        let mut starved = mt_report(9.7, Some(0));
        starved.per_tenant_ok[0] = 800;
        let injected = starved.record("deadbeef", 1_700_000_100_000);
        assert_eq!(injected.get("hot_tenant").and_then(Value::as_u64), Some(0));
        let records = vec![baseline, injected];
        let cmp = vardelay_obs::journal::compare_latest_fairness(
            &records,
            vardelay_obs::journal::SERVE_THRESHOLD,
            vardelay_obs::journal::FAIRNESS_THRESHOLD,
        )
        .expect("records compare");
        assert!(cmp.regressed, "fairness 9.7 must trip the 2.0 gate: {cmp}");
        assert!(cmp.to_string().contains("REGRESSED"), "{cmp}");
    }
}
