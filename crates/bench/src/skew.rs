//! Experiments E9 (Fig. 2 — bus deskew) and E10 (Fig. 1 — clock-to-eye
//! alignment).

use crate::EXPERIMENT_SEED;
use vardelay_ate::{DeskewEngine, DeskewOutcome, DutReceiver, ParallelBus};
use vardelay_core::ModelConfig;
use vardelay_measure::Series;
use vardelay_runner::Runner;
use vardelay_units::{BitRate, Time};

/// Fig. 2 — deskews a `width`-channel 6.4 Gb/s bus with ±80 ps intrinsic
/// skew using ATE 100 ps steps plus one vardelay circuit per channel.
pub fn fig2_deskew(width: usize) -> DeskewOutcome {
    fig2_deskew_with(Runner::global(), width)
}

/// [`fig2_deskew`] on an explicit [`Runner`] (the deskew loop's serial
/// RNG draws happen in a channel-ordered prepass, so the outcome is
/// bit-identical at every thread count).
pub fn fig2_deskew_with(runner: Runner, width: usize) -> DeskewOutcome {
    let mut bus = ParallelBus::with_random_skew(
        width,
        BitRate::from_gbps(6.4),
        Time::from_ps(80.0),
        EXPERIMENT_SEED,
    );
    DeskewEngine::new(&ModelConfig::paper_prototype(), EXPERIMENT_SEED)
        .with_runner(runner)
        .run(&mut bus)
        .expect("a healthy bus deskews")
}

/// The Fig. 1 result: the receiver's timing scan and the chosen phase.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentResult {
    /// Violation rate versus sampling phase across one UI.
    pub scan: Series,
    /// The phase the alignment procedure picks (eye centre).
    pub best_phase: Time,
    /// The unit interval of the scanned signal.
    pub ui: Time,
}

/// Fig. 1 — scans a deskewed 6.4 Gb/s channel with an HT3-class receiver
/// and aligns the clock to the centre of the data eye.
pub fn fig1_eye_alignment() -> AlignmentResult {
    let outcome = fig2_deskew(4);
    let stream = &outcome.corrected_streams[1];
    let rx = DutReceiver::ht3();
    AlignmentResult {
        scan: rx.eye_scan(stream, 64),
        best_phase: rx.best_phase(stream, 64),
        ui: stream.ui(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_deskew_converges() {
        let outcome = fig2_deskew(4);
        assert!(outcome.before_peak_to_peak > Time::from_ps(20.0));
        assert!(
            outcome.after_peak_to_peak < Time::from_ps(5.0),
            "after {}",
            outcome.after_peak_to_peak
        );
    }

    #[test]
    fn fig1_alignment_lands_in_the_open_eye() {
        let r = fig1_eye_alignment();
        let frac = r.best_phase / r.ui;
        assert!((0.15..0.85).contains(&frac), "frac {frac}");
        // The chosen phase has zero violations.
        let rate = r
            .scan
            .interpolate(r.best_phase.as_ps())
            .expect("scan is non-empty");
        assert_eq!(rate, 0.0);
    }
}
