//! Per-experiment checkpoints for resumable campaigns (DESIGN.md §11).
//!
//! `repro` writes a checkpoint file after each experiment completes:
//! the experiment's name, its **input fingerprint** (the same FNV-1a
//! family the PR 1 characterization cache keys on — everything that can
//! change the experiment's bytes), and the name + content digest of
//! every CSV the experiment produced. `repro all --resume` re-runs only
//! the experiments whose checkpoint is missing or stale:
//! [`Checkpoint::matches`] demands both that the recorded fingerprint
//! equals the current inputs *and* that every recorded CSV still sits on
//! disk with its recorded digest. Because every experiment is a pure
//! function of its fingerprinted inputs, skipping a matched experiment
//! leaves the final CSV set byte-identical to an uninterrupted run —
//! the kill-and-resume chaos gate `cmp`s exactly that.
//!
//! Checkpoints live under `target/repro/checkpoints/<experiment>.json`
//! and are written through [`crate::artifact::write_atomic`], so a crash
//! mid-checkpoint leaves no checkpoint (the experiment re-runs — safe)
//! rather than a torn one (which would skip a half-finished experiment —
//! unsafe).

use std::io;
use std::path::{Path, PathBuf};

use vardelay_analog::Fingerprint;
use vardelay_obs::json::Value;

use crate::artifact;

/// Version stamped into every checkpoint; bumping it invalidates all
/// existing checkpoints (they simply stop matching).
pub const CHECKPOINT_SCHEMA: u64 = 1;

/// One CSV an experiment produced: file name (relative to the output
/// dir) and FNV-1a content digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvRecord {
    /// File name under `target/repro/` (e.g. `fig09_coarse_taps.csv`).
    pub file: String,
    /// [`artifact::digest`] of the file's contents at write time.
    pub digest: u64,
}

/// A completed experiment's checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Experiment name (`fig7`, `ablation`, …).
    pub experiment: String,
    /// Input fingerprint at completion time (see [`fingerprint`]).
    pub fingerprint: u64,
    /// Every CSV the experiment wrote, in write order.
    pub csvs: Vec<CsvRecord>,
}

/// The checkpoint directory under an output dir.
pub fn checkpoint_dir(output_dir: &Path) -> PathBuf {
    output_dir.join("checkpoints")
}

/// The input fingerprint of an experiment: everything that can change
/// its output bytes. Today that is the experiment's name, the campaign
/// seed, the checkpoint schema, and whether fault injection is live
/// (`repro faults` writes a different CSV set with the kill switch
/// thrown). Thread count is deliberately *not* folded in — outputs are
/// pinned byte-identical at every thread count (DESIGN.md §8).
pub fn fingerprint(experiment: &str) -> u64 {
    let mut f = Fingerprint::new();
    f.push_str(experiment)
        .push_u64(crate::EXPERIMENT_SEED)
        .push_u64(CHECKPOINT_SCHEMA)
        .push_u64(u64::from(vardelay_faults::enabled()));
    f.finish()
}

/// `u64` ⇄ JSON round-trip as a hex string: the journal's JSON numbers
/// are `f64`, which cannot carry a full 64-bit hash exactly.
fn hex(v: u64) -> String {
    format!("{v:#018x}")
}

fn from_hex(v: &Value) -> Option<u64> {
    let s = v.as_str()?;
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

impl Checkpoint {
    /// The checkpoint's file path under `dir`.
    pub fn path(dir: &Path, experiment: &str) -> PathBuf {
        dir.join(format!("{experiment}.json"))
    }

    fn to_json(&self) -> Value {
        Value::obj()
            .with("schema", CHECKPOINT_SCHEMA)
            .with("experiment", self.experiment.as_str())
            .with("fingerprint", hex(self.fingerprint))
            .with(
                "csvs",
                Value::Arr(
                    self.csvs
                        .iter()
                        .map(|c| {
                            Value::obj()
                                .with("file", c.file.as_str())
                                .with("digest", hex(c.digest))
                        })
                        .collect(),
                ),
            )
    }

    fn from_json(v: &Value) -> Option<Checkpoint> {
        if v.get("schema").and_then(Value::as_u64) != Some(CHECKPOINT_SCHEMA) {
            return None;
        }
        let experiment = v.get("experiment")?.as_str()?.to_owned();
        let fingerprint = from_hex(v.get("fingerprint")?)?;
        let csvs = v
            .get("csvs")?
            .as_arr()?
            .iter()
            .map(|c| {
                Some(CsvRecord {
                    file: c.get("file")?.as_str()?.to_owned(),
                    digest: from_hex(c.get("digest")?)?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Checkpoint {
            experiment,
            fingerprint,
            csvs,
        })
    }

    /// Atomically writes this checkpoint under `dir` (created if
    /// missing).
    ///
    /// # Errors
    ///
    /// The underlying I/O error; callers report which experiment lost
    /// its checkpoint and keep going (the experiment will simply re-run
    /// on resume).
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = Checkpoint::path(dir, &self.experiment);
        artifact::write_atomic(&path, &(self.to_json().render() + "\n"))?;
        Ok(path)
    }

    /// Loads `experiment`'s checkpoint from `dir`. Missing, torn, or
    /// unparseable files (and stale schemas) read as `None` — "no
    /// checkpoint" always degrades to "re-run the experiment".
    pub fn load(dir: &Path, experiment: &str) -> Option<Checkpoint> {
        let content = std::fs::read_to_string(Checkpoint::path(dir, experiment)).ok()?;
        Checkpoint::from_json(&Value::parse(&content).ok()?)
    }

    /// Whether this checkpoint still certifies a completed experiment:
    /// the recorded input fingerprint equals `current_fingerprint` and
    /// every recorded CSV exists under `output_dir` with its recorded
    /// content digest. Any mismatch — edited CSV, deleted file, changed
    /// seed or fault-switch state — demands a re-run.
    pub fn matches(&self, current_fingerprint: u64, output_dir: &Path) -> bool {
        self.fingerprint == current_fingerprint
            && self.csvs.iter().all(|c| {
                std::fs::read_to_string(output_dir.join(&c.file))
                    .is_ok_and(|contents| artifact::digest(&contents) == c.digest)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("vardelay_ckpt_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(out: &Path) -> Checkpoint {
        let csv = "tap,ps\n0,0.0\n";
        std::fs::write(out.join("fig09.csv"), csv).unwrap();
        Checkpoint {
            experiment: "fig9".to_owned(),
            fingerprint: fingerprint("fig9"),
            csvs: vec![CsvRecord {
                file: "fig09.csv".to_owned(),
                digest: artifact::digest(csv),
            }],
        }
    }

    #[test]
    fn save_load_round_trips() {
        let out = scratch("roundtrip");
        let dir = checkpoint_dir(&out);
        let ck = sample(&out);
        let path = ck.save(&dir).unwrap();
        assert!(path.is_file());
        assert!(!crate::artifact::tmp_path(&path).exists());
        assert_eq!(Checkpoint::load(&dir, "fig9").unwrap(), ck);
        assert!(Checkpoint::load(&dir, "fig7").is_none(), "missing → None");
        std::fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn matches_demands_fingerprint_and_on_disk_digests() {
        let out = scratch("matches");
        let ck = sample(&out);
        assert!(ck.matches(fingerprint("fig9"), &out));
        // A different input fingerprint (e.g. new seed) invalidates.
        assert!(!ck.matches(fingerprint("fig9") ^ 1, &out));
        // Tampering with the CSV invalidates.
        std::fs::write(out.join("fig09.csv"), "tap,ps\n0,9.9\n").unwrap();
        assert!(!ck.matches(fingerprint("fig9"), &out));
        // Deleting it invalidates too.
        std::fs::remove_file(out.join("fig09.csv")).unwrap();
        assert!(!ck.matches(fingerprint("fig9"), &out));
        std::fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn torn_checkpoint_reads_as_none() {
        let out = scratch("torn");
        let dir = checkpoint_dir(&out);
        let ck = sample(&out);
        let path = ck.save(&dir).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(Checkpoint::load(&dir, "fig9"), None);
        std::fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn fingerprint_separates_experiments_and_fault_state() {
        assert_ne!(fingerprint("fig7"), fingerprint("fig9"));
        vardelay_faults::set_enabled(true);
        let on = fingerprint("faults");
        vardelay_faults::set_enabled(false);
        let off = fingerprint("faults");
        vardelay_faults::set_enabled(true);
        assert_ne!(on, off, "kill-switch state is part of the inputs");
    }
}
