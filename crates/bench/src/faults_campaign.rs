//! The fault-injection campaign (`repro faults`).
//!
//! Injects every fault class from the DESIGN.md §10 taxonomy through
//! `vardelay-faults` and scores whether the corresponding detector — the
//! circuit self-test ([`vardelay_core::selftest`]) or the degraded-mode
//! deskew loop ([`vardelay_ate::DeskewEngine::run_degraded`]) — catches
//! it. The campaign is the chaos smoke test CI runs: every injected fault
//! must be detected, and degraded deskew must still align the healthy
//! channels of an 8-channel HyperTransport-3 bus with two dead drivers.
//!
//! Determinism: every scenario derives its randomness from
//! [`FaultPlan::seed_for`] on a fixed lane index, scenarios are collected
//! by index, and all floating-point detail strings use fixed precision —
//! the campaign CSV is byte-identical at every thread count.

use crate::EXPERIMENT_SEED;
use std::sync::Arc;
use vardelay_ate::scenario::BusScenario;
use vardelay_ate::{DegradedPolicy, DeskewEngine};
use vardelay_core::selftest::{check_calibration, test_dac};
use vardelay_core::{CoarseDelaySection, CombinedDelayCircuit, FineDelayLine, ModelConfig};
use vardelay_faults::{
    corrupt_table, FaultKind, FaultPlan, FaultyDac, MuxSelectFault, TransientFaults,
};
use vardelay_measure::Table;
use vardelay_runner::Runner;
use vardelay_units::{Time, Voltage};

/// One scenario of the campaign: a named fault group injected together.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    /// Stable scenario name (CSV key).
    pub name: &'static str,
    /// The faults injected in this scenario.
    pub faults: Vec<FaultKind>,
}

/// The outcome of injecting one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultOutcome {
    /// Scenario name.
    pub scenario: String,
    /// `label(param)` of every injected fault, `+`-joined.
    pub injected: String,
    /// Whether the detector caught the fault.
    pub detected: bool,
    /// For driver faults: whether degraded deskew still met the healthy
    /// channels' target. `None` where degraded mode is not involved.
    pub degraded_ok: Option<bool>,
    /// Deterministic human-readable evidence.
    pub detail: String,
}

/// The full campaign result.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCampaign {
    /// Per-scenario outcomes, in scenario order.
    pub outcomes: Vec<FaultOutcome>,
    /// Whether injection was enabled (the `VARDELAY_FAULTS` kill switch).
    pub injection_enabled: bool,
}

impl FaultCampaign {
    /// Number of scenarios whose fault was detected.
    pub fn detected(&self) -> usize {
        self.outcomes.iter().filter(|o| o.detected).count()
    }

    /// Number of scenarios run (every one is expected to be detected).
    pub fn expected(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether every degraded-mode scenario met its alignment target.
    pub fn degraded_all_ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.degraded_ok.unwrap_or(true))
    }

    /// The campaign summary line (CI greps this).
    pub fn summary(&self) -> String {
        if !self.injection_enabled {
            return "faults: injection disabled (VARDELAY_FAULTS=0); campaign skipped".to_owned();
        }
        format!(
            "faults: detected {}/{} injected faults, degraded deskew {}",
            self.detected(),
            self.expected(),
            if self.degraded_all_ok() {
                "ok"
            } else {
                "FAILED"
            }
        )
    }

    /// Renders the campaign as a report table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Fault-injection campaign",
            &["scenario", "injected", "detected", "degraded_ok", "detail"],
        );
        for o in &self.outcomes {
            table.push_owned_row(vec![
                o.scenario.clone(),
                o.injected.clone(),
                if o.detected { "yes" } else { "NO" }.to_owned(),
                match o.degraded_ok {
                    Some(true) => "yes".to_owned(),
                    Some(false) => "NO".to_owned(),
                    None => "-".to_owned(),
                },
                o.detail.clone(),
            ]);
        }
        table
    }
}

/// The standard campaign plan: one scenario per fault class in the
/// taxonomy, rooted at `seed`.
pub fn standard_scenarios() -> Vec<FaultScenario> {
    vec![
        FaultScenario {
            name: "dac_stuck_low",
            faults: vec![FaultKind::DacStuckLow { bit: 9 }],
        },
        FaultScenario {
            name: "dac_stuck_high",
            faults: vec![FaultKind::DacStuckHigh { bit: 2 }],
        },
        FaultScenario {
            name: "dac_flaky_bit",
            faults: vec![FaultKind::DacFlakyBit {
                bit: 6,
                probability: 0.25,
            }],
        },
        FaultScenario {
            name: "calibration_spike",
            faults: vec![FaultKind::CalibrationSpike {
                point: 4,
                spike: Time::from_ps(80.0),
            }],
        },
        FaultScenario {
            name: "mux_select_stuck",
            faults: vec![FaultKind::MuxSelectStuck {
                line: 1,
                level: true,
            }],
        },
        FaultScenario {
            name: "tap_deviation",
            faults: vec![FaultKind::TapDeviation {
                tap: 2,
                extra: Time::from_ps(12.0),
            }],
        },
        FaultScenario {
            name: "dead_drivers",
            faults: vec![
                FaultKind::DeadDriver { channel: 2 },
                FaultKind::DeadDriver { channel: 5 },
            ],
        },
        FaultScenario {
            name: "weak_driver",
            faults: vec![FaultKind::WeakDriver {
                channel: 1,
                fail_attempts: 2,
            }],
        },
        FaultScenario {
            name: "temp_step",
            faults: vec![FaultKind::TempStep { delta_k: 40.0 }],
        },
    ]
}

/// Runs the standard campaign on the global [`Runner`].
pub fn faults_campaign() -> FaultCampaign {
    faults_campaign_with(Runner::global())
}

/// Runs the standard campaign, fanning scenarios out on `runner`.
///
/// Every scenario is a pure function of its plan-derived seed, so the
/// result (and its CSV) is identical at every thread count.
pub fn faults_campaign_with(runner: Runner) -> FaultCampaign {
    let scenarios = standard_scenarios();
    let mut plan = FaultPlan::new(EXPERIMENT_SEED);
    for s in &scenarios {
        for f in &s.faults {
            plan = plan.with(*f);
        }
    }
    if plan.active().is_empty() {
        return FaultCampaign {
            outcomes: Vec::new(),
            injection_enabled: false,
        };
    }
    let outcomes = runner.run(scenarios.len(), |i| {
        run_scenario(&scenarios[i], plan.seed_for(i as u64))
    });
    FaultCampaign {
        outcomes,
        injection_enabled: true,
    }
}

/// Injects one scenario and runs its detector. Everything inside uses a
/// serial runner — the campaign parallelizes *across* scenarios.
fn run_scenario(scenario: &FaultScenario, seed: u64) -> FaultOutcome {
    let injected = scenario
        .faults
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("+");
    let (detected, degraded_ok, detail) = match scenario.faults[0] {
        FaultKind::DacStuckLow { .. }
        | FaultKind::DacStuckHigh { .. }
        | FaultKind::DacFlakyBit { .. } => detect_dac_fault(&scenario.faults, seed),
        FaultKind::CalibrationSpike { point, spike } => detect_calibration_spike(point, spike),
        FaultKind::MuxSelectStuck { .. } => detect_mux_fault(&scenario.faults),
        FaultKind::TapDeviation { tap, extra } => detect_tap_deviation(tap, extra),
        FaultKind::DeadDriver { .. } | FaultKind::WeakDriver { .. } => {
            detect_driver_faults(&scenario.faults)
        }
        FaultKind::TempStep { delta_k } => detect_temp_step(delta_k),
        // Backend-specific faults are scored by the cross-backend
        // campaign (`repro backends`), never by this scenario list.
        FaultKind::VernierChainBubble { .. } | FaultKind::DllLockLoss => (
            false,
            None,
            "backend-specific fault; scored by the backends campaign".to_owned(),
        ),
    };
    FaultOutcome {
        scenario: scenario.name.to_owned(),
        injected,
        detected,
        degraded_ok,
        detail,
    }
}

fn detect_dac_fault(faults: &[FaultKind], seed: u64) -> (bool, Option<bool>, String) {
    use vardelay_core::VctrlDac;
    let mut dac = FaultyDac::from_plan(VctrlDac::twelve_bit(), faults, seed);
    let health = test_dac(&mut dac);
    let detected = faults.iter().all(|f| match *f {
        FaultKind::DacStuckLow { bit } => health.stuck_low & (1 << bit) != 0,
        FaultKind::DacStuckHigh { bit } => health.stuck_high & (1 << bit) != 0,
        FaultKind::DacFlakyBit { .. } => health.flaky != 0,
        _ => true,
    });
    let detail = format!(
        "stuck_low={:#06x} stuck_high={:#06x} flaky={:#06x}",
        health.stuck_low, health.stuck_high, health.flaky
    );
    (detected, None, detail)
}

fn detect_calibration_spike(point: usize, spike: Time) -> (bool, Option<bool>, String) {
    let mut circuit = CombinedDelayCircuit::new(&ModelConfig::paper_prototype().quiet(), 1);
    let clean = circuit.calibrate().clone();
    let corrupted = corrupt_table(&clean, point, spike);
    let health = check_calibration(&corrupted, Time::from_ps(15.0));
    let clean_health = check_calibration(&clean, Time::from_ps(15.0));
    let detected = !health.is_healthy() && clean_health.is_healthy();
    let detail = format!(
        "flat {}/{} points (clean {}/{})",
        health.flat_points, health.points, clean_health.flat_points, clean_health.points
    );
    (detected, None, detail)
}

fn detect_mux_fault(faults: &[FaultKind]) -> (bool, Option<bool>, String) {
    let fault = MuxSelectFault::from_plan(faults);
    let coarse = CoarseDelaySection::new(&ModelConfig::paper_prototype().quiet(), 1);
    // A tap sweep through broken select lines realizes fewer than four
    // distinct delays.
    let mut realized: Vec<i64> = (0..4)
        .map(|t| (coarse.tap_delay(fault.effective_tap(t)).as_ps() * 1000.0).round() as i64)
        .collect();
    realized.sort_unstable();
    realized.dedup();
    let detected = realized.len() < 4;
    let reachable = fault
        .reachable_taps()
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join("+");
    let detail = format!(
        "reachable taps {reachable}; {} distinct delays",
        realized.len()
    );
    (detected, None, detail)
}

fn detect_tap_deviation(tap: usize, extra: Time) -> (bool, Option<bool>, String) {
    let cfg = ModelConfig::paper_prototype().quiet();
    let broken = FaultKind::TapDeviation { tap, extra }.apply_to_config(&cfg);
    let healthy_delay = CoarseDelaySection::new(&cfg, 1).tap_delay(tap);
    let broken_delay = CoarseDelaySection::new(&broken, 1).tap_delay(tap);
    let deviation = (broken_delay - healthy_delay).abs();
    // The paper's own instance deviates a few ps from design (Fig. 9);
    // flag anything beyond that manufacturing band.
    let detected = deviation > Time::from_ps(8.0);
    let detail = format!(
        "tap {tap}: {:.1} ps vs designed-instance {:.1} ps",
        broken_delay.as_ps(),
        healthy_delay.as_ps()
    );
    (detected, None, detail)
}

fn detect_driver_faults(faults: &[FaultKind]) -> (bool, Option<bool>, String) {
    let transients = TransientFaults::from_plan(faults);
    let dead = transients.dead_channels();
    let hook: vardelay_ate::MeasurementFaultHook = {
        let transients = transients.clone();
        Arc::new(move |channel, attempt| transients.fails(channel, attempt))
    };
    let engine = DeskewEngine::new(&ModelConfig::paper_prototype(), EXPERIMENT_SEED)
        .with_runner(Runner::serial())
        .with_measurement_faults(hook);

    // First pass with no retry budget: every faulty driver (dead or
    // weak) must surface as a quarantine — that is the detection.
    let no_retry = DegradedPolicy {
        max_measure_attempts: 1,
        ..DegradedPolicy::default()
    };
    let mut bus = BusScenario::hypertransport3(EXPERIMENT_SEED);
    let strict = engine.run_degraded(bus.bus_mut(), no_retry);
    let faulty_channels: Vec<usize> = {
        let mut all: Vec<usize> = faults
            .iter()
            .filter_map(|f| match *f {
                FaultKind::DeadDriver { channel } | FaultKind::WeakDriver { channel, .. } => {
                    Some(channel)
                }
                _ => None,
            })
            .collect();
        all.sort_unstable();
        all
    };
    let strictly_detected = strict
        .as_ref()
        .map(|o| o.quarantined_channels() == faulty_channels)
        .unwrap_or(false);

    // Second pass with the default retry budget: weak drivers recover;
    // only the truly dead stay quarantined, and the healthy remainder
    // must still meet the paper's target.
    let mut bus = BusScenario::hypertransport3(EXPERIMENT_SEED);
    match engine.run_degraded(bus.bus_mut(), DegradedPolicy::default()) {
        Ok(outcome) => {
            let detected = strictly_detected && outcome.quarantined_channels() == dead;
            let degraded_ok = outcome.meets_5ps_target()
                && outcome.healthy_count() == bus.bus().width() - dead.len();
            let quarantined = outcome
                .quarantined_channels()
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join("+");
            let detail = format!(
                "quarantined [{quarantined}]; healthy {} aligned to {:.2} ps",
                outcome.healthy_count(),
                outcome.after_peak_to_peak.as_ps()
            );
            (detected, Some(degraded_ok), detail)
        }
        Err(e) => (false, Some(false), format!("degraded run failed: {e}")),
    }
}

fn detect_temp_step(delta_k: f64) -> (bool, Option<bool>, String) {
    let cold = ModelConfig::paper_prototype().quiet();
    let hot = FaultKind::TempStep { delta_k }.apply_to_config(&cold);

    // Calibrate cold, operate hot on the stale table — the §4 drift
    // experiment. The realized-delay error against the programmed target
    // is the detection signal; recalibrating must shrink it.
    let mut reference = CombinedDelayCircuit::new(&cold, 4);
    let cold_cal = reference.calibrate().clone();
    let mut circuit = CombinedDelayCircuit::new(&hot, 4);
    circuit.install_calibration(cold_cal);
    let target = Time::from_ps(60.0);
    let setting = circuit.set_delay(target).expect("target in range");
    let mut probe = FineDelayLine::new(&hot, 4);
    probe.set_vctrl(setting.vctrl);
    let hot_delay = probe.measure_delay(Time::from_ps(320.0));
    probe.set_vctrl(Voltage::ZERO);
    let hot_zero = probe.measure_delay(Time::from_ps(320.0));
    let realized = circuit.coarse().tap_delay(setting.tap) + (hot_delay - hot_zero);
    let stale_error = (realized - target).abs();

    let mut fresh = CombinedDelayCircuit::new(&hot, 4);
    fresh.calibrate();
    let fresh_setting = fresh.set_delay(target).expect("target in range");
    let mut fresh_probe = FineDelayLine::new(&hot, 4);
    fresh_probe.set_vctrl(fresh_setting.vctrl);
    let fresh_delay = fresh_probe.measure_delay(Time::from_ps(320.0));
    fresh_probe.set_vctrl(Voltage::ZERO);
    let fresh_zero = fresh_probe.measure_delay(Time::from_ps(320.0));
    let fresh_realized = fresh.coarse().tap_delay(fresh_setting.tap) + (fresh_delay - fresh_zero);
    let fresh_error = (fresh_realized - target).abs();

    let detected = stale_error > Time::from_ps(0.5) && stale_error > fresh_error * 2.0;
    let detail = format!(
        "stale error {:.2} ps vs recalibrated {:.2} ps at +{delta_k} K",
        stale_error.as_ps(),
        fresh_error.as_ps()
    );
    (detected, None, detail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The kill switch is process-global; tests that flip it must not
    /// interleave.
    static ENABLE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn every_standard_fault_is_detected() {
        let _guard = ENABLE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        vardelay_faults::set_enabled(true);
        let campaign = faults_campaign_with(Runner::serial());
        assert!(campaign.injection_enabled);
        assert_eq!(
            campaign.detected(),
            campaign.expected(),
            "undetected scenarios: {:?}",
            campaign
                .outcomes
                .iter()
                .filter(|o| !o.detected)
                .collect::<Vec<_>>()
        );
        assert!(campaign.degraded_all_ok(), "{:?}", campaign.outcomes);
        assert_eq!(campaign.expected(), standard_scenarios().len());
        assert!(campaign.summary().contains("detected 9/9"));
    }

    #[test]
    fn campaign_is_byte_identical_at_every_thread_count() {
        let _guard = ENABLE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        vardelay_faults::set_enabled(true);
        let serial = faults_campaign_with(Runner::serial());
        for threads in [2, 4] {
            let parallel = faults_campaign_with(Runner::new(threads));
            assert_eq!(
                serial.table().to_csv(),
                parallel.table().to_csv(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn kill_switch_skips_the_campaign() {
        let _guard = ENABLE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        vardelay_faults::set_enabled(false);
        let campaign = faults_campaign_with(Runner::serial());
        vardelay_faults::set_enabled(true);
        assert!(!campaign.injection_enabled);
        assert_eq!(campaign.expected(), 0);
        assert!(campaign.summary().contains("skipped"));
    }
}
