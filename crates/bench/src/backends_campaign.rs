//! `repro backends` — the cross-backend comparison campaign
//! (DESIGN.md §17).
//!
//! Builds every [`BackendKind`] behind the same `dyn` [`DelayBackend`]
//! trait, calibrates each one, and measures the contract every backend
//! advertises through [`BackendCaps`]: programmable resolution, total
//! range, monotonicity of the measured transfer curve, worst observed
//! retarget dead time, and solve accuracy (every in-range target lands
//! within one advertised LSB; every out-of-range target draws a *typed*
//! [`SetDelayError::OutOfRange`]). On top of the static contract the
//! campaign runs a deskew-under-faults leg per backend: an 8-channel
//! bus with seeded static skews is aligned through the trait, the
//! backend-specific fault (Vernier chain bubble, DLL lock loss, circuit
//! temperature step) is injected on one channel, a
//! [`BackendSentinel`] sweep must *detect* it, and a recalibration must
//! heal it back to the quiet-bus residual.
//!
//! The circuit row doubles as the refactor guard: its calibration CSV,
//! range, resolution, and solve settings are diffed byte-for-byte
//! against a [`CombinedDelayCircuit`] driven directly (same config,
//! same seed, same serial runner) — any divergence sets
//! `reference_drift` and turns `repro compare backends` red via
//! [`vardelay_obs::journal::compare_latest_backends`].
//!
//! Determinism: every per-backend score runs on a serial runner with
//! seeds derived from [`EXPERIMENT_SEED`]; the campaign fans out only
//! *across* backends, and all CSV floats use fixed precision — the
//! `backends_compare.csv` artifact is byte-identical at every thread
//! count.

use std::time::{Duration, Instant};

use vardelay_backend::{make_backend, BackendKind, BackendSentinel, DelayBackend};
use vardelay_core::{CombinedDelayCircuit, ModelConfig, SentinelConfig, SetDelayError};
use vardelay_faults::FaultKind;
use vardelay_measure::Table;
use vardelay_obs::json::Value;
use vardelay_runner::{task_seed, Runner};
use vardelay_siggen::SplitMix64;
use vardelay_units::Time;

use crate::EXPERIMENT_SEED;

/// Channels in the deskew-under-faults bus (HyperTransport-3 width,
/// matching the paper's Fig. 2 scenario).
const BUS_WIDTH: usize = 8;
/// Seeded in-range solve targets per backend.
const SOLVE_TARGETS: usize = 24;
/// Dense monotonicity sweep points across the control span.
const SWEEP_POINTS: usize = 2048;
/// Largest programmed deskew/solve target, chosen inside every
/// backend's advertised range.
const TARGET_SPAN_PS: f64 = 40.0;
/// Sentinel residual above which a fault counts as detected. The quiet
/// behavioral models reproduce their own tables bit for bit, so any
/// honest residual is fault evidence; 0.25 ps sits well under the
/// smallest injected signature (a collapsed ~0.67 ps Vernier bin).
const DETECT_THRESHOLD: Time = Time::from_ps(0.25);

/// Campaign shape. [`Default`] is what CI runs.
#[derive(Debug, Clone)]
pub struct BackendsConfig {
    /// Root seed for skews and solve targets.
    pub seed: u64,
}

impl Default for BackendsConfig {
    fn default() -> Self {
        BackendsConfig {
            seed: EXPERIMENT_SEED,
        }
    }
}

impl BackendsConfig {
    /// The default campaign (env knobs may grow here; the seed is
    /// deliberately pinned so the CSV stays comparable run-over-run).
    pub fn from_env() -> Self {
        BackendsConfig::default()
    }
}

/// Everything measured for one backend kind.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendRow {
    /// The hardware family.
    pub kind: BackendKind,
    /// Measured mean programmable step (one control-DAC LSB), ps.
    pub resolution_ps: f64,
    /// Advertised worst-case step, ps (the contract bound).
    pub cap_resolution_ps: f64,
    /// Measured total programmable range, ps.
    pub range_ps: f64,
    /// Advertised minimum range, ps (the contract bound).
    pub cap_min_range_ps: f64,
    /// Strict inversions found in the dense measured sweep.
    pub monotone_violations: u64,
    /// Worst dead time observed across the solve script and the
    /// far-retarget stress, ns.
    pub dead_time_ns: f64,
    /// Advertised worst-case dead time, ns (the contract bound).
    pub cap_dead_time_ns: f64,
    /// Solves whose `|predicted_error|` exceeded one advertised LSB.
    pub solve_violations: u64,
    /// Worst in-range solve residual, ps.
    pub max_solve_residual_ps: f64,
    /// Whether an out-of-range target drew the typed error.
    pub out_of_range_typed: bool,
    /// The backend-specific fault injected in the deskew leg
    /// (`"-"` when injection is masked).
    pub fault: String,
    /// Whether the sentinel sweep caught the injected fault.
    pub fault_detected: bool,
    /// Whether recalibration healed the faulted channel (sentinel
    /// residual back under threshold, solve back within one LSB).
    pub fault_healed: bool,
    /// Quiet-bus deskew residual (pk-pk solve error across channels), ps.
    pub deskew_quiet_ps: f64,
    /// Deskew residual after the fault was detected and healed, ps.
    pub deskew_faulted_ps: f64,
    /// Whether this row met every contract leg.
    pub contract_ok: bool,
}

/// The full campaign result.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendsReport {
    /// One row per [`BackendKind`], in `BackendKind::ALL` order.
    pub rows: Vec<BackendRow>,
    /// Whether fault injection was armed ([`vardelay_faults::enabled`]).
    pub faults_enabled: bool,
    /// Whether the circuit row diverged from the directly-driven
    /// [`CombinedDelayCircuit`] baseline in any byte.
    pub reference_drift: bool,
    /// Wall clock of the whole campaign.
    pub wall: Duration,
}

impl BackendsReport {
    /// Rows that failed their contract.
    pub fn contract_violations(&self) -> u64 {
        self.rows.iter().filter(|r| !r.contract_ok).count() as u64
    }

    /// Faults detected / expected across rows (0/0 when masked).
    pub fn faults_detected(&self) -> u64 {
        if !self.faults_enabled {
            return 0;
        }
        self.rows
            .iter()
            .filter(|r| r.fault_detected && r.fault_healed)
            .count() as u64
    }

    /// Faults the campaign expected to detect (one per backend).
    pub fn faults_expected(&self) -> u64 {
        if self.faults_enabled {
            self.rows.len() as u64
        } else {
            0
        }
    }

    /// One greppable summary line (the CI backends job asserts on it).
    pub fn summary(&self) -> String {
        format!(
            "backends: {} backend(s), contract_violations={} reference_drift={} \
             faults_detected={}/{} faults={}",
            self.rows.len(),
            self.contract_violations(),
            if self.reference_drift { "yes" } else { "no" },
            self.faults_detected(),
            self.faults_expected(),
            if self.faults_enabled { "on" } else { "off" }
        )
    }

    /// Renders the comparison as a report table (the
    /// `backends_compare.csv` artifact).
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Cross-backend comparison",
            &[
                "backend",
                "resolution_ps",
                "cap_resolution_ps",
                "range_ps",
                "cap_min_range_ps",
                "monotone_violations",
                "dead_time_ns",
                "cap_dead_time_ns",
                "solve_violations",
                "max_solve_residual_ps",
                "out_of_range_typed",
                "fault",
                "fault_detected",
                "fault_healed",
                "deskew_quiet_ps",
                "deskew_faulted_ps",
                "contract_ok",
            ],
        );
        for r in &self.rows {
            table.push_owned_row(vec![
                r.kind.name().to_owned(),
                format!("{:.4}", r.resolution_ps),
                format!("{:.4}", r.cap_resolution_ps),
                format!("{:.3}", r.range_ps),
                format!("{:.3}", r.cap_min_range_ps),
                r.monotone_violations.to_string(),
                format!("{:.3}", r.dead_time_ns),
                format!("{:.3}", r.cap_dead_time_ns),
                r.solve_violations.to_string(),
                format!("{:.4}", r.max_solve_residual_ps),
                if r.out_of_range_typed { "yes" } else { "NO" }.to_owned(),
                r.fault.clone(),
                if r.fault_detected { "yes" } else { "NO" }.to_owned(),
                if r.fault_healed { "yes" } else { "NO" }.to_owned(),
                format!("{:.4}", r.deskew_quiet_ps),
                format!("{:.4}", r.deskew_faulted_ps),
                if r.contract_ok { "yes" } else { "NO" }.to_owned(),
            ]);
        }
        table
    }

    /// The journal record `repro compare backends` gates on via
    /// [`vardelay_obs::journal::compare_latest_backends`].
    pub fn record(&self, git: &str, unix_ms: u64) -> Value {
        let mut record = Value::obj()
            .with("schema", vardelay_obs::journal::SCHEMA_VERSION)
            .with("experiments", "backends")
            .with("threads", Runner::global().threads())
            .with("git", git)
            .with("unix_ms", unix_ms)
            .with("wall_s", self.wall.as_secs_f64())
            .with("contract_violations", self.contract_violations())
            .with("reference_drift", self.reference_drift)
            .with("faults_detected", self.faults_detected())
            .with("faults_expected", self.faults_expected());
        for r in &self.rows {
            let name = r.kind.name();
            record = record
                .with(&format!("{name}_resolution_ps"), r.resolution_ps)
                .with(&format!("{name}_range_ps"), r.range_ps)
                .with(
                    &format!("{name}_monotone_violations"),
                    r.monotone_violations,
                )
                .with(&format!("{name}_dead_time_ns"), r.dead_time_ns)
                .with(&format!("{name}_solve_violations"), r.solve_violations)
                .with(&format!("{name}_deskew_quiet_ps"), r.deskew_quiet_ps)
                .with(&format!("{name}_deskew_faulted_ps"), r.deskew_faulted_ps);
        }
        record
    }
}

/// Runs the standard campaign on the global [`Runner`].
pub fn backends_campaign(config: &BackendsConfig) -> BackendsReport {
    backends_campaign_with(config, Runner::global())
}

/// Runs the standard campaign, fanning backend kinds out on `runner`.
///
/// Every per-backend score is a pure function of the campaign seed, so
/// the result (and its CSV) is identical at every thread count.
pub fn backends_campaign_with(config: &BackendsConfig, runner: Runner) -> BackendsReport {
    let started = Instant::now();
    let faults_enabled = vardelay_faults::enabled();
    let kinds = BackendKind::ALL;
    let rows = runner.run(kinds.len(), |i| {
        score_backend(kinds[i], config.seed, faults_enabled)
    });
    let reference_drift = !circuit_matches_reference(config.seed);
    BackendsReport {
        rows,
        faults_enabled,
        reference_drift,
        wall: started.elapsed(),
    }
}

/// The backend-specific fault the deskew leg injects for `kind`.
fn fault_for(kind: BackendKind) -> FaultKind {
    match kind {
        // The circuit has no family-specific failure mode beyond the
        // shared taxonomy; its deskew leg replays the §4 drift incident.
        BackendKind::Circuit => FaultKind::TempStep { delta_k: 40.0 },
        // A collapsed carry-chain bin early in the chain shifts every
        // downstream delay by ~0.65 ps.
        BackendKind::Vernier => FaultKind::VernierChainBubble { bin: 4 },
        // Lock loss offsets every answer by ~38 ps until relock.
        BackendKind::Dll => FaultKind::DllLockLoss,
    }
}

/// Builds and calibrates one channel of `kind`.
fn channel(kind: BackendKind, seed: u64) -> Box<dyn DelayBackend> {
    let config = ModelConfig::paper_prototype();
    let mut backend = make_backend(kind, &config, seed);
    backend.calibrate_with(Runner::serial());
    backend
}

/// Worst sentinel residual over the backend's installed table.
fn sentinel_residual(backend: &dyn DelayBackend, seed: u64) -> Time {
    BackendSentinel::from_backend(backend, SentinelConfig::default())
        .expect("calibrated backend")
        .run(seed)
        .residual
}

/// Measures one backend kind against its advertised contract.
fn score_backend(kind: BackendKind, seed: u64, faults_enabled: bool) -> BackendRow {
    let mut backend = channel(kind, task_seed(seed, kind as u64));
    let caps = backend.caps();
    let resolution = backend.setting_resolution().expect("calibrated");
    let range = backend.total_range().expect("calibrated");

    // Dense monotonicity sweep across the full control span.
    let dac = backend.control_dac();
    let max_code = (1u32 << dac.bits()) - 1;
    let (v_lo, v_hi) = (dac.voltage(0), dac.voltage(max_code));
    let mut monotone_violations = 0u64;
    let mut last = backend.measure_at(v_lo, SentinelConfig::default().interval);
    for i in 1..=SWEEP_POINTS {
        let v = v_lo.lerp(v_hi, i as f64 / SWEEP_POINTS as f64);
        let d = backend.measure_at(v, SentinelConfig::default().interval);
        if d < last {
            monotone_violations += 1;
        }
        last = d;
    }

    // Seeded solve script: every in-range target must land within one
    // advertised LSB; the worst observed dead time is the contract's
    // dead-time evidence.
    let mut rng = SplitMix64::new(task_seed(seed, 0xca3e));
    let mut solve_violations = 0u64;
    let mut max_residual = Time::ZERO;
    let mut dead_time = Time::ZERO;
    for _ in 0..SOLVE_TARGETS {
        let target = Time::from_ps(TARGET_SPAN_PS * rng.next_f64());
        let setting = backend
            .set_delay(target)
            .expect("target inside every range");
        if setting.predicted_error.abs() > caps.resolution {
            solve_violations += 1;
        }
        if setting.predicted_error.abs() > max_residual {
            max_residual = setting.predicted_error.abs();
        }
        if setting.dead_time > dead_time {
            dead_time = setting.dead_time;
        }
    }
    // Far-retarget stress: min → max exposes the DLL's relock charge.
    for ps in [1.0, range.as_ps() - 1.0] {
        let setting = backend.set_delay(Time::from_ps(ps)).expect("in range");
        if setting.dead_time > dead_time {
            dead_time = setting.dead_time;
        }
    }
    let out_of_range_typed = matches!(
        backend.set_delay(range + Time::from_ps(5.0)),
        Err(SetDelayError::OutOfRange { .. })
    );

    // Deskew leg: an 8-channel bus with seeded static skews, aligned
    // through the trait. The residual is the pk-pk solve error — what
    // the bus would actually see after each channel's programmed delay.
    let mut channels: Vec<Box<dyn DelayBackend>> = (0..BUS_WIDTH)
        .map(|ch| channel(kind, task_seed(seed, 0xb05 + ch as u64)))
        .collect();
    let mut skew_rng = SplitMix64::new(task_seed(seed, 0x5e31));
    let skews: Vec<f64> = (0..BUS_WIDTH)
        .map(|_| (TARGET_SPAN_PS - 10.0) * skew_rng.next_f64())
        .collect();
    let deskew = |channels: &mut [Box<dyn DelayBackend>]| -> (f64, f64) {
        let errors: Vec<f64> = channels
            .iter_mut()
            .zip(&skews)
            .map(|(ch, &skew)| {
                let target = Time::from_ps(TARGET_SPAN_PS - skew);
                ch.set_delay(target)
                    .expect("in range")
                    .predicted_error
                    .as_ps()
            })
            .collect();
        let lo = errors.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = errors.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (hi - lo, hi.abs().max(lo.abs()))
    };
    let (deskew_quiet_ps, _) = deskew(&mut channels);

    // Fault leg (injection armed): the backend-specific fault lands on
    // one channel, the sentinel must see it, recalibration must heal
    // it, and the healed bus must deskew as well as the quiet one.
    let fault = fault_for(kind);
    let (fault_label, fault_detected, fault_healed, deskew_faulted_ps) = if faults_enabled {
        let victim = 2usize;
        assert!(
            channels[victim].inject_fault(&fault),
            "{kind} must model {fault}"
        );
        let detected = sentinel_residual(channels[victim].as_ref(), seed) > DETECT_THRESHOLD;
        channels[victim].calibrate_with(Runner::serial());
        let healed = sentinel_residual(channels[victim].as_ref(), seed) <= DETECT_THRESHOLD;
        let (residual, _) = deskew(&mut channels);
        (fault.to_string(), detected, healed, residual)
    } else {
        ("-".to_owned(), true, true, deskew_quiet_ps)
    };

    // The deskew bound: each channel's solve error is within one LSB,
    // so the pk-pk across the bus may span two.
    let deskew_bound = caps.resolution.as_ps() * 2.0;
    let contract_ok = resolution <= caps.resolution
        && range >= caps.min_range
        && (!caps.monotone || monotone_violations == 0)
        && dead_time <= caps.dead_time
        && solve_violations == 0
        && out_of_range_typed
        && fault_detected
        && fault_healed
        && deskew_quiet_ps <= deskew_bound
        && deskew_faulted_ps <= deskew_bound;
    BackendRow {
        kind,
        resolution_ps: resolution.as_ps(),
        cap_resolution_ps: caps.resolution.as_ps(),
        range_ps: range.as_ps(),
        cap_min_range_ps: caps.min_range.as_ps(),
        monotone_violations,
        dead_time_ns: dead_time.as_ps() / 1000.0,
        cap_dead_time_ns: caps.dead_time.as_ps() / 1000.0,
        solve_violations,
        max_solve_residual_ps: max_residual.as_ps(),
        out_of_range_typed,
        fault: fault_label,
        fault_detected,
        fault_healed,
        deskew_quiet_ps,
        deskew_faulted_ps,
        contract_ok,
    }
}

/// Diffs the circuit backend (through `dyn DelayBackend`) against a
/// directly driven [`CombinedDelayCircuit`] — calibration CSV bytes,
/// range, resolution, and solve settings must all match exactly.
fn circuit_matches_reference(seed: u64) -> bool {
    let config = ModelConfig::paper_prototype();
    let seed = task_seed(seed, BackendKind::Circuit as u64);
    let mut direct = CombinedDelayCircuit::new(&config, seed);
    let direct_csv = direct.calibrate_with(Runner::serial()).to_csv();
    let mut backend = channel(BackendKind::Circuit, seed);
    let backend_csv = backend.calibration().expect("just calibrated").to_csv();
    if direct_csv != backend_csv {
        return false;
    }
    if backend.total_range() != direct.total_range()
        || backend.setting_resolution() != direct.setting_resolution()
    {
        return false;
    }
    for ps in [0.0, 1.0, 17.5, TARGET_SPAN_PS, 99.9, 120.0] {
        let want = direct.set_delay(Time::from_ps(ps)).expect("in range");
        let got = backend.set_delay(Time::from_ps(ps)).expect("in range");
        if got.tap != want.tap
            || got.dac_code != want.dac_code
            || got.vctrl != want.vctrl
            || got.predicted_delay != want.predicted_delay
            || got.predicted_error != want.predicted_error
        {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The kill switch is process-global; tests that flip it must not
    /// interleave.
    static ENABLE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn every_backend_meets_its_contract_and_the_reference_holds() {
        let _guard = ENABLE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        vardelay_faults::set_enabled(true);
        let report = backends_campaign_with(&BackendsConfig::default(), Runner::serial());
        assert!(report.faults_enabled);
        assert_eq!(report.rows.len(), BackendKind::ALL.len());
        assert_eq!(
            report.contract_violations(),
            0,
            "failing rows: {:?}",
            report
                .rows
                .iter()
                .filter(|r| !r.contract_ok)
                .collect::<Vec<_>>()
        );
        assert!(!report.reference_drift, "circuit drifted from baseline");
        assert_eq!(report.faults_detected(), report.faults_expected());
        assert!(report.summary().contains("contract_violations=0"));
    }

    #[test]
    fn campaign_is_byte_identical_at_every_thread_count() {
        let _guard = ENABLE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        vardelay_faults::set_enabled(true);
        let config = BackendsConfig::default();
        let serial = backends_campaign_with(&config, Runner::serial());
        for threads in [2, 4] {
            let parallel = backends_campaign_with(&config, Runner::new(threads));
            assert_eq!(
                serial.table().to_csv(),
                parallel.table().to_csv(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn the_record_round_trips_through_the_backends_gate() {
        let _guard = ENABLE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        vardelay_faults::set_enabled(true);
        let report = backends_campaign_with(&BackendsConfig::default(), Runner::serial());
        let record = report.record("deadbeef", 1_700_000_000_000);
        let reparsed = Value::parse(&record.render()).expect("record renders valid JSON");
        assert_eq!(
            reparsed.get("experiments").and_then(Value::as_str),
            Some("backends")
        );
        let cmp = vardelay_obs::journal::compare_latest_backends(&[record])
            .expect("one record suffices for the absolute gate");
        assert!(!cmp.regressed, "{cmp}");
    }

    #[test]
    fn a_contract_violation_or_reference_drift_turns_the_gate_red() {
        let _guard = ENABLE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        vardelay_faults::set_enabled(true);
        let mut report = backends_campaign_with(&BackendsConfig::default(), Runner::serial());
        report.rows[0].contract_ok = false;
        let red = report.record("deadbeef", 1_700_000_000_000);
        let cmp = vardelay_obs::journal::compare_latest_backends(&[red]).expect("record compares");
        assert!(cmp.regressed, "{cmp}");
        assert!(cmp.to_string().contains("REGRESSED"), "{cmp}");

        report.rows[0].contract_ok = true;
        report.reference_drift = true;
        let drifted = report.record("deadbeef", 1_700_000_100_000);
        let cmp =
            vardelay_obs::journal::compare_latest_backends(&[drifted]).expect("record compares");
        assert!(cmp.regressed, "{cmp}");
    }

    #[test]
    fn masked_injection_skips_the_fault_leg_but_keeps_the_contract() {
        let _guard = ENABLE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        vardelay_faults::set_enabled(false);
        let report = backends_campaign_with(&BackendsConfig::default(), Runner::serial());
        vardelay_faults::set_enabled(true);
        assert!(!report.faults_enabled);
        assert_eq!(report.faults_expected(), 0);
        assert_eq!(report.contract_violations(), 0, "{:?}", report.rows);
        assert!(report.rows.iter().all(|r| r.fault == "-"));
        assert!(report.summary().contains("faults=off"));
    }
}
