//! Extension experiments beyond the paper's figures: the 4-channel unit
//! from its conclusions, temperature drift, receiver tolerance testing
//! and 8b/10b-coded traffic.

use crate::EXPERIMENT_SEED;
use vardelay_analog::EdgeTransform;
use vardelay_ate::{JitterToleranceTest, ToleranceResult};
use vardelay_core::{CalibrationStrategy, FineDelayLine, ModelConfig, MultiChannelDelay, TempCo};
use vardelay_measure::{tie_sequence, JitterStats};
use vardelay_siggen::{BitPattern, EdgeStream, Encoder8b10b, SplitMix64, Symbol};
use vardelay_units::{BitRate, Time, Voltage};

/// X1 — the 4-channel unit's channel-to-channel setting accuracy under
/// both calibration strategies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiChannelResult {
    /// pk-pk accuracy with a shared calibration table.
    pub shared_accuracy: Time,
    /// pk-pk accuracy with per-channel calibration.
    pub per_channel_accuracy: Time,
    /// Guaranteed common range across the four instances.
    pub common_range: Time,
}

/// Runs X1 at a 60 ps target.
pub fn x1_multichannel() -> MultiChannelResult {
    let cfg = ModelConfig::paper_prototype().quiet();
    let target = Time::from_ps(60.0);
    let mut shared = MultiChannelDelay::new(&cfg, 4, EXPERIMENT_SEED);
    shared.calibrate(CalibrationStrategy::Shared);
    let mut per = MultiChannelDelay::new(&cfg, 4, EXPERIMENT_SEED);
    per.calibrate(CalibrationStrategy::PerChannel);
    MultiChannelResult {
        shared_accuracy: shared.setting_accuracy(target).expect("in range"),
        per_channel_accuracy: per.setting_accuracy(target).expect("in range"),
        common_range: per.common_range().expect("calibrated"),
    }
}

/// X2 — receiver jitter tolerance through the injector.
pub fn x2_tolerance() -> ToleranceResult {
    JitterToleranceTest::standard(EXPERIMENT_SEED).run(&ModelConfig::paper_prototype().quiet())
}

/// X3 — temperature drift of the fine range and the value of
/// recalibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftResult {
    /// Fine range at the calibration temperature.
    pub cold_range: Time,
    /// Fine range 40 K hotter.
    pub hot_range: Time,
}

/// Runs X3 with the default ECL temperature coefficients.
pub fn x3_drift() -> DriftResult {
    let cold_cfg = ModelConfig::paper_prototype().quiet();
    let hot_cfg = cold_cfg.at_temperature_offset(40.0, &TempCo::default());
    let interval = Time::from_ps(320.0);
    DriftResult {
        cold_range: FineDelayLine::new(&cold_cfg, 1).delay_range(interval),
        hot_range: FineDelayLine::new(&hot_cfg, 1).delay_range(interval),
    }
}

/// X4 — 8b/10b-coded traffic (the PCIe/HT line code) through the fine
/// line: added jitter stays in the same band as scrambled PRBS data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodedTrafficResult {
    /// Output TJ on PRBS7 traffic.
    pub prbs_tj: Time,
    /// Output TJ on 8b/10b-coded random-byte traffic at the same rate.
    pub coded_tj: Time,
}

/// Runs X4 at 6.4 Gb/s.
pub fn x4_coded_traffic(bits: usize) -> CodedTrafficResult {
    let rate = BitRate::from_gbps(6.4);
    let cfg = ModelConfig::paper_prototype();
    let line = FineDelayLine::new(&cfg.quiet(), EXPERIMENT_SEED);
    let (vctrls, intervals) = line.default_grids();
    let table = line.characterize(&vctrls, &intervals);

    let tj_of = |pattern: &BitPattern, seed: u64| -> Time {
        let stream = EdgeStream::nrz(pattern, rate);
        let mut model = vardelay_analog::CharacterizedDelay::new(
            table.clone(),
            Voltage::from_v(0.75),
            cfg.chain_rj(cfg.stages + 1),
            seed,
        );
        let out = model.transform(&stream);
        JitterStats::from_times(&tie_sequence(&out))
            .expect("stream carries edges")
            .peak_to_peak
    };

    let prbs = BitPattern::prbs7(1, bits);
    let mut rng = SplitMix64::new(EXPERIMENT_SEED);
    let mut enc = Encoder8b10b::new();
    let mut coded_bits = Vec::with_capacity(bits);
    while coded_bits.len() < bits {
        coded_bits.extend(enc.encode(Symbol::Data(rng.next_u64() as u8)));
    }
    coded_bits.truncate(bits);
    let coded = BitPattern::new(coded_bits);

    CodedTrafficResult {
        prbs_tj: tj_of(&prbs, EXPERIMENT_SEED + 80),
        coded_tj: tj_of(&coded, EXPERIMENT_SEED + 81),
    }
}

/// B1 — baseline comparison: the clock-phase-interpolator approach the
/// paper's introduction dismisses, versus the vardelay circuit, on the
/// same wideband data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineComparison {
    /// Eye height of the input data.
    pub input_height: f64,
    /// Eye height after the vardelay combined circuit at a 70 ps setting.
    pub vardelay_height: f64,
    /// Eye height after a phase interpolator set to the same 70 ps.
    pub interpolator_height: f64,
    /// Interpolator's delay error on a pure clock (its home turf) — small.
    pub interpolator_clock_error: Time,
}

/// Runs B1 at 6.4 Gb/s.
pub fn b1_baseline_comparison(bits: usize) -> BaselineComparison {
    use vardelay_analog::AnalogBlock;
    use vardelay_core::{CombinedDelayCircuit, PhaseInterpolator};
    use vardelay_measure::{eye_metrics, tail_mean_delay};
    use vardelay_waveform::{to_edge_stream, EyeDiagram, Waveform};

    let rate = BitRate::from_gbps(6.4);
    let cfg = ModelConfig::paper_prototype().quiet();
    let target = Time::from_ps(70.0);
    let stream = EdgeStream::nrz(&BitPattern::prbs7(1, bits), rate);
    let wf = Waveform::render(&stream, &cfg.render);

    let height_of = |w: &Waveform| -> f64 {
        let mut eye = EyeDiagram::new(rate.bit_period(), 96, 48, 0.5);
        eye.add_waveform(w);
        eye_metrics(&eye).map_or(0.0, |m| m.height)
    };

    let mut circuit = CombinedDelayCircuit::new(&cfg, EXPERIMENT_SEED);
    circuit.calibrate();
    circuit.set_delay(target).expect("target in range");
    let through_vardelay = circuit.process(&wf);

    let mut pi = PhaseInterpolator::new(rate.fundamental());
    pi.set_delay(target);
    let through_pi = pi.process(&wf);

    // Clock check on the interpolator's home turf.
    let clock = EdgeStream::nrz(&BitPattern::clock(48), rate);
    let clock_wf = Waveform::render(&clock, &cfg.render);
    let delayed = to_edge_stream(&pi.process(&clock_wf), 0.0, rate.bit_period());
    pi.set_delay(Time::ZERO);
    let reference = to_edge_stream(&pi.process(&clock_wf), 0.0, rate.bit_period());
    let realized = tail_mean_delay(&reference, &delayed, 8).expect("clock edges align");

    BaselineComparison {
        input_height: height_of(&wf),
        vardelay_height: height_of(&through_vardelay),
        interpolator_height: height_of(&through_pi),
        interpolator_clock_error: realized - target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x1_accuracies_meet_the_budget() {
        let r = x1_multichannel();
        assert!(r.per_channel_accuracy <= r.shared_accuracy);
        assert!(r.shared_accuracy < Time::from_ps(5.0));
        assert!(r.common_range > Time::from_ps(120.0));
    }

    #[test]
    fn x3_drift_is_visible_but_modest() {
        let r = x3_drift();
        let rel = (r.hot_range - r.cold_range).abs() / r.cold_range;
        assert!(rel > 0.01, "drift invisible: {rel}");
        assert!(rel < 0.20, "drift implausible: {rel}");
    }

    #[test]
    fn b1_vardelay_wins_on_data_interpolator_wins_nothing() {
        let r = b1_baseline_comparison(300);
        // The interpolator delays a clock within a quarter of the target…
        assert!(
            r.interpolator_clock_error.abs() < Time::from_ps(20.0),
            "clock error {}",
            r.interpolator_clock_error
        );
        // …but collapses the data eye, while vardelay keeps it open.
        assert!(r.vardelay_height > r.interpolator_height * 2.0, "{r:?}");
        assert!(r.vardelay_height > r.input_height * 0.5, "{r:?}");
    }

    #[test]
    fn x4_coded_traffic_behaves_like_prbs() {
        let r = x4_coded_traffic(3000);
        // 8b/10b's bounded run lengths (max 5) give slightly LESS
        // data-dependent jitter than PRBS7 (runs up to 7); either way the
        // two stay within 40 % of each other.
        let ratio = r.coded_tj / r.prbs_tj;
        assert!((0.6..=1.4).contains(&ratio), "ratio {ratio}: {r:?}");
    }
}
