//! Experiments E1 (Fig. 7), E2 (Fig. 9), E6 (Fig. 15) and T1 — the
//! delay-transfer measurements.

use crate::EXPERIMENT_SEED;
use vardelay_core::{CoarseDelaySection, CombinedDelayCircuit, FineDelayLine, ModelConfig};
use vardelay_measure::{linear_fit, Series};
use vardelay_runner::Runner;
use vardelay_siggen::{BitPattern, EdgeStream};
use vardelay_units::{BitRate, Frequency, Time, Voltage};
use vardelay_waveform::Waveform;

/// Fig. 7 — fine delay versus control voltage for the 4-stage circuit.
///
/// Sweeps `Vctrl` over 0–1.5 V in `points` steps at a 1 Gb/s toggle and
/// reports the delay *change* relative to the first point, exactly the
/// quantity the paper plots.
pub fn fig7_delay_vs_vctrl(points: usize) -> Series {
    fig7_delay_vs_vctrl_with(Runner::global(), points)
}

/// [`fig7_delay_vs_vctrl`] on an explicit [`Runner`].
///
/// Sweep points are independent — [`FineDelayLine::measure_delay`] probes
/// a fresh noise-free seed-0 copy, so fanning points out is bit-identical
/// to the serial sweep at every thread count.
pub fn fig7_delay_vs_vctrl_with(runner: Runner, points: usize) -> Series {
    let cfg = ModelConfig::paper_prototype().quiet();
    let line = FineDelayLine::new(&cfg, EXPERIMENT_SEED);
    let interval = Time::from_ps(1000.0);
    let vs: Vec<Voltage> = (0..points)
        .map(|i| Voltage::from_v(1.5 * i as f64 / (points - 1) as f64))
        .collect();
    let delays = runner.par_map(&vs, |_, &v| {
        let mut probe = line.clone();
        probe.set_vctrl(v);
        probe.measure_delay(interval)
    });
    let mut series = Series::new("4-stage fine delay", "vctrl_v", "delay_change_ps");
    if let Some(&base) = delays.first() {
        for (v, &d) in vs.iter().zip(&delays) {
            series.push(v.as_v(), (d - base).as_ps());
        }
    }
    series
}

/// Summary figures of the Fig. 7 curve: total range, mid-range slope and
/// linearity (R² over the central 60 % of the control span).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Summary {
    /// Total adjustment range over the full control span.
    pub range: Time,
    /// Mid-range slope in ps/V.
    pub mid_slope_ps_per_v: f64,
    /// R² of a straight-line fit over the central 60 % of the span.
    pub mid_r_squared: f64,
}

/// Computes the [`Fig7Summary`] from a measured curve.
///
/// # Panics
///
/// Panics if the series has fewer than five points.
pub fn fig7_summary(series: &Series) -> Fig7Summary {
    assert!(series.len() >= 5, "need a real sweep to summarize");
    let n = series.len();
    let lo = n / 5;
    let hi = n - n / 5;
    let fit =
        linear_fit(&series.xs[lo..hi], &series.ys[lo..hi]).expect("mid-range sweep is well-posed");
    Fig7Summary {
        range: Time::from_ps(series.y_range().expect("non-empty")),
        mid_slope_ps_per_v: fit.slope,
        mid_r_squared: fit.r_squared,
    }
}

/// Fig. 9 — measured coarse tap delays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoarseTapResult {
    /// Tap index (0..4).
    pub tap: usize,
    /// Designed delay (0/33/66/99 ps).
    pub designed: Time,
    /// Delay measured through the waveform engine, relative to tap 0.
    pub measured: Time,
}

/// Fig. 9 — measures the four coarse taps relative to tap 0 at 2 Gb/s.
pub fn fig9_coarse_taps() -> Vec<CoarseTapResult> {
    let cfg = ModelConfig::paper_prototype().quiet();
    let mut section = CoarseDelaySection::new(&cfg, EXPERIMENT_SEED);
    let rate = BitRate::from_gbps(2.0);
    let stream = EdgeStream::nrz(&BitPattern::clock(16), rate);
    let wf = Waveform::render(&stream, &cfg.render);
    let measured = section.measure_taps(&wf, rate.bit_period());
    (0..4)
        .map(|tap| CoarseTapResult {
            tap,
            designed: cfg.coarse_taps[tap],
            measured: measured[tap],
        })
        .collect()
}

/// Fig. 15 — fine delay range versus RZ clock frequency for the 4-stage
/// prototype and the early 2-stage unit. An RZ clock at `f` toggles every
/// `1/(2f)`.
pub fn fig15_range_vs_frequency(freqs_ghz: &[f64]) -> (Series, Series) {
    fig15_range_vs_frequency_with(Runner::global(), freqs_ghz)
}

/// [`fig15_range_vs_frequency`] on an explicit [`Runner`]. Frequency
/// points are independent ([`FineDelayLine::delay_range`] probes clones),
/// so the fan-out reproduces the serial sweep bit-for-bit.
pub fn fig15_range_vs_frequency_with(runner: Runner, freqs_ghz: &[f64]) -> (Series, Series) {
    let four = FineDelayLine::new(&ModelConfig::paper_prototype().quiet(), EXPERIMENT_SEED);
    let two = FineDelayLine::new(&ModelConfig::early_two_stage().quiet(), EXPERIMENT_SEED);
    let ranges = runner.par_map(freqs_ghz, |_, &f| {
        let interval = Frequency::from_ghz(f).period() * 0.5;
        (four.delay_range(interval), two.delay_range(interval))
    });
    let mut s4 = Series::new("4-stage", "freq_ghz", "range_ps");
    let mut s2 = Series::new("2-stage", "freq_ghz", "range_ps");
    for (&f, (r4, r2)) in freqs_ghz.iter().zip(&ranges) {
        s4.push(f, r4.as_ps());
        s2.push(f, r2.as_ps());
    }
    (s4, s2)
}

/// The default Fig. 15 frequency grid (0.5–6.8 GHz).
pub fn fig15_default_freqs() -> Vec<f64> {
    vec![0.5, 1.0, 1.5, 2.0, 2.6, 3.2, 4.0, 4.8, 5.6, 6.0, 6.4, 6.8]
}

/// Table 1 — the §1 application requirements checked against the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequirementsResult {
    /// Delay-setting resolution through the 12-bit DAC (requirement ≤1 ps).
    pub setting_resolution: Time,
    /// Total programmable range (requirement ≥120 ps).
    pub total_range: Time,
    /// Fine range at the 6.4 Gb/s operating interval — must exceed the
    /// 33 ps coarse step for continuous coverage.
    pub fine_range_at_6g4: Time,
}

/// Computes T1 from a freshly calibrated combined circuit.
pub fn table1_requirements() -> RequirementsResult {
    let cfg = ModelConfig::paper_prototype().quiet();
    let mut circuit = CombinedDelayCircuit::new(&cfg, EXPERIMENT_SEED);
    circuit.calibrate();
    let fine = FineDelayLine::new(&cfg, EXPERIMENT_SEED);
    RequirementsResult {
        setting_resolution: circuit
            .setting_resolution()
            .expect("circuit was calibrated"),
        total_range: circuit.total_range().expect("circuit was calibrated"),
        fine_range_at_6g4: fine.delay_range(BitRate::from_gbps(6.4).bit_period()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shape() {
        let series = fig7_delay_vs_vctrl(13);
        let summary = fig7_summary(&series);
        // Paper: ~56 ps range, approximately linear mid-range.
        assert!(
            (45.0..70.0).contains(&summary.range.as_ps()),
            "range {}",
            summary.range
        );
        assert!(summary.mid_r_squared > 0.95, "r2 {}", summary.mid_r_squared);
        assert!(summary.mid_slope_ps_per_v > 0.0);
        // Monotone non-decreasing curve.
        assert!(series.ys.windows(2).all(|w| w[1] >= w[0] - 0.3));
    }

    #[test]
    fn fig9_taps_track_the_instance() {
        let taps = fig9_coarse_taps();
        assert_eq!(taps.len(), 4);
        // Instance deviations (0/33/70/95) are recovered within ~1 ps.
        let expect = [0.0, 33.0, 70.0, 95.0];
        for (t, e) in taps.iter().zip(expect) {
            assert!(
                (t.measured.as_ps() - e).abs() < 1.5,
                "tap {}: {} vs {e}",
                t.tap,
                t.measured
            );
        }
    }

    #[test]
    fn fig15_shape() {
        let (s4, s2) = fig15_range_vs_frequency(&[0.5, 3.2, 6.4]);
        // 4-stage beats 2-stage everywhere.
        for ((_, y4), (_, y2)) in s4.points().zip(s2.points()) {
            assert!(y4 > y2, "4-stage {y4} vs 2-stage {y2}");
        }
        // Both roll off with frequency.
        assert!(s4.ys[2] < s4.ys[0] * 0.7);
        assert!(s2.ys[2] < s2.ys[0] * 0.5);
        // 4-stage still covers the 33 ps coarse step at 3.2 GHz.
        assert!(s4.ys[1] > 33.0, "{}", s4.ys[1]);
    }

    #[test]
    fn table1_meets_requirements() {
        let t = table1_requirements();
        assert!(t.setting_resolution < Time::from_ps(1.0));
        assert!(t.total_range > Time::from_ps(120.0));
        assert!(t.fine_range_at_6g4 > Time::from_ps(33.0));
    }
}
