//! Experiments E7–E8 (Figs. 16–17): jitter injection through `Vctrl`.

use crate::EXPERIMENT_SEED;
use vardelay_core::{JitterInjector, ModelConfig};
use vardelay_measure::{tie_sequence, JitterStats, Series};
use vardelay_runner::Runner;
use vardelay_siggen::{BitPattern, EdgeStream, GaussianRj, JitterModel};
use vardelay_units::{BitRate, Time, Voltage};

/// The figures reported for the Fig. 16 injection demonstration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionResult {
    /// Total jitter of the reference (input) signal.
    pub reference_tj: Time,
    /// Output TJ with the noise source silent (circuit's own budget).
    pub baseline_tj: Time,
    /// Output TJ with the programmed noise applied.
    pub injected_tj: Time,
    /// Noise amplitude (generator peak-to-peak rating).
    pub noise_vpp: Voltage,
}

fn tj_pp(stream: &EdgeStream) -> Time {
    JitterStats::from_times(&tie_sequence(stream))
        .expect("capture carries edges")
        .peak_to_peak
}

fn reference_stream(bits: usize) -> EdgeStream {
    // Paper Fig. 16 reference: 3.2 Gb/s with ~8 ps total jitter.
    let clean = EdgeStream::nrz(&BitPattern::prbs7(1, bits), BitRate::from_gbps(3.2));
    GaussianRj::new(Time::from_ps(1.05), EXPERIMENT_SEED + 4).apply(&clean)
}

/// Fig. 16 — injecting 900 mVpp Gaussian noise at 3.2 Gb/s.
///
/// The paper raises an 8 ps reference to 69 ps of output jitter.
pub fn fig16_injection(bits: usize) -> InjectionResult {
    let vpp = Voltage::from_mv(900.0);
    let input = reference_stream(bits);
    let cfg = ModelConfig::paper_prototype().quiet();

    let mut silent = JitterInjector::new(&cfg, EXPERIMENT_SEED);
    let baseline = silent.inject(&input);

    let mut injector = JitterInjector::new(&cfg, EXPERIMENT_SEED);
    injector.set_noise_peak_to_peak(vpp);
    let injected = injector.inject(&input);

    InjectionResult {
        reference_tj: tj_pp(&input),
        baseline_tj: tj_pp(&baseline),
        injected_tj: tj_pp(&injected),
        noise_vpp: vpp,
    }
}

/// Fig. 17 — added jitter versus applied noise amplitude (0–1 Vpp).
///
/// Returns `(amplitude_v, added_jitter_ps)` where "added" is relative to
/// the silent-injector baseline, matching the paper's y-axis.
pub fn fig17_injection_sweep(bits: usize, points: usize) -> Series {
    fig17_injection_sweep_with(Runner::global(), bits, points)
}

/// [`fig17_injection_sweep`] on an explicit [`Runner`].
///
/// Each amplitude point gets a fresh injector, which is bit-identical to
/// reprogramming a shared one: [`JitterInjector::set_noise_peak_to_peak`]
/// fully resets the noise process (fixed derived seed) and edge history,
/// and the quiet model draws no per-edge RNG. The characterization cache
/// absorbs the rebuild cost — every injector shares one table.
pub fn fig17_injection_sweep_with(runner: Runner, bits: usize, points: usize) -> Series {
    let input = reference_stream(bits);
    let cfg = ModelConfig::paper_prototype().quiet();
    let mut silent = JitterInjector::new(&cfg, EXPERIMENT_SEED);
    let baseline = tj_pp(&silent.inject(&input));

    let vpps: Vec<Voltage> = (0..points)
        .map(|i| Voltage::from_v(i as f64 / (points - 1).max(1) as f64))
        .collect();
    let tjs = runner.par_map(&vpps, |_, &vpp| {
        let mut injector = JitterInjector::new(&cfg, EXPERIMENT_SEED);
        injector.set_noise_peak_to_peak(vpp);
        tj_pp(&injector.inject(&input))
    });
    let mut series = Series::new("injected jitter", "noise_vpp_v", "added_jitter_ps");
    for (vpp, tj) in vpps.iter().zip(&tjs) {
        series.push(vpp.as_v(), (*tj - baseline).as_ps().max(0.0));
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16_shape() {
        let r = fig16_injection(4000);
        // Reference ~8 ps pk-pk.
        assert!(
            (5.0..12.0).contains(&r.reference_tj.as_ps()),
            "ref {}",
            r.reference_tj
        );
        // Injection multiplies the jitter several-fold.
        assert!(
            r.injected_tj > r.baseline_tj * 2.0,
            "baseline {} injected {}",
            r.baseline_tj,
            r.injected_tj
        );
        assert!(
            (25.0..90.0).contains(&r.injected_tj.as_ps()),
            "injected {}",
            r.injected_tj
        );
    }

    #[test]
    fn fig17_is_monotone_ish() {
        let series = fig17_injection_sweep(2500, 6);
        assert_eq!(series.len(), 6);
        // Zero amplitude injects nothing.
        assert!(series.ys[0] < 3.0, "{}", series.ys[0]);
        // Largest amplitude injects the most (allowing small noise).
        let max = series.y_max().unwrap();
        assert!(
            (series.ys[5] - max).abs() < max * 0.25,
            "last {} max {max}",
            series.ys[5]
        );
        // Broadly increasing.
        assert!(series.ys[5] > series.ys[1]);
    }
}
