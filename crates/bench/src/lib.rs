//! The reproduction harness: one function per paper figure/table.
//!
//! Every experiment in the paper's evaluation section has a function here
//! that regenerates its data from the behavioral model. The functions are
//! shared by three consumers:
//!
//! * the [`repro`](../repro/index.html) binary, which prints the same
//!   rows/series the paper reports (and writes CSVs under
//!   `target/repro/`);
//! * the criterion benches in `benches/figures.rs`;
//! * the workspace integration tests, which assert the *shape* of each
//!   result (who wins, trends, crossovers) against the paper.
//!
//! See `DESIGN.md` §5 for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured records.

pub mod ablation;
pub mod artifact;
pub mod backends_campaign;
pub mod checkpoint;
pub mod extensions;
pub mod eyes;
pub mod faults_campaign;
pub mod fine_delay;
pub mod injection;
pub mod restart;
pub mod serve_bench;
pub mod skew;
pub mod soak;

/// Default seed used by every experiment so the published numbers are
/// reproducible run-to-run.
pub const EXPERIMENT_SEED: u64 = 20080310; // DATE'08 week

/// Returns the directory experiment CSVs are written to, creating it (and
/// any missing parents) if needed.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory cannot be created —
/// callers report which experiment's output was lost and keep going
/// rather than crashing mid-run.
pub fn try_output_dir() -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::PathBuf::from("target/repro");
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Returns the directory experiment CSVs are written to, creating it if
/// needed.
///
/// # Panics
///
/// Panics if the directory cannot be created; fallible callers should use
/// [`try_output_dir`].
pub fn output_dir() -> std::path::PathBuf {
    try_output_dir().expect("create target/repro")
}
