//! `repro soak` — the self-healing chaos campaign (DESIGN.md §15).
//!
//! Spins up an in-process server with the health supervisor armed,
//! keeps seeded client load running on the healthy channels, lets a
//! [`vardelay_faults::NetChaos`] striker misbehave at the socket layer,
//! and injects a sequence of physical drift incidents into one channel.
//! For every incident the campaign measures **detection latency** (drift
//! injected → the wire `stats` report shows an unhealthy channel) and
//! **MTTR** (drift injected → the channel is back to `Healthy` and the
//! unhealthy count is zero again). The aggregate lands in a `soak`
//! journal record gated by `repro compare soak` via
//! [`vardelay_obs::journal::compare_latest_soak`]: availability on the
//! never-drifted channels must hold the floor, every incident must heal,
//! and the p99 MTTR must not blow up run-over-run.
//!
//! With fault injection masked (`VARDELAY_FAULTS=0`) the campaign runs
//! load only — no drift, no chaos — and reports zero incidents and zero
//! quarantines; the caller skips the journal append because a quiet run
//! carries no healing measurement. With recalibration sabotaged
//! (`VARDELAY_SERVE_RECAL=0`) every incident is detected but none ever
//! heals, which is the deterministic red leg the CI gate check pulls.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use vardelay_faults::NetChaos;
use vardelay_obs::json::Value;
use vardelay_runner::task_seed;
use vardelay_serve::{
    serve, ChannelState, Client, Envelope, ErrorKind, Request, Response, ServeConfig, StatsReply,
};
use vardelay_siggen::SplitMix64;

use crate::EXPERIMENT_SEED;

/// The channel every drift incident targets. Load stays on the channels
/// below it, so availability measures the *blast radius* of an incident,
/// not the quarantined channel itself.
pub const DRIFT_CHANNEL: usize = 7;

/// Campaign shape. [`Default`] is what CI runs: four drift incidents of
/// alternating severity against channel [`DRIFT_CHANNEL`], a 25 ms
/// sentinel period, two load clients on the healthy channels, and a
/// 30 s per-incident heal budget.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Temperature offsets (kelvin, absolute from the base model) to
    /// inject, one incident at a time. Consecutive values must differ —
    /// an incident is a *change* of physical truth — and the severity
    /// the sentinel sees is the gap to the **previously calibrated**
    /// offset, not to zero.
    pub incidents: Vec<f64>,
    /// Health-supervisor period for the soaked server.
    pub health_period: Duration,
    /// Per-incident budget for detection + healing; an incident that is
    /// not back to healthy within it counts as `unhealed`.
    pub incident_budget: Duration,
    /// Concurrent load clients on the healthy channels.
    pub load_clients: usize,
    /// Pause between one load client's requests.
    pub load_gap: Duration,
    /// Root seed for the load mix and the chaos strike plan.
    pub seed: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            incidents: vec![8.0, 40.0, 6.0, 30.0],
            health_period: Duration::from_millis(25),
            incident_budget: Duration::from_secs(30),
            load_clients: 2,
            load_gap: Duration::from_millis(2),
            seed: EXPERIMENT_SEED,
        }
    }
}

impl SoakConfig {
    /// The default campaign with the per-incident budget taken from
    /// `VARDELAY_SOAK_BUDGET_MS` when set. A healthy run detects in
    /// ~0.2 s and heals in under 1 s, so the CI red leg — where every
    /// incident runs its full budget because nothing ever heals —
    /// shrinks the budget rather than waiting out 4 × 30 s.
    pub fn from_env() -> Self {
        let mut config = SoakConfig::default();
        if let Some(ms) = std::env::var("VARDELAY_SOAK_BUDGET_MS")
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
        {
            config.incident_budget = Duration::from_millis(ms);
        }
        config
    }
}

/// What the soak measured.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Whether drift/chaos injection was armed ([`vardelay_faults::enabled`]).
    pub faults_enabled: bool,
    /// Drift incidents injected.
    pub incidents: u64,
    /// Incidents never back to healthy within the budget.
    pub unhealed: u64,
    /// Median drift-injected → unhealthy-visible latency, microseconds.
    pub detect_p50_us: u64,
    /// 99th-percentile detection latency, microseconds.
    pub detect_p99_us: u64,
    /// Median drift-injected → healthy-again time, microseconds.
    pub mttr_p50_us: u64,
    /// 99th-percentile time to recover, microseconds.
    pub mttr_p99_us: u64,
    /// Load requests attempted on the healthy channels.
    pub attempts: u64,
    /// Load requests answered with a delay setting.
    pub ok: u64,
    /// Load requests shed with `overloaded` (backpressure, not an
    /// outage — excluded from the availability denominator).
    pub overloaded: u64,
    /// Load requests that failed hard (unavailable/internal/transport).
    pub failures: u64,
    /// `ok / (ok + failures)` — healthy-channel availability (1.0 when
    /// no load completed at all).
    pub availability: f64,
    /// Network-chaos strikes landed during the campaign.
    pub strikes: u64,
    /// Quarantine entries the server counted.
    pub quarantines: u64,
    /// Background table rebuilds the server counted.
    pub recalibrations: u64,
    /// Partial-line connections the reaper cut.
    pub reaped: u64,
    /// Response writes cut by the IO deadline.
    pub io_timeouts: u64,
    /// The server's worker count (the gate's comparability key).
    pub workers: u64,
    /// Wall clock of the whole campaign.
    pub wall: Duration,
}

impl SoakReport {
    /// One greppable summary line. The CI soak job asserts on
    /// `quarantines=` / `recalibrations=` (zero on the faults-masked
    /// leg) and `unhealed=`.
    pub fn summary(&self) -> String {
        format!(
            "soak: incidents={} unhealed={} detect_p50={} us detect_p99={} us \
             mttr_p50={} us mttr_p99={} us availability={:.4} attempts={} ok={} \
             overloaded={} failures={} strikes={} quarantines={} recalibrations={} \
             reaped={} io_timeouts={} workers={} faults={}",
            self.incidents,
            self.unhealed,
            self.detect_p50_us,
            self.detect_p99_us,
            self.mttr_p50_us,
            self.mttr_p99_us,
            self.availability,
            self.attempts,
            self.ok,
            self.overloaded,
            self.failures,
            self.strikes,
            self.quarantines,
            self.recalibrations,
            self.reaped,
            self.io_timeouts,
            self.workers,
            if self.faults_enabled { "on" } else { "off" }
        )
    }

    /// The journal record `repro compare soak` gates on via
    /// [`vardelay_obs::journal::compare_latest_soak`].
    pub fn record(&self, git: &str, unix_ms: u64) -> Value {
        Value::obj()
            .with("schema", vardelay_obs::journal::SCHEMA_VERSION)
            .with("experiments", "soak")
            .with("threads", self.workers)
            .with("git", git)
            .with("unix_ms", unix_ms)
            .with("wall_s", self.wall.as_secs_f64())
            .with("incidents", self.incidents)
            .with("unhealed", self.unhealed)
            .with("detect_p50_us", self.detect_p50_us)
            .with("detect_p99_us", self.detect_p99_us)
            .with("mttr_p50_us", self.mttr_p50_us as f64)
            .with("mttr_p99_us", self.mttr_p99_us as f64)
            .with("availability", self.availability)
            .with("attempts", self.attempts)
            .with("ok", self.ok)
            .with("overloaded", self.overloaded)
            .with("failures", self.failures)
            .with("strikes", self.strikes)
            .with("quarantines", self.quarantines)
            .with("recalibrations", self.recalibrations)
            .with("reaped", self.reaped)
            .with("io_timeouts", self.io_timeouts)
    }
}

/// Quantile of a sample set by nearest-rank (0 for an empty set — a
/// campaign with no healed incident has no recovery time to report).
fn quantile_us(samples: &mut [u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[rank]
}

/// Hard load failures: responses that mean the service broke for a
/// healthy channel. `overloaded` is deliberate shedding and is tallied
/// separately.
fn is_hard_failure(kind: ErrorKind) -> bool {
    !matches!(kind, ErrorKind::Overloaded)
}

#[derive(Default)]
struct LoadCounts {
    attempts: AtomicU64,
    ok: AtomicU64,
    overloaded: AtomicU64,
    failures: AtomicU64,
}

/// One wire `stats` round-trip, retrying through `overloaded` sheds
/// (the chaos striker can legitimately flood a queue for a moment).
fn probe_stats(client: &mut Client, id: u64) -> std::io::Result<StatsReply> {
    loop {
        let (_, response) = client.call(&Envelope {
            id: Some(id),
            deadline_ms: None,
            tenant: None,
            req_id: None,
            backend: None,
            request: Request::Stats,
        })?;
        match response {
            Response::Stats(stats) => return Ok(stats),
            Response::Error(err) if err.kind == ErrorKind::Overloaded => {
                std::thread::sleep(Duration::from_millis(5));
            }
            other => return Err(std::io::Error::other(format!("stats probe drew {other:?}"))),
        }
    }
}

/// Runs the campaign and gathers the report.
///
/// Uses its own in-process server (workers=2, one shard, the
/// configured sentinel period); `VARDELAY_SERVE_RECAL=0` in the
/// environment sabotages recalibration exactly as it would for
/// `repro serve`.
///
/// # Errors
///
/// Returns an I/O error when the server cannot bind or the probe
/// client's connection dies; load-client failures mid-run are counted
/// in the report instead.
pub fn run_soak(config: &SoakConfig) -> std::io::Result<SoakReport> {
    vardelay_obs::set_enabled(true);
    let faults_enabled = vardelay_faults::enabled();

    let mut serve_config = ServeConfig::in_process();
    serve_config.workers = 2;
    serve_config.shards = 1;
    serve_config.health_period = Some(config.health_period);
    serve_config.recalibrate = !matches!(
        std::env::var("VARDELAY_SERVE_RECAL").as_deref(),
        Ok("0") | Ok("off") | Ok("false")
    );
    let handle = serve(serve_config)?;
    let addr = handle.addr();
    let mut probe = Client::connect(addr)?;

    let stop = AtomicBool::new(false);
    let counts = LoadCounts::default();
    let strikes = AtomicU64::new(0);
    let started = Instant::now();
    let mut detect_us: Vec<u64> = Vec::new();
    let mut mttr_us: Vec<u64> = Vec::new();
    let mut unhealed = 0u64;
    let mut injected = 0u64;

    let incident_result = std::thread::scope(|scope| -> std::io::Result<()> {
        // Seeded closed-loop load on the healthy channels 0..DRIFT_CHANNEL.
        for client_index in 0..config.load_clients {
            let counts = &counts;
            let stop = &stop;
            let mut client = Client::connect(addr)?;
            let seed = task_seed(config.seed, client_index as u64);
            let gap = config.load_gap;
            scope.spawn(move || {
                let mut rng = SplitMix64::new(seed);
                let mut id = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    id += 1;
                    let channel = (rng.next_u64() % DRIFT_CHANNEL as u64) as usize;
                    let ps = 7.5 * (rng.next_u64() % 16) as f64;
                    counts.attempts.fetch_add(1, Ordering::Relaxed);
                    match client.call(&Envelope {
                        id: Some(id),
                        deadline_ms: None,
                        tenant: None,
                        req_id: None,
                        backend: None,
                        request: Request::SetDelay { channel, ps },
                    }) {
                        Ok((_, Response::Delay(_))) => {
                            counts.ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok((_, Response::Error(err))) if !is_hard_failure(err.kind) => {
                            counts.overloaded.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            counts.failures.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // A dead socket fails this request and every
                            // later one unless we reconnect.
                            counts.failures.fetch_add(1, Ordering::Relaxed);
                            if let Ok(fresh) = Client::connect(addr) {
                                client = fresh;
                            }
                        }
                    }
                    std::thread::sleep(gap);
                }
            });
        }

        // The misbehaving-client striker (masked along with drift).
        if faults_enabled {
            let stop = &stop;
            let strikes = &strikes;
            let chaos = NetChaos::new(task_seed(config.seed, 0xc4a05));
            scope.spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if matches!(chaos.strike(addr, n), Ok(Some(_))) {
                        strikes.fetch_add(1, Ordering::Relaxed);
                    }
                    n += 1;
                }
            });
        }

        // The incident driver: inject, time detection, time recovery.
        // Warm the drifted channel first so incident 1 measures healing,
        // not first-touch calibration.
        let (_, warm) = probe.call(&Envelope {
            id: Some(1),
            deadline_ms: None,
            tenant: None,
            req_id: None,
            backend: None,
            request: Request::SetDelay {
                channel: DRIFT_CHANNEL,
                ps: 60.0,
            },
        })?;
        if !matches!(warm, Response::Delay(_)) {
            stop.store(true, Ordering::Relaxed);
            return Err(std::io::Error::other(format!(
                "drift channel refused before any incident: {warm:?}"
            )));
        }

        let mut id = 100u64;
        for &delta_k in &config.incidents {
            if !handle.inject_drift("", DRIFT_CHANNEL, delta_k) {
                // Masked (VARDELAY_FAULTS=0): let the load soak for a
                // moment anyway so the quiet run's availability is a
                // measurement, not two warm-up requests.
                std::thread::sleep(Duration::from_millis(500));
                break;
            }
            injected += 1;
            let t0 = Instant::now();
            let budget = t0 + config.incident_budget;

            // Detection: the sentinel marks the channel unhealthy.
            let mut detected = false;
            while Instant::now() < budget {
                id += 1;
                if probe_stats(&mut probe, id)?.unhealthy >= 1 {
                    detected = true;
                    detect_us.push(t0.elapsed().as_micros() as u64);
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            if !detected {
                unhealed += 1;
                continue;
            }

            // Healing: recalibrated, re-admitted, nothing unhealthy left.
            let mut healed = false;
            while Instant::now() < budget {
                id += 1;
                let stats = probe_stats(&mut probe, id)?;
                if stats.unhealthy == 0
                    && handle.channel_state("", DRIFT_CHANNEL) == ChannelState::Healthy
                {
                    healed = true;
                    mttr_us.push(t0.elapsed().as_micros() as u64);
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            if !healed {
                unhealed += 1;
            }
        }
        stop.store(true, Ordering::Relaxed);
        Ok(())
    });
    stop.store(true, Ordering::Relaxed);
    incident_result?;

    handle.shutdown();
    let drained = handle.join();

    let ok = counts.ok.load(Ordering::Relaxed);
    let failures = counts.failures.load(Ordering::Relaxed);
    let completed = ok + failures;
    Ok(SoakReport {
        faults_enabled,
        incidents: injected,
        unhealed,
        detect_p50_us: quantile_us(&mut detect_us, 0.50),
        detect_p99_us: quantile_us(&mut detect_us, 0.99),
        mttr_p50_us: quantile_us(&mut mttr_us, 0.50),
        mttr_p99_us: quantile_us(&mut mttr_us, 0.99),
        attempts: counts.attempts.load(Ordering::Relaxed),
        ok,
        overloaded: counts.overloaded.load(Ordering::Relaxed),
        failures,
        availability: if completed == 0 {
            1.0
        } else {
            ok as f64 / completed as f64
        },
        strikes: strikes.load(Ordering::Relaxed),
        quarantines: drained.stats.quarantines,
        recalibrations: drained.stats.recalibrations,
        reaped: drained.stats.reaped,
        io_timeouts: drained.stats.io_timeouts,
        workers: drained.stats.workers,
        wall: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(mttr_p99_us: u64, availability: f64, unhealed: u64) -> SoakReport {
        SoakReport {
            faults_enabled: true,
            incidents: 4,
            unhealed,
            detect_p50_us: 30_000,
            detect_p99_us: 60_000,
            mttr_p50_us: mttr_p99_us / 2,
            mttr_p99_us,
            attempts: 4_000,
            ok: 3_990,
            overloaded: 10,
            failures: 0,
            availability,
            strikes: 12,
            quarantines: 3,
            recalibrations: 4,
            reaped: 2,
            io_timeouts: 1,
            workers: 2,
            wall: Duration::from_secs(8),
        }
    }

    #[test]
    fn the_record_round_trips_through_the_soak_gate() {
        let record = report(400_000, 1.0, 0).record("deadbeef", 1_700_000_000_000);
        let reparsed = Value::parse(&record.render()).expect("record renders valid JSON");
        assert_eq!(
            reparsed.get("experiments").and_then(Value::as_str),
            Some("soak")
        );
        let records = vec![record.clone(), record];
        let cmp = vardelay_obs::journal::compare_latest_soak(
            &records,
            vardelay_obs::journal::SOAK_MTTR_THRESHOLD,
            vardelay_obs::journal::SOAK_AVAILABILITY_FLOOR,
        )
        .expect("two identical records compare");
        assert!(!cmp.regressed, "{cmp}");
    }

    #[test]
    fn a_sabotaged_run_turns_the_gate_red_on_unhealed_incidents() {
        // Recalibration off: availability on the healthy channels holds
        // and MTTR is flat-zero, but nothing ever heals — `unhealed`
        // alone must trip the gate.
        let green = report(400_000, 1.0, 0).record("deadbeef", 1_700_000_000_000);
        let mut sabotaged = report(0, 1.0, 4);
        sabotaged.recalibrations = 0;
        sabotaged.mttr_p50_us = 0;
        let records = vec![green, sabotaged.record("deadbeef", 1_700_000_100_000)];
        let cmp = vardelay_obs::journal::compare_latest_soak(
            &records,
            vardelay_obs::journal::SOAK_MTTR_THRESHOLD,
            vardelay_obs::journal::SOAK_AVAILABILITY_FLOOR,
        )
        .expect("records compare");
        assert!(cmp.regressed, "{cmp}");
        assert!(cmp.to_string().contains("REGRESSED"), "{cmp}");
    }

    #[test]
    fn the_summary_carries_the_fields_ci_greps() {
        let summary = report(400_000, 1.0, 0).summary();
        for needle in [
            "incidents=4",
            "unhealed=0",
            "availability=1.0000",
            "quarantines=3",
            "recalibrations=4",
            "faults=on",
        ] {
            assert!(summary.contains(needle), "{needle} missing from {summary}");
        }
    }

    #[test]
    fn quantiles_use_nearest_rank_and_default_to_zero() {
        assert_eq!(quantile_us(&mut [], 0.99), 0);
        assert_eq!(quantile_us(&mut [7], 0.50), 7);
        let mut samples = vec![40, 10, 20, 30];
        assert_eq!(quantile_us(&mut samples, 0.99), 40);
        assert_eq!(quantile_us(&mut samples, 0.50), 30);
    }
}
