//! Ablation A1: why four stages, and why a coarse mux instead of
//! cascading two fine circuits (DESIGN.md §6).

use crate::EXPERIMENT_SEED;
use vardelay_analog::EdgeTransform;
use vardelay_core::{FineDelayLine, ModelConfig};
use vardelay_measure::{tie_sequence, JitterStats};
use vardelay_runner::Runner;
use vardelay_siggen::{BitPattern, EdgeStream};
use vardelay_units::{BitRate, Time, Voltage};

/// One row of the stage-count ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageAblation {
    /// Number of cascaded variable-gain stages.
    pub stages: usize,
    /// Adjustment range at low rate (1 ns toggle).
    pub dc_range: Time,
    /// Adjustment range at the 6.4 GHz RZ stress interval (78 ps).
    pub range_at_6g4: Time,
    /// Output TJ pk-pk on a clean 6.4 Gb/s PRBS7 stream (added jitter).
    pub added_tj: Time,
}

/// Sweeps the cascade depth 1..=max_stages, reporting the range/jitter
/// trade-off that motivates the paper's choice of four stages plus a
/// passive coarse section.
pub fn stage_count_ablation(max_stages: usize, bits: usize) -> Vec<StageAblation> {
    stage_count_ablation_with(Runner::global(), max_stages, bits)
}

/// [`stage_count_ablation`] on an explicit [`Runner`]. Cells are fully
/// independent — each builds its own line and seeds its edge model with
/// `EXPERIMENT_SEED + stages` — so the fan-out is bit-identical to the
/// serial loop.
pub fn stage_count_ablation_with(
    runner: Runner,
    max_stages: usize,
    bits: usize,
) -> Vec<StageAblation> {
    let rate = BitRate::from_gbps(6.4);
    let clean = EdgeStream::nrz(&BitPattern::prbs7(1, bits), rate);
    runner.run(max_stages, |idx| {
        let stages = idx + 1;
        let mut cfg = ModelConfig::paper_prototype();
        cfg.stages = stages;
        let line = FineDelayLine::new(&cfg.quiet(), EXPERIMENT_SEED);
        let (vctrls, intervals) = line.default_grids();
        let mut model = line.edge_model(&vctrls, &intervals, EXPERIMENT_SEED + stages as u64);
        model.set_vctrl(Voltage::from_v(0.75));
        let out = model.transform(&clean);
        let added = JitterStats::from_times(&tie_sequence(&out))
            .expect("stream carries edges")
            .peak_to_peak;
        StageAblation {
            stages,
            dc_range: line.delay_range(Time::from_ps(1000.0)),
            range_at_6g4: line.delay_range(Time::from_ps(78.0)),
            added_tj: added,
        }
    })
}

/// The "one coarse level of logic vs a second fine cascade" comparison:
/// jitter added by the 4-stage + passive-coarse architecture versus an
/// 8-stage all-fine cascade covering the same total range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchitectureComparison {
    /// Added TJ of 4 fine stages + passive coarse taps (7 active stages).
    pub coarse_plus_fine_tj: Time,
    /// Added TJ of an 8-stage fine cascade (9 active stages).
    pub all_fine_tj: Time,
    /// DC range of the 8-stage cascade (it does cover the range…).
    pub all_fine_range: Time,
}

/// Quantifies the §3 design argument ("we must be concerned with the
/// undesirable noise and jitter added by each stage").
pub fn architecture_comparison(bits: usize) -> ArchitectureComparison {
    architecture_comparison_with(Runner::global(), bits)
}

/// [`architecture_comparison`] on an explicit [`Runner`]. The two arms
/// are independent builds with their own seeds, so running them as two
/// tasks is bit-identical to the serial order.
pub fn architecture_comparison_with(runner: Runner, bits: usize) -> ArchitectureComparison {
    let rate = BitRate::from_gbps(6.4);
    let clean = EdgeStream::nrz(&BitPattern::prbs7(1, bits), rate);

    // Paper architecture: 4 fine + output + fanout + mux = 7 active.
    // Alternative: two fine circuits back-to-back = 8 VGA + output = 9.
    let arms = [
        (4usize, 7usize, EXPERIMENT_SEED + 40),
        (8, 9, EXPERIMENT_SEED + 41),
    ];
    let measured = runner.par_map(&arms, |_, &(stages, active, seed)| {
        let mut cfg = ModelConfig::paper_prototype();
        cfg.stages = stages;
        let line = FineDelayLine::new(&cfg.quiet(), EXPERIMENT_SEED);
        let (vctrls, intervals) = line.default_grids();
        let table = line.characterize(&vctrls, &intervals);
        let mut model = vardelay_analog::CharacterizedDelay::new(
            table,
            Voltage::from_v(0.75),
            cfg.chain_rj(active),
            seed,
        );
        let out = model.transform(&clean);
        let tj = JitterStats::from_times(&tie_sequence(&out))
            .expect("stream carries edges")
            .peak_to_peak;
        (tj, line.delay_range(Time::from_ps(1000.0)))
    });

    ArchitectureComparison {
        coarse_plus_fine_tj: measured[0].0,
        all_fine_tj: measured[1].0,
        all_fine_range: measured[1].1,
    }
}

/// The common-vs-per-stage control ablation (DESIGN.md §6): the paper
/// drives all stages from one `Vctrl` "for simplicity". Per-stage control
/// could stagger the stages to linearize the transfer — this quantifies
/// what that buys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlStrategyAblation {
    /// Range with the common control (paper's choice).
    pub common_range: Time,
    /// Integral nonlinearity of the common-control transfer curve.
    pub common_inl: Time,
    /// Range with staggered per-stage controls spanning the same span.
    pub staggered_range: Time,
    /// INL of the staggered transfer curve.
    pub staggered_inl: Time,
}

/// Sweeps both control strategies over 13 settings at a 1 Gb/s toggle.
///
/// Staggering: stage `i` of `n` runs at
/// `v + (i − (n−1)/2) · span/(2n)`, clamped — each stage operates on a
/// different (more linear) part of the sigmoid.
pub fn control_strategy_ablation() -> ControlStrategyAblation {
    control_strategy_ablation_with(Runner::global())
}

/// [`control_strategy_ablation`] on an explicit [`Runner`]. Each of the
/// 13 settings measures both strategies on its own clone of the probe:
/// `set_vctrl` / `set_stage_vctrls` fully override the stage controls,
/// so a cloned-and-set probe is bit-identical to the serial loop's
/// reused one — only the wall clock changes.
pub fn control_strategy_ablation_with(runner: Runner) -> ControlStrategyAblation {
    use vardelay_measure::linearity::integral_nonlinearity;

    let cfg = ModelConfig::paper_prototype().quiet();
    let line = FineDelayLine::new(&cfg, EXPERIMENT_SEED);
    let interval = Time::from_ps(1000.0);
    let points = 13;
    let span = 1.5;
    let stages = line.stage_count();

    let rows = runner.run(points, |i| {
        let v = span * i as f64 / (points - 1) as f64;
        let mut probe = line.clone();
        probe.set_vctrl(Voltage::from_v(v));
        let common = probe.measure_delay(interval).as_ps();

        let offsets: Vec<Voltage> = (0..stages)
            .map(|k| {
                let off = (k as f64 - (stages as f64 - 1.0) / 2.0) * span / (2.0 * stages as f64);
                Voltage::from_v((v + off).clamp(0.0, span))
            })
            .collect();
        probe.set_stage_vctrls(&offsets);
        let staggered = probe.measure_delay(interval).as_ps();
        (v, common, staggered)
    });
    let xs: Vec<f64> = rows.iter().map(|r| r.0).collect();
    let common: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let staggered: Vec<f64> = rows.iter().map(|r| r.2).collect();
    let range = |ys: &[f64]| {
        Time::from_ps(
            ys.iter().cloned().fold(f64::MIN, f64::max)
                - ys.iter().cloned().fold(f64::MAX, f64::min),
        )
    };
    ControlStrategyAblation {
        common_range: range(&common),
        common_inl: Time::from_ps(integral_nonlinearity(&xs, &common).expect("well-posed")),
        staggered_range: range(&staggered),
        staggered_inl: Time::from_ps(integral_nonlinearity(&xs, &staggered).expect("well-posed")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_grows_with_stages() {
        let rows = stage_count_ablation(5, 1200);
        for w in rows.windows(2) {
            assert!(
                w[1].dc_range > w[0].dc_range,
                "{} -> {}",
                w[0].dc_range,
                w[1].dc_range
            );
        }
        // Four stages clear the 33 ps coarse step even at 6.4 GHz RZ…
        assert!(rows[3].range_at_6g4 > Time::from_ps(20.0));
        // …while one stage never could.
        assert!(rows[0].range_at_6g4 < Time::from_ps(15.0));
    }

    #[test]
    fn jitter_grows_with_stages() {
        let rows = stage_count_ablation(5, 2000);
        assert!(
            rows[4].added_tj > rows[0].added_tj,
            "{} vs {}",
            rows[4].added_tj,
            rows[0].added_tj
        );
    }

    #[test]
    fn staggered_control_trades_range_for_linearity() {
        let r = control_strategy_ablation();
        // Staggering averages the sigmoid over offsets: a more linear
        // curve, at the cost of some range (the outer stages clamp).
        assert!(
            r.staggered_inl < r.common_inl,
            "staggering did not linearize: {r:?}"
        );
        assert!(
            r.staggered_range <= r.common_range,
            "staggering cannot grow the range: {r:?}"
        );
        assert!(
            r.staggered_range > r.common_range * 0.6,
            "too much range lost: {r:?}"
        );
    }

    #[test]
    fn coarse_section_beats_a_second_cascade_on_jitter() {
        let cmp = architecture_comparison(2000);
        assert!(
            cmp.all_fine_tj > cmp.coarse_plus_fine_tj,
            "all-fine {} vs coarse+fine {}",
            cmp.all_fine_tj,
            cmp.coarse_plus_fine_tj
        );
        // The 8-stage cascade does cover the range — the objection is
        // jitter, not range.
        assert!(cmp.all_fine_range > Time::from_ps(100.0));
    }
}
