//! The kill-mid-run chaos gate (ISSUE 4 tentpole acceptance): a `repro`
//! campaign killed partway through and resumed with `--resume` must end
//! with every CSV **byte-identical** to an uninterrupted run, leave no
//! `.tmp` stage file behind, and never tear the journal. The kill is
//! seeded with `VARDELAY_KILL_AFTER=<experiment>` (`vardelay-faults`),
//! which aborts the process immediately after that experiment's
//! checkpoint lands — the worst case for resume correctness.
//!
//! The selection `fig9,fig1,table1` keeps the test fast (all three are
//! sub-100 ms experiments); CI's chaos job runs the same protocol over
//! the full `all` campaign in release mode.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;

use vardelay_obs::journal;
use vardelay_obs::json::Value;

/// The fast experiment selection both runs execute.
const SELECTION: &str = "fig9,fig1,table1";

struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(name: &str) -> Scratch {
        let mut dir = std::env::temp_dir();
        dir.push(format!("vardelay_resume_e2e_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch { dir }
    }

    fn repro(&self, args: &[&str], envs: &[(&str, &str)]) -> std::process::Output {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
        cmd.args(args).current_dir(&self.dir);
        for (k, v) in envs {
            cmd.env(k, v);
        }
        cmd.output().expect("spawn repro")
    }

    fn out_dir(&self) -> PathBuf {
        self.dir.join("target/repro")
    }

    /// File name → contents for every CSV under `target/repro/`.
    fn csvs(&self) -> BTreeMap<String, Vec<u8>> {
        let mut map = BTreeMap::new();
        for entry in std::fs::read_dir(self.out_dir()).expect("read output dir") {
            let entry = entry.unwrap();
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".csv") {
                map.insert(name, std::fs::read(entry.path()).unwrap());
            }
        }
        map
    }

    fn tmp_files(&self) -> Vec<String> {
        let mut found = Vec::new();
        let mut stack = vec![self.out_dir()];
        while let Some(dir) = stack.pop() {
            let Ok(entries) = std::fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "tmp") {
                    found.push(path.display().to_string());
                }
            }
        }
        found
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn killed_campaign_resumes_to_byte_identical_csvs() {
    // Reference: the same selection, uninterrupted.
    let clean = Scratch::new("clean");
    let out = clean.repro(&[SELECTION], &[]);
    assert!(out.status.success(), "clean run failed: {out:?}");
    let reference = clean.csvs();
    assert_eq!(reference.len(), 3, "three experiments → three CSVs");

    // Chaos: the same selection, killed right after fig9's checkpoint.
    let chaos = Scratch::new("chaos");
    let killed = chaos.repro(&[SELECTION], &[("VARDELAY_KILL_AFTER", "fig9")]);
    assert!(
        !killed.status.success(),
        "the seeded abort must kill the process"
    );
    assert!(
        chaos.tmp_files().is_empty(),
        "an interrupted run never leaves .tmp files: {:?}",
        chaos.tmp_files()
    );
    assert!(
        chaos.out_dir().join("checkpoints/fig9.json").is_file(),
        "fig9's checkpoint landed before the abort"
    );
    // The journal survived the abort in a loadable state (here: the kill
    // happens before the final append, so it is simply absent).
    journal::load(&chaos.dir.join("BENCH_repro.json")).expect("journal loadable after kill");

    // Sabotage on top of the crash: a stale stage file and a torn journal
    // line, exactly what a kill inside a write would leave behind.
    std::fs::write(chaos.out_dir().join("fig01_eye_scan.csv.tmp"), "torn").unwrap();
    let journal_path = chaos.dir.join("BENCH_repro.json");
    journal::append(
        &journal_path,
        &Value::obj()
            .with("schema", journal::SCHEMA_VERSION)
            .with("experiments", SELECTION)
            .with("wall_s", 9.9),
    )
    .unwrap();
    let full = std::fs::read(&journal_path).unwrap();
    std::fs::write(&journal_path, &full[..full.len() - 7]).unwrap(); // tear mid-line

    // Resume: fig9 skips (checkpoint matches), fig1 + table1 re-run.
    let resumed = chaos.repro(&[SELECTION, "--resume"], &[]);
    assert!(resumed.status.success(), "resume failed: {resumed:?}");
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(
        stdout.contains("fig9 — checkpoint matches, skipped"),
        "fig9 must be skipped on resume: {stdout}"
    );
    assert!(
        stdout.contains("swept 1 stale .tmp"),
        "the stale stage file is swept at startup: {stdout}"
    );

    // Acceptance: every CSV byte-identical to the uninterrupted run.
    assert_eq!(
        chaos.csvs(),
        reference,
        "resumed CSVs differ from clean run"
    );
    assert!(chaos.tmp_files().is_empty());

    // The torn journal line was repaired (dropped), the resumed run's
    // record appended cleanly, and it is flagged `resumed`.
    let records = journal::load(&journal_path).expect("journal healthy after resume");
    assert_eq!(records.len(), 1, "torn line dropped, resume record kept");
    assert_eq!(
        records[0].get("resumed").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(
        records[0].get("resume_skips").and_then(Value::as_u64),
        Some(1)
    );
}

/// `--resume` trusts nothing but matching digests: a CSV tampered with
/// after the crash forces its experiment to re-run.
#[test]
fn resume_reruns_experiments_whose_outputs_were_tampered() {
    let scratch = Scratch::new("tamper");
    let out = scratch.repro(&[SELECTION], &[]);
    assert!(out.status.success());
    let reference = scratch.csvs();

    std::fs::write(
        scratch.out_dir().join("fig09_coarse_taps.csv"),
        "tap,ps\n0,999.0\n",
    )
    .unwrap();

    let resumed = scratch.repro(&[SELECTION, "--resume"], &[]);
    assert!(resumed.status.success());
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(
        !stdout.contains("fig9 — checkpoint matches"),
        "tampered fig9 must re-run: {stdout}"
    );
    assert!(
        stdout.contains("fig1 — checkpoint matches, skipped"),
        "untouched fig1 still skips: {stdout}"
    );
    assert_eq!(
        scratch.csvs(),
        reference,
        "re-running restores the tampered CSV byte-for-byte"
    );
}
