//! End-to-end regression tests for the `repro` benchmark journal — the
//! ISSUE 2 headline bug: a single-experiment run (`repro fig9`) used to
//! **overwrite** the root `BENCH_repro.json`, erasing the record of the
//! last full `repro all` run. These tests drive the real binary in a
//! scratch working directory and assert the journal only ever grows.

use std::path::{Path, PathBuf};
use std::process::Command;

use vardelay_obs::journal;
use vardelay_obs::json::Value;

/// A scratch directory the repro binary runs in (its journal and
/// `target/repro/` CSVs land here, not in the repository).
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(name: &str) -> Scratch {
        let mut dir = std::env::temp_dir();
        dir.push(format!("vardelay_repro_e2e_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch { dir }
    }

    fn journal_path(&self) -> PathBuf {
        self.dir.join("BENCH_repro.json")
    }

    /// Runs `repro <arg>` with the scratch dir as cwd, returning the exit
    /// code.
    fn repro(&self, arg: &str) -> i32 {
        self.repro_env(&[arg], &[]).status.code().unwrap_or(-1)
    }

    /// Runs `repro` with arbitrary args and extra environment variables,
    /// returning the full output for stderr assertions.
    fn repro_env(&self, args: &[&str], envs: &[(&str, &str)]) -> std::process::Output {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
        cmd.args(args).current_dir(&self.dir);
        for (k, v) in envs {
            cmd.env(k, v);
        }
        cmd.output().expect("spawn repro")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn seeded_all_record(wall_s: f64) -> Value {
    Value::obj()
        .with("schema", journal::SCHEMA_VERSION)
        .with("experiments", "all")
        .with("threads", 1u64)
        .with("wall_s", wall_s)
}

#[test]
fn single_experiment_runs_append_and_never_clobber_the_all_record() {
    let scratch = Scratch::new("no_clobber");
    // The journal already holds a full-run record (legacy pretty format,
    // exactly what a pre-journal checkout carries).
    std::fs::write(
        scratch.journal_path(),
        "{\n  \"experiments\": \"all\",\n  \"threads\": 1,\n  \"wall_s\": 6.5,\n  \
         \"csv_points\": 1934\n}\n",
    )
    .unwrap();

    assert_eq!(scratch.repro("fig9"), 0);
    assert_eq!(scratch.repro("fig9"), 0);

    let records = journal::load(&scratch.journal_path()).unwrap();
    assert_eq!(
        records.len(),
        3,
        "seeded all record + two fig9 appends, no overwrite"
    );
    // The pre-existing `all` record survived, bit-for-bit in content.
    assert_eq!(
        records[0].get("experiments").and_then(Value::as_str),
        Some("all")
    );
    assert_eq!(records[0].get("wall_s").and_then(Value::as_f64), Some(6.5));
    assert_eq!(
        records[0].get("csv_points").and_then(Value::as_u64),
        Some(1934)
    );
    for r in &records[1..] {
        assert_eq!(r.get("experiments").and_then(Value::as_str), Some("fig9"));
        assert!(r.get("wall_s").and_then(Value::as_f64).is_some());
        assert!(
            r.get("csv_points").and_then(Value::as_u64).unwrap_or(0) > 0,
            "fig9 writes a CSV with data points"
        );
    }
    // And the fig9 CSV really landed under the scratch target/repro.
    assert!(scratch
        .dir
        .join("target/repro/fig09_coarse_taps.csv")
        .is_file());
}

#[test]
fn compare_gates_on_wall_clock_regression() {
    let scratch = Scratch::new("compare_gate");

    // No records at all → not comparable (exit 2).
    assert_eq!(scratch.repro("compare"), 2);

    // Two healthy runs → gate passes.
    journal::append(&scratch.journal_path(), &seeded_all_record(6.5)).unwrap();
    journal::append(&scratch.journal_path(), &seeded_all_record(6.6)).unwrap();
    assert_eq!(scratch.repro("compare"), 0);

    // A >10 % regression in the newest run → gate fails.
    journal::append(&scratch.journal_path(), &seeded_all_record(7.5)).unwrap();
    assert_eq!(scratch.repro("compare"), 1);

    // Interleaved single-figure records never confuse the gate: append a
    // fast fig9 record after the regression — compare still looks at the
    // latest two `all` records.
    journal::append(
        &scratch.journal_path(),
        &Value::obj()
            .with("schema", journal::SCHEMA_VERSION)
            .with("experiments", "fig9")
            .with("threads", 1u64)
            .with("wall_s", 0.01),
    )
    .unwrap();
    assert_eq!(scratch.repro("compare"), 1);
}

#[test]
fn unknown_subcommand_exits_with_usage_error() {
    let scratch = Scratch::new("usage");
    assert_eq!(scratch.repro("fig99"), 2);
    assert!(!Path::new(&scratch.journal_path()).exists());
    // Unknown names inside a comma selection are rejected the same way.
    assert_eq!(scratch.repro("fig9,fig99"), 2);
    assert!(!Path::new(&scratch.journal_path()).exists());
}

/// The ISSUE 4 satellite bug: `repro faults` with the injection kill
/// switch thrown (`VARDELAY_FAULTS=0`) runs no campaign and writes no
/// CSV — it used to append a `"wall_s":0,"csv_points":0` record that
/// poisoned the journal's time series. Zero-output runs must not append.
#[test]
fn zero_output_run_appends_no_journal_record() {
    let scratch = Scratch::new("zero_record");
    let out = scratch.repro_env(&["faults"], &[("VARDELAY_FAULTS", "0")]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("zero-point journal append skipped"),
        "the skip is announced: {stdout}"
    );
    assert!(
        !scratch.journal_path().exists(),
        "no journal record for a run that produced nothing"
    );
    assert!(
        !scratch
            .dir
            .join("target/repro/BENCH_repro_last.json")
            .exists(),
        "no last-run record either"
    );
}

/// `repro compare` must fail with a clear one-line error — not a panic,
/// not a silent pass — when fewer than two valid records remain after
/// filtering zero-point and resumed records.
#[test]
fn compare_reports_too_few_records_after_filtering() {
    let scratch = Scratch::new("compare_filtered");
    // One healthy record, one zero-point record (the old bug's droppings),
    // one resumed partial run: only the first is a valid baseline.
    journal::append(&scratch.journal_path(), &seeded_all_record(6.5)).unwrap();
    journal::append(
        &scratch.journal_path(),
        &seeded_all_record(0.0)
            .with("csv_points", 0u64)
            .with("csv_files", 0u64),
    )
    .unwrap();
    journal::append(
        &scratch.journal_path(),
        &seeded_all_record(1.2)
            .with("resumed", true)
            .with("resume_skips", 12u64),
    )
    .unwrap();
    let out = scratch.repro_env(&["compare"], &[]);
    assert_eq!(out.status.code(), Some(2), "not comparable → exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let line = stderr.lines().find(|l| !l.is_empty()).unwrap_or_default();
    assert!(
        line.contains("need two valid") && line.contains("found 1"),
        "one clear diagnostic line, got: {stderr}"
    );
}
