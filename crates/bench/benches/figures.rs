//! Criterion benches — one per paper figure/table.
//!
//! Each bench regenerates the corresponding experiment at a reduced size,
//! so `cargo bench` both times the harness and re-derives every result.
//! The full-size numbers are produced by the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use vardelay_bench::{ablation, eyes, fine_delay, injection, skew};

fn configure(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_fig7(c: &mut Criterion) {
    configure(c).bench_function("fig07_fine_delay_vs_vctrl", |b| {
        b.iter(|| fine_delay::fig7_delay_vs_vctrl(7))
    });
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig09_coarse_taps", |b| {
        b.iter(fine_delay::fig9_coarse_taps)
    });
}

fn bench_fig12(c: &mut Criterion) {
    c.bench_function("fig12_eye_4g8", |b| b.iter(|| eyes::fig12_eye_4g8(1000)));
}

fn bench_fig13(c: &mut Criterion) {
    c.bench_function("fig13_eye_6g4", |b| b.iter(|| eyes::fig13_eye_6g4(1000)));
}

fn bench_fig14(c: &mut Criterion) {
    c.bench_function("fig14_rz_6g4", |b| b.iter(|| eyes::fig14_rz_6g4(1000)));
}

fn bench_fig15(c: &mut Criterion) {
    c.bench_function("fig15_range_vs_freq", |b| {
        b.iter(|| fine_delay::fig15_range_vs_frequency(&[0.5, 3.2, 6.4]))
    });
}

fn bench_fig16(c: &mut Criterion) {
    c.bench_function("fig16_injection", |b| {
        b.iter(|| injection::fig16_injection(1000))
    });
}

fn bench_fig17(c: &mut Criterion) {
    c.bench_function("fig17_injection_sweep", |b| {
        b.iter(|| injection::fig17_injection_sweep(600, 4))
    });
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig02_deskew", |b| b.iter(|| skew::fig2_deskew(4)));
}

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig01_eye_alignment", |b| b.iter(skew::fig1_eye_alignment));
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_requirements", |b| {
        b.iter(fine_delay::table1_requirements)
    });
}

fn bench_ablation(c: &mut Criterion) {
    c.bench_function("ablation_stage_count", |b| {
        b.iter(|| ablation::stage_count_ablation(3, 400))
    });
}

fn bench_engine_throughput(c: &mut Criterion) {
    use vardelay_analog::EdgeTransform;
    use vardelay_core::{FineDelayLine, ModelConfig};
    use vardelay_siggen::{BitPattern, EdgeStream};
    use vardelay_units::BitRate;

    // Waveform engine: one fine-line pass over a 24-bit clock.
    let cfg = ModelConfig::paper_prototype().quiet();
    c.bench_function("engine_waveform_fine_pass", |b| {
        let line = FineDelayLine::new(&cfg, 1);
        b.iter(|| line.measure_delay(vardelay_units::Time::from_ps(320.0)))
    });

    // Edge engine: characterized model over 10k bits.
    let line = FineDelayLine::new(&cfg, 1);
    let (vctrls, intervals) = line.default_grids();
    let model = line.edge_model(&vctrls, &intervals, 2);
    let stream = EdgeStream::nrz(&BitPattern::prbs7(1, 10_000), BitRate::from_gbps(6.4));
    c.bench_function("engine_edge_10k_bits", |b| {
        b.iter_batched(
            || model.clone(),
            |mut m| m.transform(&stream),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_extensions(c: &mut Criterion) {
    use vardelay_bench::extensions;
    c.bench_function("x1_multichannel", |b| b.iter(extensions::x1_multichannel));
    c.bench_function("x3_drift", |b| b.iter(extensions::x3_drift));
    c.bench_function("x4_coded_traffic", |b| {
        b.iter(|| extensions::x4_coded_traffic(600))
    });
}

fn bench_runner(c: &mut Criterion) {
    use vardelay_core::{FineDelayLine, ModelConfig};
    use vardelay_runner::Runner;

    // Serial-vs-parallel fan-out of the same sweep: the ratio of these
    // two is the runner's wall-clock win on this host.
    c.bench_function("runner_fig7_serial", |b| {
        b.iter(|| fine_delay::fig7_delay_vs_vctrl_with(Runner::serial(), 7))
    });
    c.bench_function("runner_fig7_parallel", |b| {
        b.iter(|| fine_delay::fig7_delay_vs_vctrl_with(Runner::global(), 7))
    });

    // Characterization with a warm cache versus a forced remeasure.
    let cfg = ModelConfig::paper_prototype().quiet();
    let line = FineDelayLine::new(&cfg, 1);
    let (vctrls, intervals) = line.default_grids();
    let small_v = &vctrls[..3];
    let small_i = &intervals[..2];
    line.characterize(small_v, small_i); // prime the cache
    c.bench_function("characterize_cached", |b| {
        b.iter(|| line.characterize(small_v, small_i))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets =
        bench_fig7, bench_fig9, bench_fig12, bench_fig13, bench_fig14,
        bench_fig15, bench_fig16, bench_fig17, bench_fig2, bench_fig1,
        bench_table1, bench_ablation, bench_engine_throughput, bench_extensions,
        bench_runner
}
criterion_main!(figures);
