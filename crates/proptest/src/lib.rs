//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the (small) subset of proptest's API that the workspace's property
//! tests use: the [`proptest!`] macro, range/`any`/`collection::vec`
//! strategies, and the `prop_assert*` macros. Semantics differ from real
//! proptest in two deliberate ways:
//!
//! * cases are driven by a fixed per-test seed (derived from the test
//!   name), so every run explores the same inputs — failures reproduce
//!   without a persistence file;
//! * there is no shrinking: a failing case panics with the values baked
//!   into the assertion message.
//!
//! If the real crate ever becomes available again, deleting this crate
//! and restoring the registry dependency restores full behavior — the
//! test files themselves need no changes.

/// Number of cases each property runs. Matches the order of magnitude of
/// real proptest's default (256) while keeping the suite fast.
pub const CASES: u32 = 96;

/// The deterministic RNG driving the generators — SplitMix64, the same
/// generator the workspace's own experiments standardize on.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub const fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        (self.next_f64() * n as f64) as u64
    }
}

/// FNV-1a over a string — used to derive a stable per-test seed from the
/// test's name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A value generator. Ranges, [`any`] markers and
/// [`collection::vec`] all implement this.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let start = self.start as u128;
                let span = (<$t>::MAX as u128) - start + 1;
                (start + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let start = *self.start() as u128;
                let span = (*self.end() as u128) - start + 1;
                (start + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

/// Marker returned by [`any`]; the generated type decides the
/// distribution.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Generates an arbitrary value of `T` (full value domain).
pub fn any<T>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_int_strategy!(u8, u16, u32, u64);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy producing `Vec`s of `elem` with a length drawn from
    /// `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                self.size.start + rng.below((self.size.end - self.size.start) as u64) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Asserts a condition inside a property, reporting the failing message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Declares deterministic property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u64..10, f in -1.5f64..2.5, n in 3usize..7) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
            prop_assert!((3..7).contains(&n));
        }

        #[test]
        fn vectors_respect_size(v in collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn range_from_stays_above_start(s in 1u16..) {
            prop_assert!(s >= 1);
        }
    }

    #[test]
    fn determinism() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seed_differs_by_name() {
        assert_ne!(seed_from_name("alpha"), seed_from_name("beta"));
    }
}
