//! A carry-chain Vernier delay generator as a [`DelayBackend`].
//!
//! Two slightly mismatched FPGA carry chains race; the delay between
//! the launch and capture edges advances by one *bin* per tap, so the
//! programmable step is the bin width — ~0.67 ps for a modern chain —
//! over a long (hundreds of ps) range. The catch, relative to the
//! paper's circuit: bin widths are nonuniform (per-device DNL frozen at
//! placement), and the chain must be drained and re-armed between
//! settings, a dead time of tens of nanoseconds during which the
//! channel produces nothing useful.
//!
//! The behavioral model here is a pure function of the instance seed
//! (bin widths), the drift state, and the control voltage — so an
//! undrifted Vernier reproduces its own calibration table bit for bit,
//! exactly the property the sentinel machinery leans on.

use vardelay_core::config::ModelConfig;
use vardelay_core::{CalibrationTable, SetDelayError, VctrlDac};
use vardelay_faults::{corrupt_table, FaultKind};
use vardelay_runner::{task_seed, Runner};
use vardelay_siggen::SplitMix64;
use vardelay_units::{Time, Voltage};

use crate::{BackendCaps, BackendKind, BackendSetting, DelayBackend};

/// Carry-chain taps in each chain.
const BINS: usize = 512;
/// Nominal per-bin step, from the refined carry-chain literature.
const NOMINAL_STEP_PS: f64 = 0.67;
/// Per-bin DNL spread as a fraction of the nominal step.
const DNL_FRACTION: f64 = 0.05;
/// Fixed insertion delay of the chain front-end.
const BASE_DELAY_PS: f64 = 1250.0;
/// Drain + re-arm dead time between consecutive settings.
const REARM_DEAD_TIME: Time = Time::from_ns(25.0);
/// Chain-propagation tempco per kelvin (fractional).
const CHAIN_TEMPCO_PER_K: f64 = 1.0e-4;
/// Control span: 0..1 V steering DAC.
const SPAN_V: f64 = 1.0;
/// Calibration sweep points (denser than the circuit's 17: the DNL
/// structure is finer than the VGA's smooth curve).
const CAL_POINTS: usize = 33;
/// How far a chain bubble collapses its bin.
const BUBBLE_SHRINK: f64 = 0.02;

/// Behavioral FPGA carry-chain Vernier pair (see module docs).
#[derive(Debug, Clone)]
pub struct VernierBackend {
    /// Per-bin widths: the nominal step plus this instance's frozen DNL,
    /// with any injected chain bubbles applied.
    widths: Vec<Time>,
    dac: VctrlDac,
    calibration: Option<CalibrationTable>,
    /// Whether the chain currently holds a setting — the next
    /// [`set_delay`](DelayBackend::set_delay) must drain and re-arm it.
    armed: bool,
    /// Multiplicative propagation-delay scale vs the calibration point.
    drift_scale: f64,
}

impl VernierBackend {
    /// Builds an instance whose DNL pattern derives from `seed` (the
    /// shared model config is validated but carries no Vernier
    /// parameters — the chain physics is the FPGA's, not the paper's).
    pub fn new(config: &ModelConfig, seed: u64) -> VernierBackend {
        config.validate();
        let mut rng = SplitMix64::new(task_seed(seed, 0xbe11));
        let widths = (0..BINS)
            .map(|_| {
                let dnl = DNL_FRACTION * (2.0 * rng.next_f64() - 1.0);
                Time::from_ps(NOMINAL_STEP_PS * (1.0 + dnl))
            })
            .collect();
        VernierBackend {
            widths,
            dac: VctrlDac::new(9, Voltage::from_v(0.0), Voltage::from_v(SPAN_V)),
            calibration: None,
            armed: false,
            drift_scale: 1.0,
        }
    }

    /// Delay at a fractional chain position, summing real bin widths.
    fn delay_at_position(&self, x: f64) -> Time {
        let pos = x.clamp(0.0, 1.0) * BINS as f64;
        let bin = (pos.floor() as usize).min(BINS - 1);
        let frac = pos - bin as f64;
        let mut acc = 0.0;
        for w in &self.widths[..bin] {
            acc += w.as_ps();
        }
        acc += frac * self.widths[bin].as_ps();
        Time::from_ps((BASE_DELAY_PS + acc) * self.drift_scale)
    }
}

impl DelayBackend for VernierBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Vernier
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            kind: BackendKind::Vernier,
            // Sub-picosecond steps, with DNL headroom under the bound.
            resolution: Time::from_ps(1.0),
            // 512 bins × ~0.67 ps ≈ 343 ps.
            min_range: Time::from_ps(300.0),
            monotone: true,
            dead_time: REARM_DEAD_TIME,
        }
    }

    fn control_dac(&self) -> VctrlDac {
        self.dac
    }

    fn calibration(&self) -> Option<&CalibrationTable> {
        self.calibration.as_ref()
    }

    fn install_calibration(&mut self, table: CalibrationTable) {
        self.calibration = Some(table);
        // A restore lands on a drained chain: the first setting is free.
        self.armed = false;
    }

    fn calibrate_with(&mut self, _runner: Runner) -> &CalibrationTable {
        // The probe is a closed-form pure function — no waveform
        // simulation to parallelize, so the runner is unused.
        let grid: Vec<Voltage> = (0..CAL_POINTS)
            .map(|i| {
                Voltage::from_v(0.0)
                    .lerp(Voltage::from_v(SPAN_V), i as f64 / (CAL_POINTS - 1) as f64)
            })
            .collect();
        let table = CalibrationTable::from_measurement(&grid, |v| self.measure_at(v, Time::ZERO));
        self.calibration = Some(table);
        self.armed = false;
        self.calibration.as_ref().expect("just installed")
    }

    fn set_delay(&mut self, target: Time) -> Result<BackendSetting, SetDelayError> {
        let cal = self
            .calibration
            .as_ref()
            .ok_or(SetDelayError::NotCalibrated)?;
        let max = cal.range();
        if target < Time::ZERO || target > max {
            return Err(SetDelayError::OutOfRange {
                requested: target,
                min: Time::ZERO,
                max,
            });
        }
        let fine_target = cal.min_delay() + target;
        let vctrl_exact =
            cal.vctrl_for_delay(fine_target)
                .map_err(|_| SetDelayError::OutOfRange {
                    requested: target,
                    min: Time::ZERO,
                    max,
                })?;
        let dac_code = self.dac.code_for(vctrl_exact);
        let vctrl = self.dac.voltage(dac_code);
        let predicted_delay = cal.delay_at(vctrl) - cal.min_delay();
        let dead_time = if self.armed {
            REARM_DEAD_TIME
        } else {
            Time::ZERO
        };
        self.armed = true;
        Ok(BackendSetting {
            tap: 0,
            dac_code,
            vctrl,
            predicted_delay,
            predicted_error: predicted_delay - target,
            dead_time,
        })
    }

    fn total_range(&self) -> Result<Time, SetDelayError> {
        Ok(self
            .calibration
            .as_ref()
            .ok_or(SetDelayError::NotCalibrated)?
            .range())
    }

    fn setting_resolution(&self) -> Result<Time, SetDelayError> {
        let cal = self
            .calibration
            .as_ref()
            .ok_or(SetDelayError::NotCalibrated)?;
        Ok(self.dac.delay_resolution(cal.mean_slope_s_per_v()))
    }

    fn measure_at(&self, vctrl: Voltage, _interval: Time) -> Time {
        self.delay_at_position(vctrl.as_v() / SPAN_V)
    }

    fn inject_drift(&mut self, delta_k: f64) {
        // Absolute, from the calibration point — mirroring the circuit
        // backend, repeated injections do not compound.
        self.drift_scale = 1.0 + CHAIN_TEMPCO_PER_K * delta_k;
    }

    fn inject_fault(&mut self, fault: &FaultKind) -> bool {
        match *fault {
            FaultKind::VernierChainBubble { bin } => {
                let bin = bin % BINS;
                self.widths[bin] = Time::from_ps(self.widths[bin].as_ps() * BUBBLE_SHRINK);
                true
            }
            FaultKind::TempStep { delta_k } => {
                self.inject_drift(delta_k);
                true
            }
            FaultKind::CalibrationSpike { point, spike } => match &self.calibration {
                Some(table) => {
                    self.calibration = Some(corrupt_table(table, point, spike));
                    true
                }
                None => false,
            },
            _ => false,
        }
    }

    fn clone_backend(&self) -> Box<dyn DelayBackend> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calibrated(seed: u64) -> VernierBackend {
        let mut b = VernierBackend::new(&ModelConfig::paper_prototype(), seed);
        b.calibrate_with(Runner::serial());
        b
    }

    #[test]
    fn physics_is_strictly_monotone_with_dnl() {
        let b = calibrated(3);
        let mut last = Time::from_ps(-1.0);
        let mut step_spread = (f64::INFINITY, 0.0f64);
        for i in 0..=4096 {
            let v = Voltage::from_v(SPAN_V * i as f64 / 4096.0);
            let d = b.measure_at(v, Time::ZERO);
            assert!(d > last, "inversion at {v}");
            if i > 0 {
                let step = (d - last).as_ps();
                step_spread = (step_spread.0.min(step), step_spread.1.max(step));
            }
            last = d;
        }
        assert!(
            step_spread.0 < step_spread.1,
            "DNL must make bins unequal: {step_spread:?}"
        );
    }

    #[test]
    fn dead_time_is_charged_from_the_second_arm_onward() {
        let mut b = calibrated(1);
        let first = b.set_delay(Time::from_ps(10.0)).unwrap();
        assert_eq!(first.dead_time, Time::ZERO);
        let second = b.set_delay(Time::from_ps(11.0)).unwrap();
        assert_eq!(second.dead_time, REARM_DEAD_TIME);
        // Recalibration drains the chain.
        b.calibrate_with(Runner::serial());
        assert_eq!(
            b.set_delay(Time::from_ps(5.0)).unwrap().dead_time,
            Time::ZERO
        );
    }

    #[test]
    fn chain_bubble_moves_downstream_delays_only() {
        let mut b = calibrated(7);
        let table = b.calibration().unwrap().clone();
        let probe =
            |b: &VernierBackend, x: f64| b.measure_at(Voltage::from_v(SPAN_V * x), Time::ZERO);
        let before_low = probe(&b, 0.1);
        let before_high = probe(&b, 0.9);
        assert!(b.inject_fault(&FaultKind::VernierChainBubble { bin: BINS / 2 }));
        assert_eq!(probe(&b, 0.1), before_low, "upstream of the bubble");
        assert!(probe(&b, 0.9) < before_high, "downstream loses a bin");
        // The stale table now disagrees with the physics at the top of
        // the range — sentinel-detectable.
        let top = table.vctrls().len() - 1;
        assert_ne!(
            b.measure_at(table.vctrls()[top], Time::ZERO),
            table.delays()[top]
        );
    }

    #[test]
    fn out_of_range_is_typed() {
        let mut b = calibrated(1);
        let max = b.total_range().unwrap();
        match b.set_delay(max + Time::from_ps(1.0)) {
            Err(SetDelayError::OutOfRange {
                requested,
                min,
                max: got,
            }) => {
                assert_eq!(requested, max + Time::from_ps(1.0));
                assert_eq!(min, Time::ZERO);
                assert_eq!(got, max);
            }
            other => panic!("expected OutOfRange, got {other:?}"),
        }
    }
}
