//! A DLL phase-interpolator delay generator as a [`DelayBackend`].
//!
//! A delay-locked loop spans exactly one clock period with a chain of
//! voltage-controlled stages; a phase interpolator mixes adjacent stage
//! outputs to place an edge anywhere in the period. Compared to the
//! paper's circuit: the range is a full period and perfectly monotone,
//! but the interpolator code is coarse (7 bits ≈ 2.5 ps steps at
//! 3.125 GHz) and the loop can *lose lock* — after which every answer
//! is grossly wrong until the loop is re-locked by a recalibration.
//! Large retargets (more than half the period) also force a relock,
//! charged as dead time on the setting.

use vardelay_core::config::ModelConfig;
use vardelay_core::{CalibrationTable, SetDelayError, VctrlDac};
use vardelay_faults::{corrupt_table, FaultKind};
use vardelay_runner::Runner;
use vardelay_units::{Time, Voltage};

use crate::{BackendCaps, BackendKind, BackendSetting, DelayBackend};

/// Reference clock period (3.125 GHz), the interpolator's full span.
const PERIOD_PS: f64 = 320.0;
/// Fixed insertion delay through the DLL input buffer chain.
const BASE_DELAY_PS: f64 = 900.0;
/// Interpolator INL amplitude as a fraction of the ideal slope
/// (derivative stays ≥ 1 − `INL`, so the curve is monotone).
const INL: f64 = 0.05;
/// Fractional phase shift per kelvin away from the calibration point.
const PHASE_TEMPCO_PER_K: f64 = 1.2e-4;
/// Gross phase error while unlocked, as a fraction of the period.
const UNLOCKED_PHASE_ERROR: f64 = 0.12;
/// Relock time after a lock loss or a >half-period retarget.
const RELOCK_DEAD_TIME: Time = Time::from_ns(50.0);
/// Retarget size (fraction of the span) that forces a relock.
const RETARGET_RELOCK_FRACTION: f64 = 0.5;
/// Control span: 0..1 V interpolator steering.
const SPAN_V: f64 = 1.0;
/// Calibration sweep points (the curve is smooth; the circuit's grid
/// density suffices).
const CAL_POINTS: usize = 17;

/// Behavioral DLL + phase interpolator (see module docs).
#[derive(Debug, Clone)]
pub struct DllBackend {
    dac: VctrlDac,
    calibration: Option<CalibrationTable>,
    /// Fractional phase drift vs the calibration point.
    phase_drift: f64,
    /// Whether the loop is locked. Unlocked answers are grossly wrong;
    /// only a recalibration relocks.
    locked: bool,
    /// Last programmed interpolator position (for retarget-size dead
    /// time); `NaN` before the first setting.
    last_x: f64,
}

impl DllBackend {
    /// Builds a locked, uncalibrated loop. The instance seed is unused
    /// — a DLL's transfer curve is set by its stage count, not by
    /// per-device mismatch — but kept for factory uniformity.
    pub fn new(config: &ModelConfig, _seed: u64) -> DllBackend {
        config.validate();
        DllBackend {
            dac: VctrlDac::new(7, Voltage::from_v(0.0), Voltage::from_v(SPAN_V)),
            calibration: None,
            phase_drift: 0.0,
            locked: true,
            last_x: f64::NAN,
        }
    }

    /// Interpolator transfer curve at fractional position `x`.
    fn delay_at_position(&self, x: f64) -> Time {
        let x = x.clamp(0.0, 1.0);
        let ideal = x + (INL / core::f64::consts::TAU) * (core::f64::consts::TAU * x).sin();
        let mut phase = ideal + self.phase_drift;
        if !self.locked {
            phase += UNLOCKED_PHASE_ERROR;
        }
        Time::from_ps(BASE_DELAY_PS + PERIOD_PS * phase)
    }
}

impl DelayBackend for DllBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Dll
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            kind: BackendKind::Dll,
            // 7-bit code over a 320 ps period ≈ 2.5 ps steps.
            resolution: Time::from_ps(3.0),
            // One full period, monotone end to end.
            min_range: Time::from_ps(300.0),
            monotone: true,
            dead_time: RELOCK_DEAD_TIME,
        }
    }

    fn control_dac(&self) -> VctrlDac {
        self.dac
    }

    fn calibration(&self) -> Option<&CalibrationTable> {
        self.calibration.as_ref()
    }

    fn install_calibration(&mut self, table: CalibrationTable) {
        self.calibration = Some(table);
    }

    fn calibrate_with(&mut self, _runner: Runner) -> &CalibrationTable {
        // Recalibration re-locks the loop first — the sweep below then
        // measures the locked transfer curve (the healing path the
        // serve layer's quarantine flow depends on). The probe is a
        // closed-form pure function, so the runner is unused.
        self.locked = true;
        let grid: Vec<Voltage> = (0..CAL_POINTS)
            .map(|i| {
                Voltage::from_v(0.0)
                    .lerp(Voltage::from_v(SPAN_V), i as f64 / (CAL_POINTS - 1) as f64)
            })
            .collect();
        let table = CalibrationTable::from_measurement(&grid, |v| self.measure_at(v, Time::ZERO));
        self.calibration = Some(table);
        self.calibration.as_ref().expect("just installed")
    }

    fn set_delay(&mut self, target: Time) -> Result<BackendSetting, SetDelayError> {
        let cal = self
            .calibration
            .as_ref()
            .ok_or(SetDelayError::NotCalibrated)?;
        let max = cal.range();
        if target < Time::ZERO || target > max {
            return Err(SetDelayError::OutOfRange {
                requested: target,
                min: Time::ZERO,
                max,
            });
        }
        let fine_target = cal.min_delay() + target;
        let vctrl_exact =
            cal.vctrl_for_delay(fine_target)
                .map_err(|_| SetDelayError::OutOfRange {
                    requested: target,
                    min: Time::ZERO,
                    max,
                })?;
        let dac_code = self.dac.code_for(vctrl_exact);
        let vctrl = self.dac.voltage(dac_code);
        let predicted_delay = cal.delay_at(vctrl) - cal.min_delay();
        let x = vctrl.as_v() / SPAN_V;
        let big_retarget = (x - self.last_x).abs() > RETARGET_RELOCK_FRACTION;
        let dead_time = if !self.locked || big_retarget {
            RELOCK_DEAD_TIME
        } else {
            Time::ZERO
        };
        self.last_x = x;
        Ok(BackendSetting {
            tap: 0,
            dac_code,
            vctrl,
            predicted_delay,
            predicted_error: predicted_delay - target,
            dead_time,
        })
    }

    fn total_range(&self) -> Result<Time, SetDelayError> {
        Ok(self
            .calibration
            .as_ref()
            .ok_or(SetDelayError::NotCalibrated)?
            .range())
    }

    fn setting_resolution(&self) -> Result<Time, SetDelayError> {
        let cal = self
            .calibration
            .as_ref()
            .ok_or(SetDelayError::NotCalibrated)?;
        Ok(self.dac.delay_resolution(cal.mean_slope_s_per_v()))
    }

    fn measure_at(&self, vctrl: Voltage, _interval: Time) -> Time {
        self.delay_at_position(vctrl.as_v() / SPAN_V)
    }

    fn inject_drift(&mut self, delta_k: f64) {
        // Absolute, from the calibration point — repeated injections do
        // not compound (matches the circuit backend's semantics).
        self.phase_drift = PHASE_TEMPCO_PER_K * delta_k;
    }

    fn inject_fault(&mut self, fault: &FaultKind) -> bool {
        match *fault {
            FaultKind::DllLockLoss => {
                self.locked = false;
                true
            }
            FaultKind::TempStep { delta_k } => {
                self.inject_drift(delta_k);
                true
            }
            FaultKind::CalibrationSpike { point, spike } => match &self.calibration {
                Some(table) => {
                    self.calibration = Some(corrupt_table(table, point, spike));
                    true
                }
                None => false,
            },
            _ => false,
        }
    }

    fn clone_backend(&self) -> Box<dyn DelayBackend> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calibrated() -> DllBackend {
        let mut b = DllBackend::new(&ModelConfig::paper_prototype(), 0);
        b.calibrate_with(Runner::serial());
        b
    }

    #[test]
    fn full_range_is_monotone_and_spans_a_period() {
        let b = calibrated();
        let mut last = Time::from_ps(-1.0);
        for i in 0..=4096 {
            let v = Voltage::from_v(SPAN_V * i as f64 / 4096.0);
            let d = b.measure_at(v, Time::ZERO);
            assert!(d > last, "inversion at {v}");
            last = d;
        }
        let range = b.total_range().unwrap();
        assert!((range.as_ps() - PERIOD_PS).abs() < 1.0, "range {range}");
    }

    #[test]
    fn lock_loss_breaks_answers_until_recalibration() {
        let mut b = calibrated();
        let table = b.calibration().unwrap().clone();
        let vctrl = table.vctrls()[4];
        assert_eq!(b.measure_at(vctrl, Time::ZERO), table.delays()[4]);
        assert!(b.inject_fault(&FaultKind::DllLockLoss));
        let broken = b.measure_at(vctrl, Time::ZERO) - table.delays()[4];
        assert!(
            broken.abs() > Time::from_ps(4.0),
            "unlocked error {broken} should be grossly wrong"
        );
        // The next setting pays the relock transient.
        assert_eq!(
            b.set_delay(Time::from_ps(50.0)).unwrap().dead_time,
            RELOCK_DEAD_TIME
        );
        // Recalibration relocks and heals.
        b.calibrate_with(Runner::serial());
        let healed = b.calibration().unwrap();
        assert_eq!(
            b.measure_at(healed.vctrls()[4], Time::ZERO),
            healed.delays()[4]
        );
    }

    #[test]
    fn large_retargets_pay_a_relock_and_small_ones_do_not() {
        let mut b = calibrated();
        let range = b.total_range().unwrap();
        let first = b.set_delay(Time::from_ps(10.0)).unwrap();
        assert_eq!(first.dead_time, Time::ZERO, "first setting is free");
        let near = b.set_delay(Time::from_ps(20.0)).unwrap();
        assert_eq!(near.dead_time, Time::ZERO);
        let far = b.set_delay(Time::from_ps(range.as_ps() - 10.0)).unwrap();
        assert_eq!(far.dead_time, RELOCK_DEAD_TIME);
    }

    #[test]
    fn drift_is_sentinel_visible_but_not_gross() {
        let mut b = calibrated();
        let table = b.calibration().unwrap().clone();
        b.inject_drift(15.0);
        let residual = (b.measure_at(table.vctrls()[8], Time::ZERO) - table.delays()[8]).abs();
        assert!(residual > Time::from_ps(0.2), "residual {residual}");
        assert!(residual < Time::from_ps(4.0), "residual {residual}");
    }
}
