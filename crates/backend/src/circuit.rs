//! The reference backend: the paper's VGA+tap circuit behind the trait.

use vardelay_core::config::ModelConfig;
use vardelay_core::drift::TempCo;
use vardelay_core::selftest::{check_calibration, test_dac, CircuitHealth};
use vardelay_core::{CalibrationTable, CombinedDelayCircuit, SetDelayError, VctrlDac};
use vardelay_faults::{corrupt_table, FaultKind};
use vardelay_runner::Runner;
use vardelay_units::{Time, Voltage};

use crate::{BackendCaps, BackendKind, BackendSetting, DelayBackend};

/// [`CombinedDelayCircuit`] as a [`DelayBackend`].
///
/// Every trait method delegates to the circuit's own API with no
/// arithmetic of its own — same constructor sub-seeds, same calibration
/// sweep (including the fast-solve cache fingerprint), same solve path
/// — so driving the circuit through `dyn DelayBackend` is byte-identical
/// to driving it directly. The equivalence suite in
/// `tests/equivalence.rs` pins this at every thread count.
#[derive(Debug, Clone)]
pub struct CircuitBackend {
    circuit: CombinedDelayCircuit,
    /// The pristine (calibration-point) configuration; drift rebuilds
    /// from it, mirroring the serve layer's historical injection path.
    config: ModelConfig,
    seed: u64,
}

impl CircuitBackend {
    /// Builds the circuit exactly as [`CombinedDelayCircuit::new`] does.
    pub fn new(config: &ModelConfig, seed: u64) -> CircuitBackend {
        CircuitBackend {
            circuit: CombinedDelayCircuit::new(config, seed),
            config: config.clone(),
            seed,
        }
    }

    /// The wrapped circuit (read-only; mutation goes through the trait).
    pub fn circuit(&self) -> &CombinedDelayCircuit {
        &self.circuit
    }
}

impl DelayBackend for CircuitBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Circuit
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            kind: BackendKind::Circuit,
            // The paper's headline: sub-picosecond fine steps.
            resolution: Time::from_ps(1.0),
            // ~95 ps of coarse taps + ~40 ps of fine range.
            min_range: Time::from_ps(120.0),
            monotone: true,
            // Retargeting is glitchless: the mux and the VGA bias both
            // settle well under the measurement interval.
            dead_time: Time::ZERO,
        }
    }

    fn control_dac(&self) -> VctrlDac {
        *self.circuit.dac()
    }

    fn calibration(&self) -> Option<&CalibrationTable> {
        self.circuit.calibration()
    }

    fn install_calibration(&mut self, table: CalibrationTable) {
        self.circuit.install_calibration(table);
    }

    fn calibrate_with(&mut self, runner: Runner) -> &CalibrationTable {
        self.circuit.calibrate_with(runner)
    }

    fn set_delay(&mut self, target: Time) -> Result<BackendSetting, SetDelayError> {
        let setting = self.circuit.set_delay(target)?;
        Ok(BackendSetting {
            tap: setting.tap,
            dac_code: setting.dac_code,
            vctrl: setting.vctrl,
            predicted_delay: setting.predicted_delay,
            predicted_error: setting.predicted_error,
            dead_time: Time::ZERO,
        })
    }

    fn total_range(&self) -> Result<Time, SetDelayError> {
        self.circuit.total_range()
    }

    fn setting_resolution(&self) -> Result<Time, SetDelayError> {
        self.circuit.setting_resolution()
    }

    fn measure_at(&self, vctrl: Voltage, interval: Time) -> Time {
        // The exact probe the core sentinel runs: a clone of the live
        // fine line, re-biased and re-measured through the quiet model.
        let mut probe = self.circuit.fine().clone();
        probe.set_vctrl(vctrl);
        probe.measure_delay(interval)
    }

    fn inject_drift(&mut self, delta_k: f64) {
        // Same shape as the serve layer's historical drift injection: a
        // fresh circuit at the shifted temperature with the stale table
        // carried over.
        let drifted = self
            .config
            .at_temperature_offset(delta_k, &TempCo::default());
        let mut fresh = CombinedDelayCircuit::new(&drifted, self.seed);
        if let Some(table) = self.circuit.calibration() {
            fresh.install_calibration(table.clone());
        }
        self.circuit = fresh;
    }

    fn inject_fault(&mut self, fault: &FaultKind) -> bool {
        match *fault {
            FaultKind::TempStep { delta_k } => {
                self.inject_drift(delta_k);
                true
            }
            FaultKind::CalibrationSpike { point, spike } => match self.circuit.calibration() {
                Some(table) => {
                    let bad = corrupt_table(table, point, spike);
                    self.circuit.install_calibration(bad);
                    true
                }
                None => false,
            },
            // DAC/mux/tap/driver faults act on layers the wrapped
            // circuit exposes separately (FaultyDac, MuxSelectFault, …);
            // the faults campaign injects them there.
            _ => false,
        }
    }

    fn clone_backend(&self) -> Box<dyn DelayBackend> {
        Box::new(self.clone())
    }

    fn self_test(&self) -> Result<CircuitHealth, SetDelayError> {
        // The circuit's table covers the fine line only (~40 ps); the
        // advertised `min_range` covers coarse + fine, so the default
        // check would flag a healthy channel. 15 ps is the fine-range
        // floor the serve selftest has always used.
        let table = self.calibration().ok_or(SetDelayError::NotCalibrated)?;
        let mut dac = self.control_dac();
        Ok(CircuitHealth {
            dac: test_dac(&mut dac),
            calibration: check_calibration(table, Time::from_ps(15.0)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_core::{Sentinel, SentinelConfig};

    #[test]
    fn trait_path_matches_direct_path_bit_for_bit() {
        let config = ModelConfig::paper_prototype();
        let mut direct = CombinedDelayCircuit::new(&config, 0x5e7e);
        let mut backend = CircuitBackend::new(&config, 0x5e7e);
        let direct_table = direct.calibrate_with(Runner::serial()).clone();
        let trait_table = backend.calibrate_with(Runner::serial()).clone();
        assert_eq!(direct_table.to_csv(), trait_table.to_csv());
        for ps in [0.0, 1.0, 17.5, 40.0, 99.9, 120.0] {
            let want = direct.set_delay(Time::from_ps(ps)).unwrap();
            let got = backend.set_delay(Time::from_ps(ps)).unwrap();
            assert_eq!(got.tap, want.tap, "{ps} ps");
            assert_eq!(got.dac_code, want.dac_code, "{ps} ps");
            assert_eq!(got.vctrl, want.vctrl, "{ps} ps");
            assert_eq!(got.predicted_delay, want.predicted_delay, "{ps} ps");
            assert_eq!(got.predicted_error, want.predicted_error, "{ps} ps");
            assert_eq!(got.dead_time, Time::ZERO);
        }
        assert_eq!(
            backend.total_range().unwrap(),
            direct.total_range().unwrap()
        );
        assert_eq!(
            backend.setting_resolution().unwrap(),
            direct.setting_resolution().unwrap()
        );
    }

    #[test]
    fn measure_at_reproduces_the_core_sentinel_probe() {
        let config = ModelConfig::paper_prototype();
        let mut backend = CircuitBackend::new(&config, 1);
        backend.calibrate_with(Runner::serial());
        let sentinel =
            Sentinel::from_circuit(backend.circuit(), SentinelConfig::default()).unwrap();
        let report = sentinel.run(9);
        for probe in &report.probes {
            assert_eq!(
                backend.measure_at(probe.vctrl, SentinelConfig::default().interval),
                probe.measured
            );
        }
    }

    #[test]
    fn drift_keeps_the_stale_table_and_moves_the_physics() {
        let config = ModelConfig::paper_prototype();
        let mut backend = CircuitBackend::new(&config, 1);
        let table = backend.calibrate_with(Runner::serial()).clone();
        backend.inject_drift(15.0);
        assert_eq!(
            backend.calibration().unwrap().to_csv(),
            table.to_csv(),
            "drift must not touch the installed table"
        );
        let vctrl = table.vctrls()[3];
        let measured = backend.measure_at(vctrl, Time::from_ps(320.0));
        assert_ne!(measured, table.delays()[3], "physics must have moved");
    }
}
