//! Pluggable delay-generation backends behind one trait.
//!
//! The paper's VGA-buffer + coarse-tap circuit (`vardelay-core`) is one
//! way to build a picosecond-resolution programmable delay; a production
//! fleet mixes it with FPGA carry-chain Vernier generators and DLL-style
//! phase interpolators that hit the same ≤1 ps budget with very
//! different resolution / range / monotonicity / dead-time trade-offs.
//! This crate defines the seam: the [`DelayBackend`] trait
//! (characterize → calibrate → `set_delay` → drift model → selftest
//! probe) plus three implementations —
//!
//! * [`CircuitBackend`] — the reference implementation, a thin wrapper
//!   over [`vardelay_core::CombinedDelayCircuit`]. Every call delegates
//!   to the exact code path the rest of the workspace already uses, so
//!   behavior through `dyn DelayBackend` is **byte-identical** to the
//!   direct path (the equivalence suite in `tests/` pins this).
//! * [`VernierBackend`] — a carry-chain Vernier pair: ~0.67 ps steps
//!   over a ~343 ps range, per-bin width nonuniformity (DNL), and a
//!   long re-arm dead time between consecutive settings.
//! * [`DllBackend`] — a DLL phase interpolator: a full-period monotone
//!   range with coarser (~2.5 ps) steps, and lock-loss transients that
//!   persist until the loop is recalibrated.
//!
//! Behavioral backends share the solve shape of the circuit — a
//! [`CalibrationTable`] inverted through a [`VctrlDac`] code — so the
//! serve layer's selftest, sentinel, snapshot and recalibration flows
//! all operate through the trait without knowing which physics sits
//! underneath. See DESIGN.md §17.

#![warn(missing_docs)]

mod circuit;
mod dll;
mod vernier;

pub use circuit::CircuitBackend;
pub use dll::DllBackend;
pub use vernier::VernierBackend;

use vardelay_core::config::ModelConfig;
use vardelay_core::selftest::{check_calibration, test_dac, CircuitHealth};
use vardelay_core::sentinel::probe_indices;
use vardelay_core::{
    CalibrationTable, SentinelConfig, SentinelProbe, SentinelReport, SetDelayError, VctrlDac,
};
use vardelay_faults::FaultKind;
use vardelay_runner::Runner;
use vardelay_units::{Time, Voltage};

// ---------------------------------------------------------------------------
// Backend identity
// ---------------------------------------------------------------------------

/// Which delay-generation hardware family a backend models.
///
/// The name doubles as the wire selector (`backend` request field), the
/// `VARDELAY_SERVE_BACKEND` environment value, and the identity folded
/// into the snapshot-store fingerprint — a calibration table snapshotted
/// by one backend can never be installed by another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The paper's VGA-buffer + coarse-tap circuit (the reference).
    Circuit,
    /// FPGA carry-chain Vernier pair.
    Vernier,
    /// DLL phase interpolator.
    Dll,
}

impl BackendKind {
    /// Every kind, in wire-name order.
    pub const ALL: [BackendKind; 3] =
        [BackendKind::Circuit, BackendKind::Vernier, BackendKind::Dll];

    /// Stable lowercase identifier (wire field value, env value,
    /// fingerprint component, CSV label).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Circuit => "circuit",
            BackendKind::Vernier => "vernier",
            BackendKind::Dll => "dll",
        }
    }

    /// Parses a wire/env name. Case-sensitive on purpose: the wire
    /// protocol nowhere else folds case, and a selector field should
    /// not start.
    pub fn from_name(name: &str) -> Option<BackendKind> {
        BackendKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// The valid names, comma-joined — for structured `bad_request`
    /// details listing what the caller could have asked for.
    pub fn valid_names() -> String {
        BackendKind::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// The fleet-default kind from `VARDELAY_SERVE_BACKEND`. Unset,
    /// empty, or unknown values fall back to [`BackendKind::Circuit`]
    /// (the fallback is reported by the serve bootstrap, not silently
    /// here, so a typo shows up in the server log).
    pub fn from_env() -> BackendKind {
        std::env::var("VARDELAY_SERVE_BACKEND")
            .ok()
            .and_then(|raw| BackendKind::from_name(raw.trim()))
            .unwrap_or(BackendKind::Circuit)
    }

    /// Whether a fault class is physically meaningful for this hardware
    /// family (DESIGN.md §17 capability table). Faults of inapplicable
    /// classes are skipped, not silently no-op'd, by campaign code.
    pub fn fault_applies(self, fault: &FaultKind) -> bool {
        match fault {
            // Every backend drives its control word through a DAC and
            // stores a measured table, and every channel has an output
            // driver.
            FaultKind::DacStuckLow { .. }
            | FaultKind::DacStuckHigh { .. }
            | FaultKind::DacFlakyBit { .. }
            | FaultKind::CalibrationSpike { .. }
            | FaultKind::DeadDriver { .. }
            | FaultKind::WeakDriver { .. }
            | FaultKind::TempStep { .. } => true,
            // Only the circuit has a 4:1 coarse mux and tap lines.
            FaultKind::MuxSelectStuck { .. } | FaultKind::TapDeviation { .. } => {
                self == BackendKind::Circuit
            }
            FaultKind::VernierChainBubble { .. } => self == BackendKind::Vernier,
            FaultKind::DllLockLoss => self == BackendKind::Dll,
        }
    }
}

impl core::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// Capabilities and settings
// ---------------------------------------------------------------------------

/// The contract a backend advertises — what the cross-backend campaign
/// gate holds it to (`repro compare backends`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendCaps {
    /// The hardware family.
    pub kind: BackendKind,
    /// Worst-case programmable step the backend promises; the measured
    /// [`DelayBackend::setting_resolution`] must not exceed it.
    pub resolution: Time,
    /// Minimum total programmable range the backend promises; the
    /// measured [`DelayBackend::total_range`] must not fall below it.
    pub min_range: Time,
    /// Whether delay-vs-control is monotone over the full control range
    /// (a dense measured sweep must show zero strict inversions).
    pub monotone: bool,
    /// Worst-case settle/re-arm dead time a single [`DelayBackend::set_delay`]
    /// may report. Zero means retargeting is glitchless.
    pub dead_time: Time,
}

/// What one [`DelayBackend::set_delay`] programmed.
///
/// The first five fields mirror [`vardelay_core::DelaySetting`] exactly
/// — for [`CircuitBackend`] they are a field-for-field copy, which is
/// what keeps the serve wire responses byte-identical through the
/// trait. Backends without a coarse section report `tap == 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendSetting {
    /// Selected coarse tap (0 for tapless backends).
    pub tap: usize,
    /// Programmed control-DAC code.
    pub dac_code: u32,
    /// Actual control value after DAC quantization.
    pub vctrl: Voltage,
    /// The delay the backend predicts it now produces.
    pub predicted_delay: Time,
    /// `predicted_delay − target` (quantization residual).
    pub predicted_error: Time,
    /// How long the backend is dead (not producing the programmed
    /// delay) after this call: Vernier re-arm, DLL relock. Zero for the
    /// glitchless circuit.
    pub dead_time: Time,
}

// ---------------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------------

/// One channel of programmable delay generation, whatever the physics.
///
/// The lifecycle every implementation shares:
/// characterize/calibrate ([`calibrate_with`](Self::calibrate_with)) →
/// solve ([`set_delay`](Self::set_delay)) → drift
/// ([`inject_drift`](Self::inject_drift)) → sentinel probe
/// ([`measure_at`](Self::measure_at)) → selftest
/// ([`self_test`](Self::self_test)). The serve layer holds each channel
/// as `Mutex<Box<dyn DelayBackend>>` and snapshots/restores the
/// [`CalibrationTable`] through
/// [`calibration`](Self::calibration)/[`install_calibration`](Self::install_calibration).
pub trait DelayBackend: Send + core::fmt::Debug {
    /// Which hardware family this is.
    fn kind(&self) -> BackendKind;

    /// The contract this backend advertises.
    fn caps(&self) -> BackendCaps;

    /// A copy of the control DAC (for BIST sweeps; [`VctrlDac`] is
    /// `Copy`, so this is a snapshot, not a live handle).
    fn control_dac(&self) -> VctrlDac;

    /// The installed calibration table, if any.
    fn calibration(&self) -> Option<&CalibrationTable>;

    /// Installs a previously measured table (snapshot restore / WAL
    /// recovery path). Trusting it is the caller's problem — serve runs
    /// a sentinel sweep before serving from a restored table.
    fn install_calibration(&mut self, table: CalibrationTable);

    /// Measures a fresh calibration table on `runner` and installs it.
    fn calibrate_with(&mut self, runner: Runner) -> &CalibrationTable;

    /// Programs `target` (relative to the backend's minimum delay) and
    /// returns what was actually set.
    ///
    /// # Errors
    ///
    /// [`SetDelayError::NotCalibrated`] before the first calibration,
    /// [`SetDelayError::OutOfRange`] when `target` lies outside the
    /// calibrated range.
    fn set_delay(&mut self, target: Time) -> Result<BackendSetting, SetDelayError>;

    /// Total programmable range.
    ///
    /// # Errors
    ///
    /// [`SetDelayError::NotCalibrated`] before the first calibration.
    fn total_range(&self) -> Result<Time, SetDelayError>;

    /// Mean programmable step (one control-DAC LSB of delay).
    ///
    /// # Errors
    ///
    /// [`SetDelayError::NotCalibrated`] before the first calibration.
    fn setting_resolution(&self) -> Result<Time, SetDelayError>;

    /// Re-measures the delay at one control value through the backend's
    /// physics, without disturbing the programmed state — the sentinel
    /// probe primitive. Pure in the quiet model: an undrifted backend
    /// reproduces its own table bit for bit.
    fn measure_at(&self, vctrl: Voltage, interval: Time) -> Time;

    /// Steps the operating temperature `delta_k` kelvin away from the
    /// calibration point while keeping the (now stale) table installed
    /// — the drift-incident injection the soak campaign uses.
    fn inject_drift(&mut self, delta_k: f64);

    /// Applies a backend-specific fault in place. Returns whether this
    /// implementation models `fault` (a `false` from a kind whose
    /// [`BackendKind::fault_applies`] says `true` means the fault acts
    /// on a layer outside the backend, e.g. drivers).
    fn inject_fault(&mut self, fault: &FaultKind) -> bool;

    /// Deep-copies the backend (sentinels and background recalibration
    /// clone the channel so the serving lock is held only briefly).
    fn clone_backend(&self) -> Box<dyn DelayBackend>;

    /// Runs the built-in self test: a full control-DAC sweep plus a
    /// calibration-shape check against the advertised minimum range.
    ///
    /// # Errors
    ///
    /// [`SetDelayError::NotCalibrated`] before the first calibration.
    fn self_test(&self) -> Result<CircuitHealth, SetDelayError> {
        let table = self.calibration().ok_or(SetDelayError::NotCalibrated)?;
        let mut dac = self.control_dac();
        Ok(CircuitHealth {
            dac: test_dac(&mut dac),
            calibration: check_calibration(table, self.caps().min_range),
        })
    }
}

/// Builds a backend of `kind` over the shared model configuration.
/// Every kind seeds its instance randomness (Vernier bin widths, …)
/// from `seed`, so a `(kind, config, seed)` triple is reproducible.
pub fn make_backend(kind: BackendKind, config: &ModelConfig, seed: u64) -> Box<dyn DelayBackend> {
    match kind {
        BackendKind::Circuit => Box::new(CircuitBackend::new(config, seed)),
        BackendKind::Vernier => Box::new(VernierBackend::new(config, seed)),
        BackendKind::Dll => Box::new(DllBackend::new(config, seed)),
    }
}

// ---------------------------------------------------------------------------
// Trait-level sentinel
// ---------------------------------------------------------------------------

/// A drift sentinel over any [`DelayBackend`] — the trait-level twin of
/// [`vardelay_core::Sentinel`].
///
/// It probes the exact same seeded grid indices
/// ([`vardelay_core::sentinel::probe_indices`]) and folds residuals the
/// same way, so for [`CircuitBackend`] the report is byte-identical to
/// the core sentinel's — the serve health loop swaps one for the other
/// with zero behavior change (pinned by the equivalence suite).
#[derive(Debug)]
pub struct BackendSentinel {
    backend: Box<dyn DelayBackend>,
    table: CalibrationTable,
    config: SentinelConfig,
}

impl BackendSentinel {
    /// Snapshots `backend` (deep copy) and its installed table.
    ///
    /// # Errors
    ///
    /// [`SetDelayError::NotCalibrated`] when no table is installed.
    pub fn from_backend(
        backend: &dyn DelayBackend,
        config: SentinelConfig,
    ) -> Result<BackendSentinel, SetDelayError> {
        let table = backend
            .calibration()
            .ok_or(SetDelayError::NotCalibrated)?
            .clone();
        Ok(BackendSentinel {
            backend: backend.clone_backend(),
            table,
            config,
        })
    }

    /// Runs the probes: re-measures each seeded grid point through the
    /// backend's physics and reports the worst residual against the
    /// installed table.
    pub fn run(&self, seed: u64) -> SentinelReport {
        let vctrls = self.table.vctrls();
        let delays = self.table.delays();
        let mut probes = Vec::with_capacity(self.config.probes);
        let mut residual = Time::ZERO;
        for idx in probe_indices(vctrls.len(), self.config.probes, seed) {
            let measured = self.backend.measure_at(vctrls[idx], self.config.interval);
            let p = SentinelProbe {
                vctrl: vctrls[idx],
                expected: delays[idx],
                measured,
            };
            if p.residual().abs() > residual {
                residual = p.residual().abs();
            }
            probes.push(p);
        }
        SentinelReport {
            probes,
            residual,
            config: self.config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip_and_unknowns_fail() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::from_name("CIRCUIT"), None);
        assert_eq!(BackendKind::from_name(""), None);
        assert_eq!(BackendKind::from_name("fpga"), None);
        assert_eq!(BackendKind::valid_names(), "circuit, vernier, dll");
    }

    #[test]
    fn capability_mapping_matches_the_taxonomy() {
        let mux = FaultKind::MuxSelectStuck {
            line: 0,
            level: true,
        };
        let bubble = FaultKind::VernierChainBubble { bin: 7 };
        assert!(BackendKind::Circuit.fault_applies(&mux));
        assert!(!BackendKind::Vernier.fault_applies(&mux));
        assert!(!BackendKind::Dll.fault_applies(&mux));
        assert!(BackendKind::Vernier.fault_applies(&bubble));
        assert!(!BackendKind::Circuit.fault_applies(&bubble));
        assert!(BackendKind::Dll.fault_applies(&FaultKind::DllLockLoss));
        assert!(!BackendKind::Circuit.fault_applies(&FaultKind::DllLockLoss));
        // Universal layers apply everywhere.
        for kind in BackendKind::ALL {
            assert!(kind.fault_applies(&FaultKind::TempStep { delta_k: 10.0 }));
            assert!(kind.fault_applies(&FaultKind::DacStuckLow { bit: 0 }));
            assert!(kind.fault_applies(&FaultKind::DeadDriver { channel: 1 }));
        }
    }

    #[test]
    fn every_kind_builds_calibrates_and_solves() {
        let config = ModelConfig::paper_prototype();
        for kind in BackendKind::ALL {
            let mut backend = make_backend(kind, &config, 7);
            assert_eq!(backend.kind(), kind);
            assert!(matches!(
                backend.set_delay(Time::from_ps(1.0)),
                Err(SetDelayError::NotCalibrated)
            ));
            backend.calibrate_with(Runner::serial());
            let range = backend.total_range().unwrap();
            assert!(
                range >= backend.caps().min_range,
                "{kind}: range {range} under advertised {}",
                backend.caps().min_range
            );
            let setting = backend.set_delay(Time::from_ps(20.0)).unwrap();
            assert!(
                setting.predicted_error.abs() <= backend.caps().resolution,
                "{kind}: error {} above advertised step {}",
                setting.predicted_error,
                backend.caps().resolution
            );
        }
    }

    #[test]
    fn self_test_is_healthy_on_every_freshly_calibrated_kind() {
        let config = ModelConfig::paper_prototype();
        for kind in BackendKind::ALL {
            let mut backend = make_backend(kind, &config, 11);
            assert!(matches!(
                backend.self_test(),
                Err(SetDelayError::NotCalibrated)
            ));
            backend.calibrate_with(Runner::serial());
            let health = backend.self_test().unwrap();
            assert!(
                health.calibration.is_healthy(),
                "{kind}: fresh calibration must pass its own selftest ({:?})",
                health.calibration
            );
        }
    }

    #[test]
    fn trait_sentinel_sees_zero_residual_on_undrifted_backends() {
        let config = ModelConfig::paper_prototype();
        for kind in BackendKind::ALL {
            let mut backend = make_backend(kind, &config, 3);
            backend.calibrate_with(Runner::serial());
            let sentinel =
                BackendSentinel::from_backend(backend.as_ref(), SentinelConfig::default()).unwrap();
            let report = sentinel.run(42);
            assert_eq!(report.residual, Time::ZERO, "{kind}: {report}");
        }
    }
}
