//! Per-backend property tests — the behavioral contracts the
//! cross-backend campaign gates on, driven over randomized inputs:
//!
//! * the Vernier's programmable step never exceeds 1 ps and its
//!   re-arm dead time is charged on every setting after the first;
//! * the DLL transfer curve is monotone over the full control range;
//! * every backend solves any in-range target within one advertised
//!   LSB, and answers any out-of-range target with a *typed*
//!   [`SetDelayError::OutOfRange`] — never a panic, never a clamp.

use std::sync::{Mutex, OnceLock};

use proptest::prelude::*;
use vardelay_backend::{make_backend, BackendKind, DelayBackend, VernierBackend};
use vardelay_core::{ModelConfig, SetDelayError};
use vardelay_runner::Runner;
use vardelay_units::{Time, Voltage};

const SEED: u64 = 0xc0117ac7;

/// One calibrated backend per kind, shared across proptest cases — the
/// circuit's calibration sweep is the expensive part, and the contract
/// properties only mutate solve state.
fn bank() -> &'static Mutex<Vec<Box<dyn DelayBackend>>> {
    static BANK: OnceLock<Mutex<Vec<Box<dyn DelayBackend>>>> = OnceLock::new();
    BANK.get_or_init(|| {
        let config = ModelConfig::paper_prototype();
        let channels = BackendKind::ALL
            .iter()
            .map(|&kind| {
                let mut backend = make_backend(kind, &config, SEED);
                backend.calibrate_with(Runner::serial());
                backend
            })
            .collect();
        Mutex::new(channels)
    })
}

fn calibrated_vernier(seed: u64) -> VernierBackend {
    let mut b = VernierBackend::new(&ModelConfig::paper_prototype(), seed);
    b.calibrate_with(Runner::serial());
    b
}

proptest! {
    /// Any adjacent pair of Vernier DAC codes advances the measured
    /// delay by a positive step no larger than the 1 ps contract bound
    /// — the DNL spread stays inside the advertised resolution.
    #[test]
    fn vernier_step_is_positive_and_at_most_one_ps(
        seed in 1u64..64,
        code in 0u32..510,
    ) {
        let b = calibrated_vernier(seed);
        let dac = b.control_dac();
        let lo = b.measure_at(dac.voltage(code), Time::ZERO);
        let hi = b.measure_at(dac.voltage(code + 1), Time::ZERO);
        let step = hi - lo;
        prop_assert!(step > Time::ZERO, "inversion at code {code}: {step}");
        prop_assert!(
            step <= b.caps().resolution,
            "code {code}: step {step} above the {} bound",
            b.caps().resolution
        );
    }

    /// The chain must drain and re-arm between consecutive settings:
    /// the first solve after a calibration is free, every later one is
    /// charged the full advertised dead time — regardless of target
    /// order or spacing.
    #[test]
    fn vernier_dead_time_is_enforced_between_rearms(
        seed in 1u64..64,
        first_ps in 0.0f64..300.0,
        second_ps in 0.0f64..300.0,
        third_ps in 0.0f64..300.0,
    ) {
        let mut b = calibrated_vernier(seed);
        let caps = b.caps();
        prop_assert!(caps.dead_time > Time::ZERO);
        let first = b.set_delay(Time::from_ps(first_ps)).unwrap();
        prop_assert_eq!(first.dead_time, Time::ZERO, "first arm is free");
        for ps in [second_ps, third_ps] {
            let later = b.set_delay(Time::from_ps(ps)).unwrap();
            prop_assert_eq!(later.dead_time, caps.dead_time, "re-arm at {} ps", ps);
        }
    }

    /// The DLL transfer curve is strictly monotone over the whole
    /// control span — any two ordered control values measure ordered
    /// delays.
    #[test]
    fn dll_is_monotone_over_the_full_range(
        lo in 0.0f64..0.9,
        delta in 0.0001f64..0.1,
    ) {
        let backend = make_backend(BackendKind::Dll, &ModelConfig::paper_prototype(), SEED);
        let hi = (lo + delta).min(1.0);
        let d_lo = backend.measure_at(Voltage::from_v(lo), Time::ZERO);
        let d_hi = backend.measure_at(Voltage::from_v(hi), Time::ZERO);
        prop_assert!(
            d_lo < d_hi,
            "inversion: {} v -> {}, {} v -> {}",
            lo, d_lo, hi, d_hi
        );
    }

    /// Every backend solves any in-range target within one advertised
    /// LSB of programmable delay.
    #[test]
    fn every_backend_solves_within_one_lsb(frac in 0.0f64..1.0) {
        let mut bank = bank().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for backend in bank.iter_mut() {
            let caps = backend.caps();
            // Stay strictly inside the range: the top edge is the
            // out-of-range property's job.
            let target = Time::from_ps(backend.total_range().unwrap().as_ps() * frac * 0.999);
            let setting = backend.set_delay(target).unwrap_or_else(|e| {
                panic!("{}: in-range {target} drew {e:?}", caps.kind)
            });
            prop_assert!(
                setting.predicted_error.abs() <= caps.resolution,
                "{}: {} missed by {} (bound {})",
                caps.kind, target, setting.predicted_error, caps.resolution
            );
            prop_assert!(
                setting.dead_time <= caps.dead_time,
                "{}: dead time {} above advertised {}",
                caps.kind, setting.dead_time, caps.dead_time
            );
        }
    }

    /// Every backend answers an out-of-range target — above the range
    /// or negative — with the typed error carrying the true bounds.
    #[test]
    fn every_backend_types_out_of_range(excess_ps in 0.001f64..1000.0) {
        let mut bank = bank().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for backend in bank.iter_mut() {
            let kind = backend.kind();
            let max = backend.total_range().unwrap();
            for target in [max + Time::from_ps(excess_ps), Time::from_ps(-excess_ps)] {
                match backend.set_delay(target) {
                    Err(SetDelayError::OutOfRange { requested, min, max: got }) => {
                        prop_assert_eq!(requested, target, "{}", kind);
                        prop_assert!(min <= got, "{}: empty range {min}..{got}", kind);
                    }
                    other => prop_assert!(
                        false,
                        "{}: {} drew {:?}, not the typed OutOfRange",
                        kind, target, other
                    ),
                }
            }
        }
    }
}

/// An uncalibrated backend of every kind answers with the typed
/// `NotCalibrated`, never a panic.
#[test]
fn every_backend_types_not_calibrated_before_first_calibration() {
    let config = ModelConfig::paper_prototype();
    for kind in BackendKind::ALL {
        let mut backend = make_backend(kind, &config, SEED);
        assert!(matches!(
            backend.set_delay(Time::from_ps(10.0)),
            Err(SetDelayError::NotCalibrated)
        ));
        assert!(matches!(
            backend.total_range(),
            Err(SetDelayError::NotCalibrated)
        ));
        assert!(matches!(
            backend.setting_resolution(),
            Err(SetDelayError::NotCalibrated)
        ));
        assert!(matches!(
            backend.self_test(),
            Err(SetDelayError::NotCalibrated)
        ));
    }
}
