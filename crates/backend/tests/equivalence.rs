//! Trait-object equivalence: driving the paper's circuit through
//! `dyn DelayBackend` must be byte-identical to driving
//! [`CombinedDelayCircuit`] directly — same calibration CSV, same taps
//! and DAC codes, same predicted delays, same sentinel probes — at
//! every worker thread count `VARDELAY_THREADS` can select. This is
//! the refactor guard for the serve layer: PR 10 swapped every bank
//! channel from a concrete circuit to a boxed backend, and this suite
//! is what makes that swap provably invisible on the default path.

use vardelay_backend::{make_backend, BackendKind, BackendSentinel, DelayBackend};
use vardelay_core::{CombinedDelayCircuit, ModelConfig, Sentinel, SentinelConfig};
use vardelay_runner::Runner;
use vardelay_units::Time;

const SEED: u64 = 0x5e7e;

/// The thread counts the suite pins — serial, the CI default, and an
/// oversubscribed pool (what `VARDELAY_THREADS=1|2|4` would select).
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn runner(threads: usize) -> Runner {
    if threads == 1 {
        Runner::serial()
    } else {
        Runner::new(threads)
    }
}

#[test]
fn calibration_csv_is_byte_identical_at_every_thread_count() {
    let config = ModelConfig::paper_prototype();
    let mut baseline: Option<String> = None;
    for threads in THREAD_COUNTS {
        let mut direct = CombinedDelayCircuit::new(&config, SEED);
        let direct_csv = direct.calibrate_with(runner(threads)).to_csv();
        let mut backend = make_backend(BackendKind::Circuit, &config, SEED);
        let trait_csv = backend.calibrate_with(runner(threads)).to_csv();
        assert_eq!(
            direct_csv, trait_csv,
            "trait path diverged from direct path at {threads} thread(s)"
        );
        // And the table itself is thread-count invariant, so the wire
        // and snapshot artifacts never depend on VARDELAY_THREADS.
        match &baseline {
            None => baseline = Some(trait_csv),
            Some(first) => assert_eq!(
                first, &trait_csv,
                "calibration changed between thread counts"
            ),
        }
    }
}

#[test]
fn solve_settings_match_field_for_field_at_every_thread_count() {
    let config = ModelConfig::paper_prototype();
    for threads in THREAD_COUNTS {
        let mut direct = CombinedDelayCircuit::new(&config, SEED);
        direct.calibrate_with(runner(threads));
        let mut backend = make_backend(BackendKind::Circuit, &config, SEED);
        backend.calibrate_with(runner(threads));
        assert_eq!(
            backend.total_range().unwrap(),
            direct.total_range().unwrap()
        );
        assert_eq!(
            backend.setting_resolution().unwrap(),
            direct.setting_resolution().unwrap()
        );
        for tenth_ps in 0..=1200 {
            let target = Time::from_ps(f64::from(tenth_ps) / 10.0);
            let want = direct.set_delay(target).unwrap();
            let got = backend.set_delay(target).unwrap();
            assert_eq!(got.tap, want.tap, "{target} at {threads} thread(s)");
            assert_eq!(got.dac_code, want.dac_code, "{target}");
            assert_eq!(got.vctrl, want.vctrl, "{target}");
            assert_eq!(got.predicted_delay, want.predicted_delay, "{target}");
            assert_eq!(got.predicted_error, want.predicted_error, "{target}");
            assert_eq!(got.dead_time, Time::ZERO, "the circuit is glitchless");
        }
    }
}

#[test]
fn backend_sentinel_reproduces_the_core_sentinel_byte_for_byte() {
    let config = ModelConfig::paper_prototype();
    let mut circuit = CombinedDelayCircuit::new(&config, SEED);
    circuit.calibrate_with(Runner::serial());
    let mut backend = make_backend(BackendKind::Circuit, &config, SEED);
    backend.calibrate_with(Runner::serial());
    let core = Sentinel::from_circuit(&circuit, SentinelConfig::default()).unwrap();
    let trait_level =
        BackendSentinel::from_backend(backend.as_ref(), SentinelConfig::default()).unwrap();
    for seed in [0u64, 1, 9, 0xdead] {
        let want = core.run(seed);
        let got = trait_level.run(seed);
        assert_eq!(got.residual, want.residual, "seed {seed}");
        assert_eq!(got.probes.len(), want.probes.len(), "seed {seed}");
        for (g, w) in got.probes.iter().zip(&want.probes) {
            assert_eq!(g.vctrl, w.vctrl, "seed {seed}");
            assert_eq!(g.expected, w.expected, "seed {seed}");
            assert_eq!(g.measured, w.measured, "seed {seed}");
        }
    }
}

#[test]
fn clone_backend_preserves_the_installed_table_and_solve_state() {
    let config = ModelConfig::paper_prototype();
    let mut backend = make_backend(BackendKind::Circuit, &config, SEED);
    backend.calibrate_with(Runner::serial());
    let mut clone = backend.clone_backend();
    assert_eq!(
        backend.calibration().unwrap().to_csv(),
        clone.calibration().unwrap().to_csv()
    );
    for ps in [0.0, 17.5, 61.5, 99.9] {
        let want = backend.set_delay(Time::from_ps(ps)).unwrap();
        let got = clone.set_delay(Time::from_ps(ps)).unwrap();
        assert_eq!(got, want, "{ps} ps");
    }
}
