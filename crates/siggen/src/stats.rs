//! Descriptive statistics over patterns and edge streams.

use crate::edges::EdgeStream;
use crate::pattern::BitPattern;
use vardelay_units::Time;

/// Summary statistics of a bit pattern's transition structure.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternStats {
    /// Fraction of `1` bits.
    pub mark_density: f64,
    /// NRZ transitions per bit (0 for constant patterns, 1 for 1010…).
    pub transition_density: f64,
    /// Longest run of identical bits.
    pub longest_run: usize,
}

impl PatternStats {
    /// Computes statistics for `pattern`.
    ///
    /// Returns all-zero stats for an empty pattern.
    pub fn of(pattern: &BitPattern) -> Self {
        let bits = pattern.bits();
        if bits.is_empty() {
            return PatternStats {
                mark_density: 0.0,
                transition_density: 0.0,
                longest_run: 0,
            };
        }
        let mut longest = 1usize;
        let mut run = 1usize;
        for w in bits.windows(2) {
            if w[0] == w[1] {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 1;
            }
        }
        PatternStats {
            mark_density: pattern.mark_density(),
            transition_density: pattern.transition_count() as f64 / bits.len() as f64,
            longest_run: longest,
        }
    }
}

/// Summary statistics of the spacing between consecutive edges.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeSpacingStats {
    /// Smallest inter-edge gap.
    pub min: Time,
    /// Largest inter-edge gap.
    pub max: Time,
    /// Mean inter-edge gap.
    pub mean: Time,
    /// Number of gaps measured (`len − 1`).
    pub count: usize,
}

impl EdgeSpacingStats {
    /// Computes spacing statistics, or `None` for streams with fewer than
    /// two edges.
    pub fn of(stream: &EdgeStream) -> Option<Self> {
        let times: Vec<Time> = stream.times().collect();
        if times.len() < 2 {
            return None;
        }
        let gaps: Vec<Time> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let mut min = gaps[0];
        let mut max = gaps[0];
        let mut sum = Time::ZERO;
        for &g in &gaps {
            min = min.min(g);
            max = max.max(g);
            sum += g;
        }
        Some(EdgeSpacingStats {
            min,
            max,
            mean: sum / gaps.len() as f64,
            count: gaps.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_units::BitRate;

    #[test]
    fn pattern_stats_clock() {
        let s = PatternStats::of(&BitPattern::clock(10));
        assert!((s.mark_density - 0.5).abs() < 1e-12);
        assert!((s.transition_density - 0.9).abs() < 1e-12);
        assert_eq!(s.longest_run, 1);
    }

    #[test]
    fn pattern_stats_runs() {
        let s = PatternStats::of(&BitPattern::from_str("1110001").unwrap());
        assert_eq!(s.longest_run, 3);
        assert!((s.mark_density - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn pattern_stats_empty() {
        let s = PatternStats::of(&BitPattern::default());
        assert_eq!(s.longest_run, 0);
    }

    #[test]
    fn spacing_stats_uniform_clock() {
        let e = EdgeStream::nrz(&BitPattern::clock(100), BitRate::from_gbps(1.0));
        let s = EdgeSpacingStats::of(&e).unwrap();
        assert!((s.min.as_ns() - 1.0).abs() < 1e-9);
        assert!((s.max.as_ns() - 1.0).abs() < 1e-9);
        assert_eq!(s.count, 99); // 100 edges incl. the t=0 rise
    }

    #[test]
    fn spacing_stats_needs_two_edges() {
        let e = EdgeStream::nrz(&BitPattern::ones(4), BitRate::from_gbps(1.0));
        assert!(EdgeSpacingStats::of(&e).is_none());
    }
}
