//! A tiny, stable pseudo-random generator.
//!
//! Experiment reproducibility must not hinge on the `rand` crate's internal
//! algorithms (which may change across versions), so all stochastic pieces
//! of the suite draw from [`SplitMix64`] — Steele, Lea & Flood's 64-bit
//! mixing generator. It is fast, passes BigCrush when used this way, and its
//! output sequence is fixed forever by the algorithm definition.

/// A seeded SplitMix64 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use vardelay_siggen::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Distinct seeds give
    /// statistically independent streams.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent child generator, for handing a private stream
    /// to a sub-component without correlating it with the parent's draws.
    pub fn fork(&mut self) -> Self {
        SplitMix64::new(self.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a standard-normal sample via the Box–Muller transform.
    ///
    /// One of the pair is discarded for simplicity; draws stay independent.
    pub fn gaussian(&mut self) -> f64 {
        // Avoid ln(0) by mapping the open interval (0, 1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// Returns a normal sample with the given mean and standard deviation.
    pub fn gaussian_with(&mut self, mean: f64, sigma: f64) -> f64 {
        mean + sigma * self.gaussian()
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_sequence() {
        // Reference values for seed 0 from the published SplitMix64
        // algorithm; pins the implementation forever.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(rng.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(123);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SplitMix64::new(99);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn gaussian_with_scales() {
        let mut rng = SplitMix64::new(5);
        let n = 100_000;
        let mean_target = 3.0;
        let sigma_target = 0.5;
        let samples: Vec<f64> = (0..n)
            .map(|_| rng.gaussian_with(mean_target, sigma_target))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - mean_target).abs() < 0.02);
        assert!((var.sqrt() - sigma_target).abs() < 0.02);
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = SplitMix64::new(1);
        let mut child = parent.fork();
        // Crude independence check: correlation of 1k paired draws is small.
        let n = 1000;
        let xs: Vec<f64> = (0..n).map(|_| parent.next_f64() - 0.5).collect();
        let ys: Vec<f64> = (0..n).map(|_| child.next_f64() - 0.5).collect();
        let corr: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum::<f64>() / n as f64;
        assert!(corr.abs() < 0.02, "corr {corr}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SplitMix64::new(8);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bernoulli_rejects_bad_p() {
        SplitMix64::new(0).bernoulli(1.5);
    }
}
