//! The PCI-Express Gen1/2 LFSR scrambler, `x¹⁶ + x⁵ + x⁴ + x³ + 1`.
//!
//! Scrambling whitens transmitted data so its spectrum (and hence its
//! data-dependent jitter) is pattern-independent — the other common
//! conditioning besides 8b/10b for the traffic classes the paper's intro
//! discusses. Scrambling is an involution: applying the same scrambler
//! twice restores the data.

/// The PCIe data scrambler.
///
/// # Examples
///
/// ```
/// use vardelay_siggen::Scrambler;
///
/// let mut tx = Scrambler::new();
/// let mut rx = Scrambler::new();
/// let scrambled = tx.scramble_byte(0xA5);
/// assert_eq!(rx.scramble_byte(scrambled), 0xA5); // involution
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scrambler {
    lfsr: u16,
}

impl Default for Scrambler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scrambler {
    /// The reset value the PCIe specification uses.
    pub const RESET: u16 = 0xFFFF;

    /// Creates a scrambler in the standard reset state.
    pub fn new() -> Self {
        Scrambler { lfsr: Self::RESET }
    }

    /// Creates a scrambler with an explicit LFSR state (zero is coerced to
    /// the reset value — an all-zero LFSR locks up).
    pub fn with_state(state: u16) -> Self {
        Scrambler {
            lfsr: if state == 0 { Self::RESET } else { state },
        }
    }

    /// The current LFSR state.
    pub fn state(&self) -> u16 {
        self.lfsr
    }

    /// Resets to the standard state (sent on COM symbols in a real link).
    pub fn reset(&mut self) {
        self.lfsr = Self::RESET;
    }

    /// Advances the LFSR by eight bits and returns the scramble byte.
    fn advance_byte(&mut self) -> u8 {
        let mut out = 0u8;
        for bit in 0..8 {
            // Serial Galois form of x^16 + x^5 + x^4 + x^3 + 1.
            let msb = (self.lfsr >> 15) & 1;
            out |= (msb as u8) << bit;
            self.lfsr <<= 1;
            if msb == 1 {
                self.lfsr ^= 0b0000_0000_0011_1001;
            }
        }
        out
    }

    /// Scrambles (or descrambles — same operation) one data byte.
    pub fn scramble_byte(&mut self, data: u8) -> u8 {
        data ^ self.advance_byte()
    }

    /// Scrambles a byte slice in place.
    pub fn scramble(&mut self, data: &mut [u8]) {
        for b in data {
            *b = self.scramble_byte(*b);
        }
    }

    /// Scrambles a byte slice into a fresh vector.
    pub fn scrambled(&mut self, data: &[u8]) -> Vec<u8> {
        data.iter().map(|&b| self.scramble_byte(b)).collect()
    }
}

/// Expands bytes into bits, LSB first — the serialization order of the
/// scrambled payload.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in 0..8 {
            bits.push((b >> i) & 1 == 1);
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::max_run_length;

    #[test]
    fn scrambling_is_an_involution() {
        let data: Vec<u8> = (0..=255).collect();
        let mut tx = Scrambler::new();
        let scrambled = tx.scrambled(&data);
        assert_ne!(scrambled, data);
        let mut rx = Scrambler::new();
        assert_eq!(rx.scrambled(&scrambled), data);
    }

    #[test]
    fn lfsr_has_maximal_period() {
        // x^16 + x^5 + x^4 + x^3 + 1 is primitive: the state must return
        // to reset after exactly 2^16 - 1 bit steps (= not before).
        let mut s = Scrambler::new();
        let mut steps: u64 = 0;
        loop {
            // advance one bit
            let msb = (s.lfsr >> 15) & 1;
            s.lfsr <<= 1;
            if msb == 1 {
                s.lfsr ^= 0b0000_0000_0011_1001;
            }
            steps += 1;
            if s.lfsr == Scrambler::RESET {
                break;
            }
            assert!(steps <= 65535, "period exceeds 2^16-1");
        }
        assert_eq!(steps, 65535);
    }

    #[test]
    fn constant_data_becomes_run_limited() {
        // An all-zeros payload would be a DC wire; scrambled it toggles.
        let mut tx = Scrambler::new();
        let scrambled = tx.scrambled(&vec![0u8; 2000]);
        let bits = bytes_to_bits(&scrambled);
        let ones = bits.iter().filter(|&&b| b).count();
        let density = ones as f64 / bits.len() as f64;
        assert!((density - 0.5).abs() < 0.02, "density {density}");
        // LFSR-of-degree-16 sequences bound runs at 16.
        assert!(max_run_length(&bits) <= 16);
    }

    #[test]
    fn zero_state_is_coerced() {
        let s = Scrambler::with_state(0);
        assert_eq!(s.state(), Scrambler::RESET);
    }

    #[test]
    fn reset_resynchronizes() {
        let mut tx = Scrambler::new();
        let mut rx = Scrambler::new();
        // Desynchronize rx deliberately…
        rx.scramble_byte(0);
        assert_ne!(tx.state(), rx.state());
        // …then a COM-style reset restores lockstep.
        tx.reset();
        rx.reset();
        assert_eq!(tx.scramble_byte(0x42), rx.scramble_byte(0x42));
    }

    #[test]
    fn bytes_to_bits_lsb_first() {
        assert_eq!(
            bytes_to_bits(&[0b0000_0101]),
            vec![true, false, true, false, false, false, false, false]
        );
    }
}
