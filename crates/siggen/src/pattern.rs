//! Finite bit patterns and line codes.

use crate::prbs::{Prbs, PrbsOrder};

/// How a bit pattern is mapped onto the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LineCode {
    /// Non-return-to-zero: the level holds for the whole bit period and
    /// only changes when consecutive bits differ.
    Nrz,
    /// Return-to-zero: each `1` bit is a pulse of `duty` × bit-period width;
    /// `0` bits stay low. An all-ones RZ pattern is a clock.
    Rz {
        /// Pulse width as a fraction of the bit period, in `(0, 1)`.
        duty: f64,
    },
}

impl LineCode {
    /// RZ with the conventional 50 % duty cycle.
    pub const RZ_HALF: LineCode = LineCode::Rz { duty: 0.5 };
}

/// A finite sequence of bits used as a repeating stimulus pattern.
///
/// # Examples
///
/// ```
/// use vardelay_siggen::BitPattern;
///
/// let clock = BitPattern::clock(8);          // 10101010
/// assert_eq!(clock.len(), 8);
/// let word = BitPattern::from_str("1011")?;  // literal pattern
/// assert_eq!(word.bits(), &[true, false, true, true]);
/// # Ok::<(), vardelay_siggen::pattern::ParsePatternError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitPattern {
    bits: Vec<bool>,
}

/// Error returned by [`BitPattern::from_str`] for characters other than
/// `0`, `1`, `_` and spaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePatternError {
    /// The offending character.
    pub character: char,
    /// Its byte offset in the input.
    pub position: usize,
}

impl core::fmt::Display for ParsePatternError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "invalid pattern character {:?} at byte {}",
            self.character, self.position
        )
    }
}

impl std::error::Error for ParsePatternError {}

impl BitPattern {
    /// Creates a pattern from explicit bits.
    pub fn new(bits: Vec<bool>) -> Self {
        BitPattern { bits }
    }

    /// Parses a pattern literal such as `"1011_0010"`. Underscores and
    /// spaces are ignored. Also available through [`core::str::FromStr`].
    ///
    /// # Errors
    ///
    /// Returns [`ParsePatternError`] on any other character.
    #[allow(clippy::should_implement_trait)] // the trait impl delegates here
    pub fn from_str(s: &str) -> Result<Self, ParsePatternError> {
        let mut bits = Vec::with_capacity(s.len());
        for (position, character) in s.char_indices() {
            match character {
                '0' => bits.push(false),
                '1' => bits.push(true),
                '_' | ' ' => {}
                _ => {
                    return Err(ParsePatternError {
                        character,
                        position,
                    })
                }
            }
        }
        Ok(BitPattern { bits })
    }

    /// A 1010… alternating pattern of `len` bits — the densest NRZ
    /// stimulus, used by the paper for the delay-vs-Vctrl sweep.
    pub fn clock(len: usize) -> Self {
        BitPattern {
            bits: (0..len).map(|i| i % 2 == 0).collect(),
        }
    }

    /// An all-ones pattern of `len` bits. Under [`LineCode::Rz`] this is a
    /// pulse-train clock, the paper's stress stimulus above 7 Gb/s.
    pub fn ones(len: usize) -> Self {
        BitPattern {
            bits: vec![true; len],
        }
    }

    /// The first `len` bits of a seeded PRBS of the given order.
    pub fn prbs(order: PrbsOrder, seed: u64, len: usize) -> Self {
        BitPattern {
            bits: Prbs::new(order, seed).take(len).collect(),
        }
    }

    /// Shorthand for [`BitPattern::prbs`] with [`PrbsOrder::Prbs7`].
    pub fn prbs7(seed: u64, len: usize) -> Self {
        Self::prbs(PrbsOrder::Prbs7, seed, len)
    }

    /// Returns the bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Returns the number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` if the pattern holds no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Concatenates `n` copies of the pattern.
    pub fn repeat(&self, n: usize) -> Self {
        let mut bits = Vec::with_capacity(self.bits.len() * n);
        for _ in 0..n {
            bits.extend_from_slice(&self.bits);
        }
        BitPattern { bits }
    }

    /// Fraction of bits that are `1` (mark density).
    ///
    /// Returns 0 for an empty pattern.
    pub fn mark_density(&self) -> f64 {
        if self.bits.is_empty() {
            return 0.0;
        }
        self.bits.iter().filter(|&&b| b).count() as f64 / self.bits.len() as f64
    }

    /// Number of NRZ transitions within the pattern (not counting the wrap
    /// from last to first bit).
    pub fn transition_count(&self) -> usize {
        self.bits.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

impl core::str::FromStr for BitPattern {
    type Err = ParsePatternError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BitPattern::from_str(s)
    }
}

impl FromIterator<bool> for BitPattern {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitPattern {
            bits: iter.into_iter().collect(),
        }
    }
}

impl Extend<bool> for BitPattern {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        self.bits.extend(iter);
    }
}

impl core::fmt::Display for BitPattern {
    /// Renders the bits as a `01` string (truncated with `…` beyond 64).
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for &b in self.bits.iter().take(64) {
            f.write_str(if b { "1" } else { "0" })?;
        }
        if self.bits.len() > 64 {
            f.write_str("…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_alternates() {
        let p = BitPattern::clock(6);
        assert_eq!(p.bits(), &[true, false, true, false, true, false]);
        assert_eq!(p.transition_count(), 5);
        assert!((p.mark_density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parse_accepts_separators() {
        let p = BitPattern::from_str("10 1_1").unwrap();
        assert_eq!(p.bits(), &[true, false, true, true]);
    }

    #[test]
    fn parse_reports_position() {
        let err = BitPattern::from_str("10x1").unwrap_err();
        assert_eq!(err.character, 'x');
        assert_eq!(err.position, 2);
        assert!(err.to_string().contains("'x'"));
    }

    #[test]
    fn repeat_concatenates() {
        let p = BitPattern::from_str("10").unwrap().repeat(3);
        assert_eq!(p.len(), 6);
        assert_eq!(p.bits(), &[true, false, true, false, true, false]);
    }

    #[test]
    fn prbs_pattern_is_balanced_over_full_period() {
        let p = BitPattern::prbs7(1, 127);
        assert!((p.mark_density() - 64.0 / 127.0).abs() < 1e-12);
    }

    #[test]
    fn empty_pattern_metrics() {
        let p = BitPattern::default();
        assert!(p.is_empty());
        assert_eq!(p.mark_density(), 0.0);
        assert_eq!(p.transition_count(), 0);
    }

    #[test]
    fn collect_and_extend() {
        let mut p: BitPattern = [true, false].into_iter().collect();
        p.extend([true]);
        assert_eq!(p.bits(), &[true, false, true]);
    }

    #[test]
    fn display_truncates() {
        assert_eq!(BitPattern::clock(4).to_string(), "1010");
        assert!(BitPattern::ones(100).to_string().ends_with('…'));
    }
}
