//! Digital stimulus generation for the `vardelay` suite.
//!
//! This crate plays the role of the paper's bench signal generator (NRZ data
//! to 7 Gb/s, RZ clocks to 6.8 GHz): it produces deterministic, seeded,
//! fully-characterized test signals as **edge streams** — ordered lists of
//! transition times — which the waveform engine then renders into sampled
//! analog waveforms.
//!
//! * [`prbs`] — maximal-length LFSR pseudo-random bit sequences
//!   (PRBS7 … PRBS31), the standard serial-link test patterns.
//! * [`pattern`] — finite bit patterns (clock 1010…, custom, PRBS captures).
//! * [`edges`] — [`EdgeStream`]: NRZ / RZ transition streams at a bit rate.
//! * [`jitter`] — composable jitter models (Gaussian RJ, sinusoidal PJ,
//!   duty-cycle distortion, bounded uniform) applied to edge streams.
//! * [`rng`] — a tiny, stable [`SplitMix64`] generator so results never
//!   depend on external RNG implementation details.
//!
//! # Examples
//!
//! Generate a jittered 6.4 Gb/s PRBS7 stream, like the DUT output the paper
//! delays in Fig. 13:
//!
//! ```
//! use vardelay_siggen::{BitPattern, EdgeStream, GaussianRj, JitterModel};
//! use vardelay_units::{BitRate, Time};
//!
//! let pattern = BitPattern::prbs7(1, 254);
//! let clean = EdgeStream::nrz(&pattern, BitRate::from_gbps(6.4));
//! let mut rj = GaussianRj::new(Time::from_ps(1.2), 42);
//! let noisy = rj.apply(&clean);
//! assert_eq!(noisy.len(), clean.len());
//! ```

pub mod compliance;
pub mod edges;
pub mod encoding;
pub mod jitter;
pub mod pattern;
pub mod prbs;
pub mod rng;
pub mod scrambler;
pub mod stats;

pub use edges::{Edge, EdgeKind, EdgeStream};
pub use encoding::{align_to_comma, ControlCode, Decoder8b10b, Encoder8b10b, Symbol};
pub use jitter::{
    BoundedUniformJitter, CompositeJitter, DutyCycleDistortion, GaussianRj, JitterModel,
    SinusoidalPj,
};
pub use pattern::{BitPattern, LineCode};
pub use prbs::{Prbs, PrbsOrder};
pub use rng::SplitMix64;
pub use scrambler::Scrambler;
