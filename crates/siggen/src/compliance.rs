//! Compliance stress patterns.
//!
//! Standards bodies stress receivers with patterns engineered to be worse
//! than random data: long runs that let baseline wander and envelopes
//! settle, immediately followed by high-density toggling. These builders
//! produce CJTPAT-style jitter-tolerance patterns from 8b/10b symbols and
//! raw run-structured stress patterns for un-coded links.

use crate::encoding::{ControlCode, Encoder8b10b, Symbol};
use crate::pattern::BitPattern;

/// A jitter-tolerance stress pattern in the spirit of CJTPAT: framed by
/// K28.5 commas, alternating low-transition-density payload (D30.3-heavy,
/// long effective runs) and high-density payload (D21.5 = 1010101010
/// after coding).
///
/// `frames` repeats the whole structure; each frame is 2 commas + 2×16
/// data symbols = 340 coded bits.
///
/// # Examples
///
/// ```
/// use vardelay_siggen::compliance::cjtpat_like;
///
/// let p = cjtpat_like(3);
/// assert_eq!(p.len() % 340, 0);
/// ```
pub fn cjtpat_like(frames: usize) -> BitPattern {
    let mut enc = Encoder8b10b::new();
    let mut bits = Vec::with_capacity(frames * 340);
    for _ in 0..frames {
        bits.extend(enc.encode(Symbol::Control(ControlCode::K28_5)));
        // Low transition density: D30.3 codes to sparse groups.
        for _ in 0..16 {
            bits.extend(enc.encode(Symbol::Data(0x7E)));
        }
        bits.extend(enc.encode(Symbol::Control(ControlCode::K28_5)));
        // High transition density: D21.5 codes to 1010101010.
        for _ in 0..16 {
            bits.extend(enc.encode(Symbol::Data(0xB5)));
        }
    }
    BitPattern::new(bits)
}

/// A raw (uncoded) run-structure stress pattern: `repeats` blocks of a
/// `long_run`-bit solid level followed by `toggles` alternating bits —
/// the worst case for envelope-settling DDJ (the longest possible
/// preceding interval straight into the shortest).
///
/// # Panics
///
/// Panics if `long_run` or `toggles` is zero.
pub fn run_stress(long_run: usize, toggles: usize, repeats: usize) -> BitPattern {
    assert!(long_run > 0, "a stress block needs a run");
    assert!(toggles > 0, "a stress block needs toggles");
    let mut bits = Vec::with_capacity((long_run + toggles) * repeats);
    let mut level = true;
    for _ in 0..repeats {
        for _ in 0..long_run {
            bits.push(level);
        }
        for i in 0..toggles {
            bits.push(if i % 2 == 0 { !level } else { level });
        }
        // Alternate the run polarity so the pattern is DC-balanced over
        // pairs of blocks.
        level = !level;
    }
    BitPattern::new(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{max_run_length, running_disparity_excursion};
    use crate::stats::PatternStats;

    #[test]
    fn cjtpat_mixes_densities() {
        let p = cjtpat_like(4);
        let stats = PatternStats::of(&p);
        // Coded pattern stays balanced and run-limited…
        assert!((stats.mark_density - 0.5).abs() < 0.05, "{stats:?}");
        assert!(max_run_length(p.bits()) <= 6);
        let (lo, hi) = running_disparity_excursion(p.bits());
        assert!(lo >= -10 && hi <= 10);
        // …while clearly mixing sparse and dense regions within a frame:
        // the D30.3 payload (bits 10..170) toggles far less than the
        // D21.5 payload (bits 180..340).
        let bits = p.bits();
        let density =
            |s: &[bool]| s.windows(2).filter(|w| w[0] != w[1]).count() as f64 / s.len() as f64;
        let sparse = density(&bits[10..170]);
        let dense = density(&bits[180..340]);
        assert!(dense > sparse + 0.2, "sparse {sparse} vs dense {dense}");
    }

    #[test]
    fn run_stress_structure() {
        let p = run_stress(7, 6, 10);
        assert_eq!(p.len(), 130);
        let stats = PatternStats::of(&p);
        assert_eq!(stats.longest_run, 7, "{stats:?}");
        // Balanced over even repeats.
        assert!((stats.mark_density - 0.5).abs() < 0.06, "{stats:?}");
    }

    #[test]
    fn run_stress_is_worse_than_prbs_for_envelope_ddj() {
        // Structural check: the stress pattern contains direct
        // longest-run → single-bit transitions, which PRBS7 also has, but
        // at far higher frequency per bit.
        let stress = run_stress(7, 6, 50);
        let prbs = BitPattern::prbs7(1, stress.len());
        let count_hard = |p: &BitPattern| {
            let b = p.bits();
            let mut hard = 0;
            let mut run = 1;
            for i in 1..b.len() {
                if b[i] == b[i - 1] {
                    run += 1;
                } else {
                    if run >= 6 && i + 1 < b.len() && b[i + 1] != b[i] {
                        hard += 1; // long run straight into a single bit
                    }
                    run = 1;
                }
            }
            hard as f64 / b.len() as f64
        };
        assert!(
            count_hard(&stress) > 2.0 * count_hard(&prbs),
            "stress {} vs prbs {}",
            count_hard(&stress),
            count_hard(&prbs)
        );
    }

    #[test]
    #[should_panic(expected = "run")]
    fn degenerate_stress_rejected() {
        let _ = run_stress(0, 4, 1);
    }
}
