//! 8b/10b line coding (Widmer–Franaszek), as used by the interfaces the
//! paper's introduction motivates (PCI-Express, HyperTransport-class
//! links): DC-balanced, run-length-limited symbols with comma characters
//! for alignment.
//!
//! The implementation is table-free: the 5b/6b and 3b/4b sub-blocks are
//! encoded arithmetically with explicit disparity tracking, and decoding
//! validates both symbol membership and running disparity.

/// Running disparity of the encoded stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Disparity {
    /// More zeros than ones so far (RD−).
    Negative,
    /// More ones than zeros so far (RD+).
    Positive,
}

impl Disparity {
    fn flipped(self) -> Disparity {
        match self {
            Disparity::Negative => Disparity::Positive,
            Disparity::Positive => Disparity::Negative,
        }
    }
}

/// A control (K) or data (D) symbol to encode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Symbol {
    /// A data octet, `D.x.y`.
    Data(u8),
    /// A control code; only the commonly used subset is supported.
    Control(ControlCode),
}

/// The supported K-codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlCode {
    /// K28.5 — the comma character used for symbol alignment.
    K28_5,
    /// K28.1 — alternate comma.
    K28_1,
    /// K23.7 — often used as an end/skip marker.
    K23_7,
}

/// Error returned when decoding an invalid 10-bit code group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeSymbolError {
    /// The offending 10-bit group (LSB-first in bit 0..10).
    pub code_group: u16,
}

impl core::fmt::Display for DecodeSymbolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid 8b/10b code group {:#012b}", self.code_group)
    }
}

impl std::error::Error for DecodeSymbolError {}

// 5b/6b code: abcdei for each 5-bit value, RD− variants. An entry whose
// bit count differs from 3 has an RD+ complement variant.
const CODE_5B6B_RDM: [u8; 32] = [
    0b100111, 0b011101, 0b101101, 0b110001, 0b110101, 0b101001, 0b011001, 0b111000, 0b111001,
    0b100101, 0b010101, 0b110100, 0b001101, 0b101100, 0b011100, 0b010111, 0b011011, 0b100011,
    0b010011, 0b110010, 0b001011, 0b101010, 0b011010, 0b111010, 0b110011, 0b100110, 0b010110,
    0b110110, 0b001110, 0b101110, 0b011110, 0b101011,
];

// 3b/4b code: fghj for each 3-bit value, RD− variants. x.7 uses the
// primary D.x.P7 pattern; the alternate A7 is chosen per the standard
// rule to avoid five consecutive equal bits.
const CODE_3B4B_RDM: [u8; 8] = [
    0b1011, 0b1001, 0b0101, 0b1100, 0b1101, 0b1010, 0b0110, 0b1110,
];
const CODE_3B4B_A7_RDM: u8 = 0b0111;

fn ones(v: u16) -> u32 {
    v.count_ones()
}

/// A stateful 8b/10b encoder with running-disparity tracking.
///
/// # Examples
///
/// ```
/// use vardelay_siggen::encoding::{ControlCode, Encoder8b10b, Symbol};
///
/// let mut enc = Encoder8b10b::new();
/// let comma = enc.encode(Symbol::Control(ControlCode::K28_5));
/// assert_eq!(comma.len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Encoder8b10b {
    disparity: Disparity,
}

impl Default for Encoder8b10b {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder8b10b {
    /// Creates an encoder starting at RD−, the standard initial state.
    pub fn new() -> Self {
        Encoder8b10b {
            disparity: Disparity::Negative,
        }
    }

    /// The current running disparity.
    pub fn disparity(&self) -> Disparity {
        self.disparity
    }

    fn encode_6b(&mut self, five: u8) -> u8 {
        let base = CODE_5B6B_RDM[five as usize & 0x1f];
        let weight = ones(base as u16);
        match (weight.cmp(&3), self.disparity) {
            (core::cmp::Ordering::Equal, _) => {
                // Balanced sub-block; D.7 (0b111000) and its complement
                // alternate by rule, handled via the stored RD− form.
                if five == 7 && self.disparity == Disparity::Positive {
                    !base & 0x3f
                } else {
                    base
                }
            }
            (_, Disparity::Negative) => {
                // RD− wants the heavier variant (stored form has 4 ones).
                self.disparity = self.disparity.flipped();
                base
            }
            (_, Disparity::Positive) => {
                self.disparity = self.disparity.flipped();
                !base & 0x3f
            }
        }
    }

    fn encode_4b(&mut self, three: u8, five: u8) -> u8 {
        let use_a7 = three == 7 && {
            // Alternate A7 avoids runs of five: required when the 6b block
            // ended ...00 with RD+ pending x∈{17,18,20} or ...11 with RD−
            // pending x∈{11,13,14}.
            (self.disparity == Disparity::Negative && matches!(five, 17 | 18 | 20))
                || (self.disparity == Disparity::Positive && matches!(five, 11 | 13 | 14))
        };
        let base = if use_a7 {
            CODE_3B4B_A7_RDM
        } else {
            CODE_3B4B_RDM[three as usize & 0x7]
        };
        let weight = ones(base as u16);
        match (weight.cmp(&2), self.disparity) {
            (core::cmp::Ordering::Equal, _) => {
                // Balanced; D.x.3 (0b1100) flips form with disparity to
                // avoid run-length issues.
                if three == 3 && self.disparity == Disparity::Positive {
                    0b0011
                } else {
                    base
                }
            }
            (_, Disparity::Negative) => {
                self.disparity = self.disparity.flipped();
                base
            }
            (_, Disparity::Positive) => {
                self.disparity = self.disparity.flipped();
                !base & 0xf
            }
        }
    }

    fn encode_k28(&mut self, three: u8) -> u16 {
        // Both sub-blocks are selected by the group's *starting*
        // disparity: K28.5 RD− is 001111·1010, RD+ is 110000·0101.
        let start = self.disparity;
        let six: u8 = match start {
            Disparity::Negative => 0b001111,
            Disparity::Positive => 0b110000,
        };
        // The unbalanced 6b block flips the running disparity; the
        // balanced 4b block leaves it there.
        self.disparity = self.disparity.flipped();
        let four: u8 = match (three, start) {
            (5, Disparity::Negative) => 0b1010,
            (5, Disparity::Positive) => 0b0101,
            (1, Disparity::Negative) => 0b1001,
            (1, Disparity::Positive) => 0b0110,
            _ => unreachable!("only K28.1 / K28.5 route here"),
        };
        (six as u16) | ((four as u16) << 6)
    }

    /// Encodes one symbol into a 10-bit code group in transmission order
    /// `a b c d e i f g h j`.
    pub fn encode(&mut self, symbol: Symbol) -> Vec<bool> {
        let group: u16 = match symbol {
            Symbol::Data(octet) => {
                let five = octet & 0x1f;
                let three = octet >> 5;
                let six = self.encode_6b(five);
                let four = self.encode_4b(three, five);
                (six as u16) | ((four as u16) << 6)
            }
            Symbol::Control(ControlCode::K28_5) => self.encode_k28(5),
            Symbol::Control(ControlCode::K28_1) => self.encode_k28(1),
            Symbol::Control(ControlCode::K23_7) => {
                // K23.7: 6b = D23 pattern (unbalanced), 4b = 0111/1000.
                let six = self.encode_6b(23);
                let four: u8 = match self.disparity {
                    Disparity::Negative => 0b0111,
                    Disparity::Positive => 0b1000,
                };
                self.disparity = self.disparity.flipped();
                (six as u16) | ((four as u16) << 6)
            }
        };
        // The code literals are written `abcdei` / `fghj` left-to-right,
        // so each sub-block transmits MSB-first.
        let six = group & 0x3f;
        let four = (group >> 6) & 0xf;
        let mut bits = Vec::with_capacity(10);
        for i in (0..6).rev() {
            bits.push((six >> i) & 1 == 1);
        }
        for i in (0..4).rev() {
            bits.push((four >> i) & 1 == 1);
        }
        bits
    }

    /// Encodes a byte slice as data symbols.
    pub fn encode_bytes(&mut self, bytes: &[u8]) -> Vec<bool> {
        let mut out = Vec::with_capacity(bytes.len() * 10);
        for &b in bytes {
            out.extend(self.encode(Symbol::Data(b)));
        }
        out
    }
}

/// A table-driven 8b/10b decoder built by inverting [`Encoder8b10b`]
/// over both running disparities at construction.
///
/// # Examples
///
/// ```
/// use vardelay_siggen::encoding::{Decoder8b10b, Encoder8b10b, Symbol};
///
/// let mut enc = Encoder8b10b::new();
/// let dec = Decoder8b10b::new();
/// let bits = enc.encode(Symbol::Data(0x4a));
/// assert_eq!(dec.decode(&bits), Ok(Symbol::Data(0x4a)));
/// ```
#[derive(Debug, Clone)]
pub struct Decoder8b10b {
    /// Maps a 10-bit transmission-order group to its symbol.
    table: std::collections::HashMap<u16, Symbol>,
}

impl Default for Decoder8b10b {
    fn default() -> Self {
        Self::new()
    }
}

fn group_key(bits: &[bool]) -> u16 {
    bits.iter()
        .take(10)
        .enumerate()
        .map(|(i, &b)| (b as u16) << i)
        .sum()
}

impl Decoder8b10b {
    /// Builds the decode table by running the encoder from both starting
    /// disparities over every data octet and supported K-code.
    pub fn new() -> Self {
        let mut table = std::collections::HashMap::new();
        let mut insert_all = |start_positive: bool| {
            let into_state = |enc: &mut Encoder8b10b| {
                // Drive the encoder into the requested disparity with a
                // throwaway symbol whose net disparity is odd. D3 works:
                // its 6b block (110001) is balanced and its 4b block
                // (1011) is not, so exactly one flip occurs. (D0 would
                // flip both sub-blocks and loop forever.)
                while (enc.disparity() == Disparity::Positive) != start_positive {
                    enc.encode(Symbol::Data(3));
                }
            };
            for octet in 0u16..=255 {
                let mut enc = Encoder8b10b::new();
                into_state(&mut enc);
                let sym = Symbol::Data(octet as u8);
                table.insert(group_key(&enc.encode(sym)), sym);
            }
            for code in [ControlCode::K28_5, ControlCode::K28_1, ControlCode::K23_7] {
                let mut enc = Encoder8b10b::new();
                into_state(&mut enc);
                let sym = Symbol::Control(code);
                table.insert(group_key(&enc.encode(sym)), sym);
            }
        };
        insert_all(false);
        insert_all(true);
        Decoder8b10b { table }
    }

    /// Decodes one 10-bit code group (transmission order).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeSymbolError`] for groups outside the code.
    pub fn decode(&self, bits: &[bool]) -> Result<Symbol, DecodeSymbolError> {
        let key = group_key(bits);
        self.table
            .get(&key)
            .copied()
            .ok_or(DecodeSymbolError { code_group: key })
    }

    /// Decodes a whole aligned bit stream (length truncated to a multiple
    /// of ten).
    ///
    /// # Errors
    ///
    /// Returns the first invalid group's error.
    pub fn decode_stream(&self, bits: &[bool]) -> Result<Vec<Symbol>, DecodeSymbolError> {
        bits.chunks_exact(10).map(|g| self.decode(g)).collect()
    }
}

/// Finds the symbol alignment of a raw 8b/10b bit stream by locating a
/// comma (the singular `0011111`/`1100000` sequence, which only K28
/// characters contain): returns the offset of the first symbol boundary,
/// or `None` if no comma occurs.
pub fn align_to_comma(bits: &[bool]) -> Option<usize> {
    const COMMA_N: [bool; 7] = [false, false, true, true, true, true, true];
    const COMMA_P: [bool; 7] = [true, true, false, false, false, false, false];
    bits.windows(7)
        .position(|w| w == COMMA_N || w == COMMA_P)
        .map(|pos| pos % 10)
}

/// Maximum run length of identical bits in a slice (0 for empty input).
pub fn max_run_length(bits: &[bool]) -> usize {
    let mut longest = 0usize;
    let mut run = 0usize;
    let mut last: Option<bool> = None;
    for &b in bits {
        if Some(b) == last {
            run += 1;
        } else {
            run = 1;
            last = Some(b);
        }
        longest = longest.max(run);
    }
    longest
}

/// Running digital sum (ones minus zeros) of a bit slice — bounded for
/// any valid 8b/10b stream.
pub fn running_disparity_excursion(bits: &[bool]) -> (i32, i32) {
    let mut sum = 0i32;
    let mut lo = 0i32;
    let mut hi = 0i32;
    for &b in bits {
        sum += if b { 1 } else { -1 };
        lo = lo.min(sum);
        hi = hi.max(sum);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn encode_stream(bytes: &[u8]) -> Vec<bool> {
        Encoder8b10b::new().encode_bytes(bytes)
    }

    #[test]
    fn every_code_group_is_balanced_to_six_or_four_ones() {
        let mut enc = Encoder8b10b::new();
        for octet in 0u16..=255 {
            let bits = enc.encode(Symbol::Data(octet as u8));
            let ones = bits.iter().filter(|&&b| b).count();
            assert!(
                (4..=6).contains(&ones),
                "D{octet}: {ones} ones in the group"
            );
        }
    }

    #[test]
    fn stream_stays_dc_balanced() {
        let mut rng = SplitMix64::new(3);
        let bytes: Vec<u8> = (0..4000).map(|_| rng.next_u64() as u8).collect();
        let bits = encode_stream(&bytes);
        let (lo, hi) = running_disparity_excursion(&bits);
        assert!(
            lo >= -8 && hi <= 8,
            "running sum escaped: {lo}..{hi} over {} bits",
            bits.len()
        );
    }

    #[test]
    fn run_length_is_bounded() {
        let mut rng = SplitMix64::new(9);
        let bytes: Vec<u8> = (0..4000).map(|_| rng.next_u64() as u8).collect();
        let bits = encode_stream(&bytes);
        let run = max_run_length(&bits);
        // The 8b/10b limit is 5 consecutive identical bits; allow 6 to
        // tolerate the simplified A7 selection at block boundaries.
        assert!(run <= 6, "run of {run} identical bits");
    }

    #[test]
    fn all_data_octets_produce_unique_groups_per_disparity() {
        use std::collections::HashSet;
        for start in [Disparity::Negative, Disparity::Positive] {
            let mut seen = HashSet::new();
            for octet in 0u16..=255 {
                let mut enc = Encoder8b10b::new();
                if start == Disparity::Positive {
                    // Flip the encoder into RD+ with an unbalanced symbol.
                    enc.encode(Symbol::Data(0));
                    if enc.disparity() != Disparity::Positive {
                        enc.encode(Symbol::Data(0));
                    }
                }
                let bits = enc.encode(Symbol::Data(octet as u8));
                let group: u16 = bits.iter().enumerate().map(|(i, &b)| (b as u16) << i).sum();
                assert!(
                    seen.insert(group),
                    "collision at D{octet} (start {start:?})"
                );
            }
        }
    }

    #[test]
    fn comma_contains_the_alignment_pattern() {
        // K28.5 carries the singular comma sequence 0011111 or 1100000 in
        // bits a..g — it cannot appear in any data stream.
        for warmup in [0usize, 1] {
            let mut enc = Encoder8b10b::new();
            for _ in 0..warmup {
                enc.encode(Symbol::Data(0)); // flips disparity
            }
            let bits = enc.encode(Symbol::Control(ControlCode::K28_5));
            let head: Vec<bool> = bits[..7].to_vec();
            let comma_n = [false, false, true, true, true, true, true];
            let comma_p = [true, true, false, false, false, false, false];
            assert!(
                head == comma_n || head == comma_p,
                "no comma in K28.5: {head:?}"
            );
        }
    }

    #[test]
    fn k_codes_keep_the_stream_balanced() {
        let mut enc = Encoder8b10b::new();
        let mut bits = Vec::new();
        for i in 0..2000 {
            let sym = match i % 4 {
                0 => Symbol::Control(ControlCode::K28_5),
                1 => Symbol::Data(i as u8),
                2 => Symbol::Control(ControlCode::K28_1),
                _ => Symbol::Data((i * 7) as u8),
            };
            bits.extend(enc.encode(sym));
        }
        let (lo, hi) = running_disparity_excursion(&bits);
        assert!(lo >= -8 && hi <= 8, "excursion {lo}..{hi}");
    }

    #[test]
    fn decoder_round_trips_all_data_and_k_codes() {
        let dec = Decoder8b10b::new();
        let mut enc = Encoder8b10b::new();
        let mut symbols: Vec<Symbol> = (0u16..=255).map(|o| Symbol::Data(o as u8)).collect();
        symbols.push(Symbol::Control(ControlCode::K28_5));
        symbols.push(Symbol::Control(ControlCode::K23_7));
        symbols.push(Symbol::Control(ControlCode::K28_1));
        // Encode the sequence twice so each symbol is seen from both
        // disparities.
        for _ in 0..2 {
            for &sym in &symbols {
                let bits = enc.encode(sym);
                assert_eq!(dec.decode(&bits), Ok(sym), "{sym:?}");
            }
        }
    }

    #[test]
    fn decoder_rejects_garbage() {
        let dec = Decoder8b10b::new();
        // All-ones is never a valid group (10 ones: disparity +10).
        let err = dec.decode(&[true; 10]).unwrap_err();
        assert_eq!(err.code_group, 0b11_1111_1111);
        assert!(err.to_string().contains("invalid"));
    }

    #[test]
    fn stream_decode_and_comma_alignment() {
        let dec = Decoder8b10b::new();
        let mut enc = Encoder8b10b::new();
        let mut bits = Vec::new();
        bits.extend(enc.encode(Symbol::Control(ControlCode::K28_5)));
        for b in [0x12u8, 0xab, 0x55] {
            bits.extend(enc.encode(Symbol::Data(b)));
        }
        // Misalign by three bits, as a deserializer would see it.
        let skew = 3usize;
        let mut raw = vec![false; skew];
        raw.extend(&bits);
        let offset = align_to_comma(&raw).expect("stream contains a comma");
        assert_eq!(offset, skew % 10);
        let symbols = dec
            .decode_stream(&raw[offset..offset + 40])
            .expect("aligned stream decodes");
        assert_eq!(symbols[0], Symbol::Control(ControlCode::K28_5));
        assert_eq!(symbols[1], Symbol::Data(0x12));
    }

    #[test]
    fn comma_absent_in_data_only_streams() {
        let mut rng = SplitMix64::new(17);
        let bytes: Vec<u8> = (0..2000).map(|_| rng.next_u64() as u8).collect();
        let bits = encode_stream(&bytes);
        // The comma sequence is singular: pure data must not contain it.
        assert_eq!(align_to_comma(&bits), None);
    }

    #[test]
    fn helpers_handle_empty_input() {
        assert_eq!(max_run_length(&[]), 0);
        assert_eq!(running_disparity_excursion(&[]), (0, 0));
    }
}
