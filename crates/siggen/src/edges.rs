//! Edge streams: digital signals as ordered transition lists.
//!
//! An [`EdgeStream`] is the suite's compact digital-signal representation:
//! a strictly-increasing, polarity-alternating list of threshold crossings
//! plus the nominal unit interval. The waveform engine renders streams into
//! sampled analog traces; the fast edge-domain circuit models transform
//! streams directly.

use crate::pattern::{BitPattern, LineCode};
use vardelay_units::{BitRate, Frequency, Time};

/// Transition polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Low → high crossing.
    Rising,
    /// High → low crossing.
    Falling,
}

impl EdgeKind {
    /// Returns the opposite polarity.
    pub fn opposite(self) -> EdgeKind {
        match self {
            EdgeKind::Rising => EdgeKind::Falling,
            EdgeKind::Falling => EdgeKind::Rising,
        }
    }
}

/// A single threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// The crossing instant.
    pub time: Time,
    /// The crossing polarity.
    pub kind: EdgeKind,
}

/// A digital signal represented by its transitions.
///
/// Invariants (enforced by constructors, checkable via
/// [`EdgeStream::is_well_formed`]):
///
/// * edge times are strictly increasing;
/// * polarities strictly alternate;
/// * every edge lies within `[start, end]`.
///
/// # Examples
///
/// ```
/// use vardelay_siggen::{BitPattern, EdgeStream};
/// use vardelay_units::BitRate;
///
/// // 1010 at 1 Gb/s: rising at 0 ns, falling at 1 ns, ...
/// let s = EdgeStream::nrz(&BitPattern::clock(4), BitRate::from_gbps(1.0));
/// assert_eq!(s.len(), 4);
/// assert!((s.edges()[1].time.as_ns() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EdgeStream {
    edges: Vec<Edge>,
    start: Time,
    end: Time,
    /// Signal level immediately before the first edge.
    initial_high: bool,
    /// Nominal unit interval, used for eye folding and TIE references.
    ui: Time,
}

impl EdgeStream {
    /// Builds a stream from parts.
    ///
    /// # Panics
    ///
    /// Panics if the invariants listed on [`EdgeStream`] do not hold.
    pub fn from_parts(
        edges: Vec<Edge>,
        start: Time,
        end: Time,
        initial_high: bool,
        ui: Time,
    ) -> Self {
        let stream = EdgeStream {
            edges,
            start,
            end,
            initial_high,
            ui,
        };
        assert!(stream.is_well_formed(), "edge stream invariants violated");
        stream
    }

    /// Renders a bit pattern as NRZ transitions at the given rate. Bit `i`
    /// occupies `[i·T, (i+1)·T)`; the line is low before the pattern.
    pub fn nrz(pattern: &BitPattern, rate: BitRate) -> Self {
        let ui = rate.bit_period();
        let mut edges = Vec::new();
        let mut level = false;
        for (i, &bit) in pattern.bits().iter().enumerate() {
            if bit != level {
                edges.push(Edge {
                    time: ui * i as f64,
                    kind: if bit {
                        EdgeKind::Rising
                    } else {
                        EdgeKind::Falling
                    },
                });
                level = bit;
            }
        }
        EdgeStream {
            edges,
            start: Time::ZERO,
            end: ui * pattern.len() as f64,
            initial_high: false,
            ui,
        }
    }

    /// Renders a bit pattern as RZ pulses: each `1` bit becomes a pulse of
    /// `duty` × bit-period width starting at the bit boundary.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < duty < 1`.
    pub fn rz(pattern: &BitPattern, rate: BitRate, duty: f64) -> Self {
        assert!(duty > 0.0 && duty < 1.0, "RZ duty must be in (0, 1)");
        let ui = rate.bit_period();
        let mut edges = Vec::new();
        for (i, &bit) in pattern.bits().iter().enumerate() {
            if bit {
                let t0 = ui * i as f64;
                edges.push(Edge {
                    time: t0,
                    kind: EdgeKind::Rising,
                });
                edges.push(Edge {
                    time: t0 + ui * duty,
                    kind: EdgeKind::Falling,
                });
            }
        }
        EdgeStream {
            edges,
            start: Time::ZERO,
            end: ui * pattern.len() as f64,
            initial_high: false,
            ui,
        }
    }

    /// A 50 %-duty RZ pulse-train clock at `freq` for `cycles` periods —
    /// the paper's stress stimulus for rates beyond the NRZ generator limit.
    pub fn rz_clock(freq: Frequency, cycles: usize) -> Self {
        let rate = BitRate::from_bps(freq.as_hz());
        Self::rz(&BitPattern::ones(cycles), rate, 0.5)
    }

    /// Renders a pattern using the given [`LineCode`].
    pub fn encode(pattern: &BitPattern, rate: BitRate, code: LineCode) -> Self {
        match code {
            LineCode::Nrz => Self::nrz(pattern, rate),
            LineCode::Rz { duty } => Self::rz(pattern, rate, duty),
        }
    }

    /// Returns the edges in time order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Returns the number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the stream has no transitions.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Start of the observation window.
    pub fn start(&self) -> Time {
        self.start
    }

    /// End of the observation window.
    pub fn end(&self) -> Time {
        self.end
    }

    /// Level immediately before the first edge (`true` = high).
    pub fn initial_high(&self) -> bool {
        self.initial_high
    }

    /// Nominal unit interval.
    pub fn ui(&self) -> Time {
        self.ui
    }

    /// Iterates over edge times.
    pub fn times(&self) -> impl Iterator<Item = Time> + '_ {
        self.edges.iter().map(|e| e.time)
    }

    /// Checks the stream invariants: monotone times, alternating polarity,
    /// edges within the window, and consistency of the first polarity with
    /// `initial_high`.
    pub fn is_well_formed(&self) -> bool {
        if let Some(first) = self.edges.first() {
            let expected = if self.initial_high {
                EdgeKind::Falling
            } else {
                EdgeKind::Rising
            };
            if first.kind != expected {
                return false;
            }
        }
        let mut prev: Option<&Edge> = None;
        for e in &self.edges {
            if e.time < self.start || e.time > self.end {
                return false;
            }
            if let Some(p) = prev {
                if e.time <= p.time || e.kind == p.kind {
                    return false;
                }
            }
            prev = Some(e);
        }
        self.start <= self.end
    }

    /// Returns the signal level at instant `t` (`true` = high).
    pub fn level_at(&self, t: Time) -> bool {
        let crossed = self.edges.partition_point(|e| e.time <= t);
        if crossed % 2 == 0 {
            self.initial_high
        } else {
            !self.initial_high
        }
    }

    /// Returns a copy with every edge (and the window) shifted by `dt`.
    pub fn delayed(&self, dt: Time) -> Self {
        EdgeStream {
            edges: self
                .edges
                .iter()
                .map(|e| Edge {
                    time: e.time + dt,
                    kind: e.kind,
                })
                .collect(),
            start: self.start + dt,
            end: self.end + dt,
            initial_high: self.initial_high,
            ui: self.ui,
        }
    }

    /// Rebuilds a stream from per-edge displaced times, repairing any
    /// ordering violations by enforcing a minimal spacing of 1 fs. This is
    /// the primitive jitter models and circuit models use: displacements
    /// are expected small relative to edge spacing, so repairs are rare.
    ///
    /// # Panics
    ///
    /// Panics if `new_times` has a different length than the stream.
    pub fn with_times(&self, new_times: &[Time]) -> Self {
        assert_eq!(
            new_times.len(),
            self.edges.len(),
            "one displaced time per edge required"
        );
        let eps = Time::from_fs(1.0);
        let mut edges = Vec::with_capacity(self.edges.len());
        let mut last = Time::from_s(f64::NEG_INFINITY);
        for (edge, &t) in self.edges.iter().zip(new_times) {
            let t = if t <= last { last + eps } else { t };
            edges.push(Edge {
                time: t,
                kind: edge.kind,
            });
            last = t;
        }
        let start = self.start.min(edges.first().map_or(self.start, |e| e.time));
        let end = self.end.max(edges.last().map_or(self.end, |e| e.time));
        EdgeStream {
            edges,
            start,
            end,
            initial_high: self.initial_high,
            ui: self.ui,
        }
    }

    /// Keeps only edges with `start <= t < end`, preserving level bookkeeping.
    pub fn window(&self, start: Time, end: Time) -> Self {
        let before = self.edges.iter().filter(|e| e.time < start).count();
        let initial_high = if before % 2 == 0 {
            self.initial_high
        } else {
            !self.initial_high
        };
        EdgeStream {
            edges: self
                .edges
                .iter()
                .filter(|e| e.time >= start && e.time < end)
                .copied()
                .collect(),
            start,
            end,
            initial_high,
            ui: self.ui,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::BitPattern;

    fn gbps(r: f64) -> BitRate {
        BitRate::from_gbps(r)
    }

    #[test]
    fn nrz_places_edges_at_bit_boundaries() {
        let s = EdgeStream::nrz(&BitPattern::from_str("0110").unwrap(), gbps(1.0));
        assert_eq!(s.len(), 2);
        assert!((s.edges()[0].time.as_ns() - 1.0).abs() < 1e-12);
        assert_eq!(s.edges()[0].kind, EdgeKind::Rising);
        assert!((s.edges()[1].time.as_ns() - 3.0).abs() < 1e-12);
        assert_eq!(s.edges()[1].kind, EdgeKind::Falling);
        assert!(s.is_well_formed());
    }

    #[test]
    fn nrz_constant_pattern_has_single_or_no_edge() {
        assert!(EdgeStream::nrz(&BitPattern::from_str("0000").unwrap(), gbps(1.0)).is_empty());
        let ones = EdgeStream::nrz(&BitPattern::ones(4), gbps(1.0));
        assert_eq!(ones.len(), 1);
    }

    #[test]
    fn rz_pulses_per_one_bit() {
        let s = EdgeStream::rz(&BitPattern::from_str("101").unwrap(), gbps(1.0), 0.5);
        assert_eq!(s.len(), 4);
        assert!((s.edges()[1].time.as_ps() - 500.0).abs() < 1e-9);
        assert!((s.edges()[2].time.as_ps() - 2000.0).abs() < 1e-9);
        assert!(s.is_well_formed());
    }

    #[test]
    fn rz_clock_period() {
        let s = EdgeStream::rz_clock(Frequency::from_ghz(6.4), 10);
        assert_eq!(s.len(), 20);
        let p = s.edges()[2].time - s.edges()[0].time;
        assert!((p.as_ps() - 156.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "duty")]
    fn rz_rejects_bad_duty() {
        let _ = EdgeStream::rz(&BitPattern::ones(2), gbps(1.0), 1.0);
    }

    #[test]
    fn level_at_reconstructs_waveform() {
        let s = EdgeStream::nrz(&BitPattern::from_str("0110").unwrap(), gbps(1.0));
        assert!(!s.level_at(Time::from_ns(0.5)));
        assert!(s.level_at(Time::from_ns(1.5)));
        assert!(s.level_at(Time::from_ns(2.5)));
        assert!(!s.level_at(Time::from_ns(3.5)));
    }

    #[test]
    fn delayed_shifts_everything() {
        let s = EdgeStream::nrz(&BitPattern::clock(4), gbps(1.0));
        let d = s.delayed(Time::from_ps(33.0));
        assert!((d.edges()[0].time.as_ps() - 33.0).abs() < 1e-9);
        assert!((d.start() - s.start() - Time::from_ps(33.0)).abs() < Time::from_fs(1.0));
        assert!(d.is_well_formed());
    }

    #[test]
    fn with_times_repairs_ordering() {
        let s = EdgeStream::nrz(&BitPattern::clock(4), gbps(1.0));
        // Deliberately swap two crossing times; repair must keep ordering.
        let mut times: Vec<Time> = s.times().collect();
        times.swap(1, 2);
        let repaired = s.with_times(&times);
        assert!(repaired.is_well_formed());
    }

    #[test]
    fn window_tracks_initial_level() {
        let s = EdgeStream::nrz(&BitPattern::from_str("0110").unwrap(), gbps(1.0));
        let w = s.window(Time::from_ns(1.5), Time::from_ns(4.0));
        assert!(w.initial_high());
        assert_eq!(w.len(), 1);
        assert!(w.is_well_formed());
    }

    #[test]
    fn from_parts_validates() {
        let ui = Time::from_ps(100.0);
        let edges = vec![
            Edge {
                time: Time::from_ps(10.0),
                kind: EdgeKind::Rising,
            },
            Edge {
                time: Time::from_ps(20.0),
                kind: EdgeKind::Falling,
            },
        ];
        let s = EdgeStream::from_parts(edges, Time::ZERO, Time::from_ps(100.0), false, ui);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "invariants")]
    fn from_parts_rejects_non_alternating() {
        let ui = Time::from_ps(100.0);
        let edges = vec![
            Edge {
                time: Time::from_ps(10.0),
                kind: EdgeKind::Rising,
            },
            Edge {
                time: Time::from_ps(20.0),
                kind: EdgeKind::Rising,
            },
        ];
        let _ = EdgeStream::from_parts(edges, Time::ZERO, Time::from_ps(100.0), false, ui);
    }
}
