//! Composable jitter models.
//!
//! A [`JitterModel`] maps each edge of a stream to a small time
//! displacement. The classic decomposition — random jitter (RJ, Gaussian,
//! unbounded), periodic jitter (PJ, sinusoidal), duty-cycle distortion
//! (DCD, polarity-dependent) and other bounded deterministic jitter —
//! is mirrored by one type per component plus [`CompositeJitter`] to stack
//! them. The paper's Fig. 13 input (a DUT output signal with
//! approximately 26 ps of peak-to-peak jitter) is modelled as RJ + PJ.

use crate::edges::{EdgeKind, EdgeStream};
use crate::rng::SplitMix64;
use vardelay_units::{Frequency, Time};

/// A source of per-edge timing displacement.
///
/// Implementors are stateful (RNG streams, oscillator phase) and are driven
/// once per edge in time order.
pub trait JitterModel {
    /// Returns the displacement for the edge with index `index`, nominal
    /// time `time` and polarity `kind`.
    fn displacement(&mut self, index: usize, time: Time, kind: EdgeKind) -> Time;

    /// Applies the model to a whole stream, producing a displaced copy.
    ///
    /// Ordering violations caused by large displacements are repaired with
    /// a 1 fs minimum spacing (see [`EdgeStream::with_times`]).
    fn apply(&mut self, stream: &EdgeStream) -> EdgeStream
    where
        Self: Sized,
    {
        let times: Vec<Time> = stream
            .edges()
            .iter()
            .enumerate()
            .map(|(i, e)| e.time + self.displacement(i, e.time, e.kind))
            .collect();
        stream.with_times(&times)
    }
}

/// Unbounded Gaussian random jitter with a given RMS value.
///
/// # Examples
///
/// ```
/// use vardelay_siggen::{BitPattern, EdgeStream, GaussianRj, JitterModel};
/// use vardelay_units::{BitRate, Time};
///
/// let s = EdgeStream::nrz(&BitPattern::clock(100), BitRate::from_gbps(1.0));
/// let j = GaussianRj::new(Time::from_ps(2.0), 1).apply(&s);
/// assert_eq!(j.len(), s.len());
/// ```
#[derive(Debug, Clone)]
pub struct GaussianRj {
    sigma: Time,
    rng: SplitMix64,
}

impl GaussianRj {
    /// Creates Gaussian RJ with standard deviation `sigma`.
    pub fn new(sigma: Time, seed: u64) -> Self {
        GaussianRj {
            sigma,
            rng: SplitMix64::new(seed),
        }
    }

    /// Returns the RMS value.
    pub fn sigma(&self) -> Time {
        self.sigma
    }
}

impl JitterModel for GaussianRj {
    fn displacement(&mut self, _index: usize, _time: Time, _kind: EdgeKind) -> Time {
        self.sigma * self.rng.gaussian()
    }
}

/// Sinusoidal periodic jitter: `A·sin(2π·f·t + φ)`.
#[derive(Debug, Clone)]
pub struct SinusoidalPj {
    amplitude: Time,
    frequency: Frequency,
    phase: f64,
}

impl SinusoidalPj {
    /// Creates PJ with peak displacement `amplitude` at `frequency`,
    /// starting at phase `phase` radians.
    pub fn new(amplitude: Time, frequency: Frequency, phase: f64) -> Self {
        SinusoidalPj {
            amplitude,
            frequency,
            phase,
        }
    }

    /// Peak-to-peak displacement contributed by this component (2·A).
    pub fn peak_to_peak(&self) -> Time {
        self.amplitude * 2.0
    }
}

impl JitterModel for SinusoidalPj {
    fn displacement(&mut self, _index: usize, time: Time, _kind: EdgeKind) -> Time {
        let arg = 2.0 * core::f64::consts::PI * self.frequency.as_hz() * time.as_s() + self.phase;
        self.amplitude * arg.sin()
    }
}

/// Duty-cycle distortion: a fixed displacement applied to falling edges
/// only, compressing or stretching the high phase.
#[derive(Debug, Clone, Copy)]
pub struct DutyCycleDistortion {
    falling_shift: Time,
}

impl DutyCycleDistortion {
    /// Creates DCD that moves every falling edge by `falling_shift`
    /// (positive = later = wider high pulses).
    pub fn new(falling_shift: Time) -> Self {
        DutyCycleDistortion { falling_shift }
    }
}

impl JitterModel for DutyCycleDistortion {
    fn displacement(&mut self, _index: usize, _time: Time, kind: EdgeKind) -> Time {
        match kind {
            EdgeKind::Rising => Time::ZERO,
            EdgeKind::Falling => self.falling_shift,
        }
    }
}

/// Bounded uniform jitter in `[-amplitude/2, +amplitude/2]` — a generic
/// stand-in for bounded uncorrelated deterministic jitter.
#[derive(Debug, Clone)]
pub struct BoundedUniformJitter {
    amplitude: Time,
    rng: SplitMix64,
}

impl BoundedUniformJitter {
    /// Creates bounded jitter with total width `amplitude` (peak-to-peak).
    pub fn new(amplitude: Time, seed: u64) -> Self {
        BoundedUniformJitter {
            amplitude,
            rng: SplitMix64::new(seed),
        }
    }
}

impl JitterModel for BoundedUniformJitter {
    fn displacement(&mut self, _index: usize, _time: Time, _kind: EdgeKind) -> Time {
        self.amplitude * (self.rng.next_f64() - 0.5)
    }
}

/// A stack of jitter components whose displacements add.
///
/// # Examples
///
/// ```
/// use vardelay_siggen::{CompositeJitter, GaussianRj, SinusoidalPj};
/// use vardelay_units::{Frequency, Time};
///
/// // The paper's Fig. 13 DUT-like input: RJ plus a PJ tone.
/// let model = CompositeJitter::new()
///     .with(GaussianRj::new(Time::from_ps(1.5), 7))
///     .with(SinusoidalPj::new(Time::from_ps(6.0), Frequency::from_mhz(100.0), 0.0));
/// assert_eq!(model.components(), 2);
/// ```
#[derive(Default)]
pub struct CompositeJitter {
    parts: Vec<Box<dyn JitterModel + Send>>,
}

impl CompositeJitter {
    /// Creates an empty composite (zero displacement).
    pub fn new() -> Self {
        CompositeJitter::default()
    }

    /// Adds a component, builder style.
    pub fn with<M: JitterModel + Send + 'static>(mut self, model: M) -> Self {
        self.parts.push(Box::new(model));
        self
    }

    /// Returns the number of stacked components.
    pub fn components(&self) -> usize {
        self.parts.len()
    }
}

impl core::fmt::Debug for CompositeJitter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CompositeJitter")
            .field("components", &self.parts.len())
            .finish()
    }
}

impl JitterModel for CompositeJitter {
    fn displacement(&mut self, index: usize, time: Time, kind: EdgeKind) -> Time {
        self.parts
            .iter_mut()
            .map(|m| m.displacement(index, time, kind))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::BitPattern;
    use vardelay_units::BitRate;

    fn stream(n: usize) -> EdgeStream {
        EdgeStream::nrz(&BitPattern::clock(n), BitRate::from_gbps(1.0))
    }

    fn displacements(stream: &EdgeStream, jittered: &EdgeStream) -> Vec<f64> {
        stream
            .times()
            .zip(jittered.times())
            .map(|(a, b)| (b - a).as_ps())
            .collect()
    }

    #[test]
    fn gaussian_rj_statistics() {
        let s = stream(20_000);
        let sigma = Time::from_ps(2.0);
        let j = GaussianRj::new(sigma, 11).apply(&s);
        let d = displacements(&s, &j);
        let mean = d.iter().sum::<f64>() / d.len() as f64;
        let rms = (d.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / d.len() as f64).sqrt();
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((rms - 2.0).abs() < 0.1, "rms {rms}");
    }

    #[test]
    fn sinusoidal_pj_is_bounded_and_periodic() {
        let s = stream(10_000);
        let amp = Time::from_ps(5.0);
        let j = SinusoidalPj::new(amp, Frequency::from_mhz(50.0), 0.0).apply(&s);
        let d = displacements(&s, &j);
        let max = d.iter().cloned().fold(f64::MIN, f64::max);
        let min = d.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max <= 5.0 + 1e-9 && min >= -5.0 - 1e-9);
        // With 10k edges over many PJ cycles the swing is fully explored.
        assert!(max > 4.9 && min < -4.9, "pp {}", max - min);
    }

    #[test]
    fn dcd_moves_only_falling_edges() {
        let s = stream(10);
        let j = DutyCycleDistortion::new(Time::from_ps(7.0)).apply(&s);
        for (orig, moved) in s.edges().iter().zip(j.edges()) {
            let d = (moved.time - orig.time).as_ps();
            match orig.kind {
                EdgeKind::Rising => assert!(d.abs() < 1e-9),
                EdgeKind::Falling => assert!((d - 7.0).abs() < 1e-9),
            }
        }
    }

    #[test]
    fn bounded_uniform_respects_amplitude() {
        let s = stream(5000);
        let j = BoundedUniformJitter::new(Time::from_ps(4.0), 3).apply(&s);
        for d in displacements(&s, &j) {
            assert!(d.abs() <= 2.0 + 1e-9);
        }
    }

    #[test]
    fn composite_sums_components() {
        let s = stream(100);
        let mut c = CompositeJitter::new()
            .with(DutyCycleDistortion::new(Time::from_ps(3.0)))
            .with(DutyCycleDistortion::new(Time::from_ps(4.0)));
        let j = c.apply(&s);
        let falling: Vec<f64> = s
            .edges()
            .iter()
            .zip(j.edges())
            .filter(|(o, _)| o.kind == EdgeKind::Falling)
            .map(|(o, m)| (m.time - o.time).as_ps())
            .collect();
        assert!(falling.iter().all(|d| (d - 7.0).abs() < 1e-9));
    }

    #[test]
    fn apply_preserves_well_formedness_under_heavy_jitter() {
        let s = stream(1000);
        // Sigma comparable to the UI: collisions guaranteed, repair must hold.
        let j = GaussianRj::new(Time::from_ps(600.0), 17).apply(&s);
        assert!(j.is_well_formed());
    }

    #[test]
    fn same_seed_reproduces() {
        let s = stream(50);
        let a = GaussianRj::new(Time::from_ps(1.0), 9).apply(&s);
        let b = GaussianRj::new(Time::from_ps(1.0), 9).apply(&s);
        assert_eq!(a, b);
    }
}
