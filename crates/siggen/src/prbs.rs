//! Maximal-length LFSR pseudo-random bit sequences.
//!
//! PRBS patterns are the standard stimulus for serial-link eye measurements
//! (the paper's Figs. 12–13 use the generator's pseudo-random NRZ data).
//! Each [`PrbsOrder`] selects a primitive polynomial; the resulting sequence
//! repeats with period `2^n − 1` and is *balanced*: it contains every
//! non-zero n-bit word exactly once per period.

/// The supported PRBS polynomial orders with their ITU-T standard taps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrbsOrder {
    /// x⁷ + x⁶ + 1, period 127.
    Prbs7,
    /// x⁹ + x⁵ + 1, period 511.
    Prbs9,
    /// x¹¹ + x⁹ + 1, period 2047.
    Prbs11,
    /// x¹⁵ + x¹⁴ + 1, period 32767.
    Prbs15,
    /// x²³ + x¹⁸ + 1, period 8388607.
    Prbs23,
    /// x³¹ + x²⁸ + 1, period 2³¹−1.
    Prbs31,
}

impl PrbsOrder {
    /// Returns the register length `n`.
    pub const fn order(self) -> u32 {
        match self {
            PrbsOrder::Prbs7 => 7,
            PrbsOrder::Prbs9 => 9,
            PrbsOrder::Prbs11 => 11,
            PrbsOrder::Prbs15 => 15,
            PrbsOrder::Prbs23 => 23,
            PrbsOrder::Prbs31 => 31,
        }
    }

    /// Returns the feedback tap pair `(a, b)` for x^a + x^b + 1.
    pub const fn taps(self) -> (u32, u32) {
        match self {
            PrbsOrder::Prbs7 => (7, 6),
            PrbsOrder::Prbs9 => (9, 5),
            PrbsOrder::Prbs11 => (11, 9),
            PrbsOrder::Prbs15 => (15, 14),
            PrbsOrder::Prbs23 => (23, 18),
            PrbsOrder::Prbs31 => (31, 28),
        }
    }

    /// Returns the sequence period `2^n − 1`.
    pub const fn period(self) -> u64 {
        (1u64 << self.order()) - 1
    }
}

impl core::fmt::Display for PrbsOrder {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "PRBS{}", self.order())
    }
}

/// A running PRBS generator (Fibonacci LFSR). Implements [`Iterator`] over
/// bits and never terminates.
///
/// # Examples
///
/// ```
/// use vardelay_siggen::{Prbs, PrbsOrder};
///
/// let bits: Vec<bool> = Prbs::new(PrbsOrder::Prbs7, 1).take(127).collect();
/// let ones = bits.iter().filter(|&&b| b).count();
/// assert_eq!(ones, 64); // maximal-length sequences have 2^(n-1) ones
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prbs {
    order: PrbsOrder,
    state: u64,
}

impl Prbs {
    /// Creates a generator with the given non-zero starting state.
    ///
    /// The state is masked to `n` bits; if the masked value would be zero
    /// (the LFSR's single fixed point), the all-ones state is used instead
    /// so the generator always produces a maximal-length sequence.
    pub fn new(order: PrbsOrder, seed: u64) -> Self {
        let mask = (1u64 << order.order()) - 1;
        let mut state = seed & mask;
        if state == 0 {
            state = mask;
        }
        Prbs { order, state }
    }

    /// Returns the polynomial order of this generator.
    pub fn order(&self) -> PrbsOrder {
        self.order
    }

    /// Advances the register one step and returns the output bit.
    pub fn next_bit(&mut self) -> bool {
        let (a, b) = self.order.taps();
        let out = (self.state >> (a - 1)) & 1;
        let fb = out ^ ((self.state >> (b - 1)) & 1);
        let mask = (1u64 << self.order.order()) - 1;
        self.state = ((self.state << 1) | fb) & mask;
        out == 1
    }
}

impl Iterator for Prbs {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        Some(self.next_bit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_period(order: PrbsOrder) -> Vec<bool> {
        Prbs::new(order, 1).take(order.period() as usize).collect()
    }

    #[test]
    fn prbs7_has_maximal_period() {
        // The state must revisit its start after exactly 2^7-1 steps and at
        // no earlier point.
        let start = Prbs::new(PrbsOrder::Prbs7, 1);
        let mut gen = start.clone();
        for step in 1..=127u32 {
            gen.next_bit();
            if gen == start {
                assert_eq!(step, 127, "period shorter than maximal");
                return;
            }
        }
        panic!("state never recurred within one period");
    }

    #[test]
    fn prbs9_and_prbs11_periods() {
        for order in [PrbsOrder::Prbs9, PrbsOrder::Prbs11] {
            let start = Prbs::new(order, 3);
            let mut gen = start.clone();
            let mut steps = 0u64;
            loop {
                gen.next_bit();
                steps += 1;
                if gen == start {
                    break;
                }
                assert!(steps <= order.period(), "period exceeds maximal");
            }
            assert_eq!(steps, order.period());
        }
    }

    #[test]
    fn balance_one_extra_one() {
        // A maximal-length sequence of period 2^n-1 has 2^(n-1) ones and
        // 2^(n-1)-1 zeros.
        for order in [PrbsOrder::Prbs7, PrbsOrder::Prbs9, PrbsOrder::Prbs11] {
            let bits = full_period(order);
            let ones = bits.iter().filter(|&&b| b).count() as u64;
            assert_eq!(ones, (order.period() + 1) / 2, "{order}");
        }
    }

    #[test]
    fn longest_run_is_n() {
        // The longest run of ones in a maximal-length sequence is n, of
        // zeros n-1.
        let bits = full_period(PrbsOrder::Prbs7);
        let mut longest_ones = 0;
        let mut longest_zeros = 0;
        let mut run = 0usize;
        let mut last = bits[0];
        // Scan doubled sequence to catch a run wrapping the period boundary.
        for &b in bits.iter().chain(bits.iter()) {
            if b == last {
                run += 1;
            } else {
                if last {
                    longest_ones = longest_ones.max(run);
                } else {
                    longest_zeros = longest_zeros.max(run);
                }
                run = 1;
                last = b;
            }
        }
        assert_eq!(longest_ones, 7);
        assert_eq!(longest_zeros, 6);
    }

    #[test]
    fn zero_seed_is_coerced() {
        let mut gen = Prbs::new(PrbsOrder::Prbs7, 0);
        // All-zero state would lock up (output constant 0); coercion must
        // prevent that.
        let bits: Vec<bool> = (0..20).map(|_| gen.next_bit()).collect();
        assert!(bits.iter().any(|&b| b) && bits.iter().any(|&b| !b));
    }

    #[test]
    fn seeds_shift_phase_only() {
        // Different seeds must generate the same cyclic sequence, just
        // phase-shifted.
        let a = full_period(PrbsOrder::Prbs7);
        let b: Vec<bool> = Prbs::new(PrbsOrder::Prbs7, 0x55).take(127).collect();
        let doubled: Vec<bool> = a.iter().chain(a.iter()).copied().collect();
        let found = (0..127).any(|off| doubled[off..off + 127] == b[..]);
        assert!(found, "seeded sequence is not a rotation of the base one");
    }

    #[test]
    fn display_names() {
        assert_eq!(PrbsOrder::Prbs23.to_string(), "PRBS23");
        assert_eq!(PrbsOrder::Prbs31.period(), (1u64 << 31) - 1);
    }
}
