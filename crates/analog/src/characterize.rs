//! Bench-style characterization of waveform-domain chains, and the
//! table-driven edge-domain model built from it.
//!
//! The fast edge engine does not re-derive the buffer physics; instead it
//! does what one does with the physical prototype: **measure** the delay of
//! the full chain on a grid of control voltages and toggle intervals, then
//! interpolate. Because the preceding interval determines how far the
//! bandwidth-limited stages settled, a `delay(vctrl, preceding-interval)`
//! table reproduces both the Fig. 7 control curve and the Fig. 15
//! frequency roll-off, and applying it per-edge on real data produces the
//! data-dependent jitter the paper observes at 6.4 Gb/s.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::block::{AnalogBlock, EdgeTransform};
use crate::fingerprint::Fingerprint;
use vardelay_measure::MeasureDelayError;
use vardelay_obs as obs;
use vardelay_runner::Runner;
use vardelay_siggen::{BitPattern, EdgeStream, SplitMix64};
use vardelay_units::{BitRate, Time, Voltage};
use vardelay_waveform::{to_edge_stream, RenderConfig, Waveform};

/// A grid point of a characterization sweep could not be measured — the
/// chain output carried no usable signal (e.g. a dead driver under fault
/// injection). The typed form lets a quarantined channel degrade instead
/// of panicking the worker that was characterizing it.
#[derive(Debug, Clone, PartialEq)]
pub enum CharacterizeError {
    /// The chain output produced too few crossings to measure: the signal
    /// was completely lost at this grid point.
    SignalLost {
        /// Control voltage of the failing grid point.
        vctrl: Voltage,
        /// Toggle interval of the failing grid point.
        interval: Time,
        /// Crossings actually observed (at or below the warm-up count).
        edges: usize,
    },
    /// Crossings existed but could not be paired into a delay.
    Unmeasurable {
        /// Control voltage of the failing grid point.
        vctrl: Voltage,
        /// Toggle interval of the failing grid point.
        interval: Time,
        /// The underlying measurement failure.
        source: MeasureDelayError,
    },
}

impl core::fmt::Display for CharacterizeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CharacterizeError::SignalLost {
                vctrl,
                interval,
                edges,
            } => write!(
                f,
                "chain output lost the signal at vctrl={vctrl}, interval={interval} \
                 ({edges} crossings)"
            ),
            CharacterizeError::Unmeasurable {
                vctrl,
                interval,
                source,
            } => write!(
                f,
                "chain output carries no measurable edges at vctrl={vctrl}, \
                 interval={interval}: {source}"
            ),
        }
    }
}

impl std::error::Error for CharacterizeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CharacterizeError::SignalLost { .. } => None,
            CharacterizeError::Unmeasurable { source, .. } => Some(source),
        }
    }
}

/// A measured `delay(vctrl, preceding-interval)` lookup table with
/// bilinear interpolation and boundary clamping.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayTable {
    vctrls: Vec<Voltage>,
    intervals: Vec<Time>,
    /// `delays[i][j]` is the mean delay at `vctrls[i]`, `intervals[j]`.
    delays: Vec<Vec<Time>>,
}

impl DelayTable {
    /// Builds a table from grids and measured values.
    ///
    /// # Panics
    ///
    /// Panics if grids are empty, unsorted, or the value matrix has the
    /// wrong shape.
    pub fn new(vctrls: Vec<Voltage>, intervals: Vec<Time>, delays: Vec<Vec<Time>>) -> Self {
        assert!(
            !vctrls.is_empty() && !intervals.is_empty(),
            "grids must be non-empty"
        );
        assert!(
            vctrls.windows(2).all(|w| w[0] < w[1]),
            "vctrl grid must be strictly ascending"
        );
        assert!(
            intervals.windows(2).all(|w| w[0] < w[1]),
            "interval grid must be strictly ascending"
        );
        assert_eq!(delays.len(), vctrls.len(), "one delay row per vctrl");
        assert!(
            delays.iter().all(|row| row.len() == intervals.len()),
            "one delay per interval in every row"
        );
        DelayTable {
            vctrls,
            intervals,
            delays,
        }
    }

    /// The control-voltage grid.
    pub fn vctrls(&self) -> &[Voltage] {
        &self.vctrls
    }

    /// The preceding-interval grid.
    pub fn intervals(&self) -> &[Time] {
        &self.intervals
    }

    fn bracket<T>(grid: &[T], x: T) -> (usize, usize, f64)
    where
        T: Copy + PartialOrd + core::ops::Sub<Output = T> + core::ops::Div<T, Output = f64>,
    {
        if grid.len() == 1 {
            return (0, 0, 0.0);
        }
        let mut i = grid.partition_point(|&g| g <= x);
        if i == 0 {
            return (0, 0, 0.0);
        }
        if i >= grid.len() {
            i = grid.len();
            return (i - 1, i - 1, 0.0);
        }
        let (lo, hi) = (i - 1, i);
        let frac = (x - grid[lo]) / (grid[hi] - grid[lo]);
        (lo, hi, frac.clamp(0.0, 1.0))
    }

    /// Looks up the delay with bilinear interpolation, clamping outside the
    /// measured grid.
    pub fn delay_at(&self, vctrl: Voltage, interval: Time) -> Time {
        let (v0, v1, fv) = Self::bracket(&self.vctrls, vctrl);
        let (i0, i1, fi) = Self::bracket(&self.intervals, interval);
        let d00 = self.delays[v0][i0];
        let d01 = self.delays[v0][i1];
        let d10 = self.delays[v1][i0];
        let d11 = self.delays[v1][i1];
        let low = d00 + (d01 - d00) * fi;
        let high = d10 + (d11 - d10) * fi;
        low + (high - low) * fv
    }

    /// The delay-vs-`Vctrl` curve at one preceding interval: one
    /// `(vctrl, delay)` point per grid voltage, interpolated across the
    /// interval axis. This is the cache-backed solve entry point the
    /// calibration path uses — a table memoized by
    /// [`measure_delay_table_cached`] answers every later curve request
    /// without re-measuring, so concurrent consumers (e.g. the
    /// `vardelay-serve` channels) share one characterization.
    pub fn curve_at(&self, interval: Time) -> Vec<(Voltage, Time)> {
        self.vctrls
            .iter()
            .map(|&v| (v, self.delay_at(v, interval)))
            .collect()
    }

    /// The measured delay span (max − min across the whole table).
    pub fn delay_span(&self) -> Time {
        let mut lo = Time::from_s(f64::INFINITY);
        let mut hi = Time::from_s(f64::NEG_INFINITY);
        for row in &self.delays {
            for &d in row {
                lo = lo.min(d);
                hi = hi.max(d);
            }
        }
        hi - lo
    }
}

/// Measures a `delay(vctrl, interval)` table by driving a freshly-built
/// chain with toggling clock stimuli, exactly as on the bench.
///
/// For every grid point the chain is rebuilt by `build(vctrl)` (so noise
/// seeds and filter states reset), driven with a 1010… pattern whose bit
/// period equals the interval, and the mean delay over the steady-state
/// tail of the capture is recorded. Chains built for characterization
/// should disable voltage noise so the table is a clean mean.
///
/// # Panics
///
/// Panics if the grids are empty or if a chain output produces no
/// measurable crossings at some grid point (signal completely lost).
pub fn measure_delay_table(
    build: &(dyn Fn(Voltage) -> Box<dyn AnalogBlock + Send> + Sync),
    vctrls: &[Voltage],
    intervals: &[Time],
    render: &RenderConfig,
) -> DelayTable {
    measure_delay_table_with(Runner::global(), build, vctrls, intervals, render)
}

/// [`measure_delay_table`] on an explicit [`Runner`] (used by the
/// determinism regression tests to force thread counts).
///
/// Every grid cell builds its own chain from scratch and shares no state
/// with any other cell, so the fan-out is bit-identical to the serial
/// nested loop at every thread count.
pub fn measure_delay_table_with(
    runner: Runner,
    build: &(dyn Fn(Voltage) -> Box<dyn AnalogBlock + Send> + Sync),
    vctrls: &[Voltage],
    intervals: &[Time],
    render: &RenderConfig,
) -> DelayTable {
    match try_measure_delay_table_with(runner, build, vctrls, intervals, render) {
        Ok(table) => table,
        Err(e) => panic!("{e}"),
    }
}

/// [`measure_delay_table`] returning a typed error instead of panicking
/// when a grid point carries no measurable signal — the entry point for
/// fault-tolerant callers (a dead-driver channel under fault injection
/// yields `Err`, and the channel can be quarantined rather than taking
/// the worker down).
///
/// # Errors
///
/// Returns [`CharacterizeError`] for the first grid point (in row-major
/// `vctrls × intervals` order) whose output lost the signal or could not
/// be paired into a delay.
pub fn try_measure_delay_table(
    build: &(dyn Fn(Voltage) -> Box<dyn AnalogBlock + Send> + Sync),
    vctrls: &[Voltage],
    intervals: &[Time],
    render: &RenderConfig,
) -> Result<DelayTable, CharacterizeError> {
    try_measure_delay_table_with(Runner::global(), build, vctrls, intervals, render)
}

/// [`try_measure_delay_table`] on an explicit [`Runner`].
///
/// # Errors
///
/// Returns [`CharacterizeError`] for the first failing grid point.
pub fn try_measure_delay_table_with(
    runner: Runner,
    build: &(dyn Fn(Voltage) -> Box<dyn AnalogBlock + Send> + Sync),
    vctrls: &[Voltage],
    intervals: &[Time],
    render: &RenderConfig,
) -> Result<DelayTable, CharacterizeError> {
    assert!(
        !vctrls.is_empty() && !intervals.is_empty(),
        "grids must be non-empty"
    );
    const WARMUP_EDGES: usize = 8;
    const TOTAL_BITS: usize = 24;

    let cells: Vec<(Voltage, Time)> = vctrls
        .iter()
        .flat_map(|&v| intervals.iter().map(move |&i| (v, i)))
        .collect();
    let flat = runner
        .par_map(&cells, |_, &(vctrl, interval)| {
            let rate = BitRate::from_bps(1.0 / interval.as_s());
            let stimulus = EdgeStream::nrz(&BitPattern::clock(TOTAL_BITS), rate);
            let wf = Waveform::render(&stimulus, render);
            let mut chain = build(vctrl);
            let out_wf = chain.process(&wf);
            let out = to_edge_stream(&out_wf, 0.0, rate.bit_period());
            if out.len() <= WARMUP_EDGES {
                return Err(CharacterizeError::SignalLost {
                    vctrl,
                    interval,
                    edges: out.len(),
                });
            }
            // Polarity-safe tail pairing: robust to start-up transients
            // and to a final edge cut off by the capture window.
            vardelay_measure::tail_mean_delay(&stimulus, &out, WARMUP_EDGES).map_err(|source| {
                CharacterizeError::Unmeasurable {
                    vctrl,
                    interval,
                    source,
                }
            })
        })
        .into_iter()
        .collect::<Result<Vec<Time>, CharacterizeError>>()?;
    let delays = flat
        .chunks(intervals.len())
        .map(|row| row.to_vec())
        .collect();
    Ok(DelayTable::new(vctrls.to_vec(), intervals.to_vec(), delays))
}

// ---------------------------------------------------------------------------
// Characterization cache
// ---------------------------------------------------------------------------

/// One cache entry: a per-key single-flight slot. The first caller to
/// reach `get_or_init` measures; racing callers for the same key block
/// inside the `OnceLock` until the table exists instead of launching a
/// duplicate `vctrls × intervals` waveform sweep (the cache-stampede
/// bug: both racers used to measure *and* both counted a miss).
type CacheSlot = Arc<OnceLock<Arc<DelayTable>>>;

fn cache() -> &'static Mutex<HashMap<u64, CacheSlot>> {
    static CACHE: OnceLock<Mutex<HashMap<u64, CacheSlot>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static SINGLE_FLIGHT_WAITS: AtomicU64 = AtomicU64::new(0);

fn cache_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var_os("VARDELAY_NO_CACHE").is_none())
}

/// `(hits, misses)` counters of the process-wide characterization cache.
/// A miss is counted once per *measurement*, not once per caller — a
/// racer that waited for another thread's in-flight measurement counts
/// under [`characterization_single_flight_waits`] instead.
pub fn characterization_cache_stats() -> (u64, u64) {
    (
        CACHE_HITS.load(Ordering::Relaxed),
        CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// How many cache lookups blocked on another thread's in-flight
/// measurement of the same key (and were spared a duplicate sweep).
pub fn characterization_single_flight_waits() -> u64 {
    SINGLE_FLIGHT_WAITS.load(Ordering::Relaxed)
}

/// Empties the characterization cache (counters are left running). Meant
/// for tests and for benchmarks that need a cold start. Threads already
/// waiting on an in-flight measurement keep their slot and complete
/// normally; only future lookups start cold.
pub fn clear_characterization_cache() {
    cache().lock().expect("cache lock").clear();
}

/// [`measure_delay_table`], memoized on `(model_key, grids, render)`.
///
/// `model_key` must fingerprint **everything** `build` closes over that
/// can influence the measurement (see `ModelConfig::fingerprint` in
/// `vardelay-core`, and DESIGN.md §8 for the invalidation rule); the grid
/// values and render settings are folded in here. On a hit the stored
/// table is cloned and `build` is never called. Disable with the
/// `VARDELAY_NO_CACHE` environment variable (checked once per process).
pub fn measure_delay_table_cached(
    model_key: u64,
    build: &(dyn Fn(Voltage) -> Box<dyn AnalogBlock + Send> + Sync),
    vctrls: &[Voltage],
    intervals: &[Time],
    render: &RenderConfig,
) -> DelayTable {
    measure_delay_table_cached_with(
        Runner::global(),
        model_key,
        build,
        vctrls,
        intervals,
        render,
    )
}

/// [`measure_delay_table_cached`] on an explicit [`Runner`].
pub fn measure_delay_table_cached_with(
    runner: Runner,
    model_key: u64,
    build: &(dyn Fn(Voltage) -> Box<dyn AnalogBlock + Send> + Sync),
    vctrls: &[Voltage],
    intervals: &[Time],
    render: &RenderConfig,
) -> DelayTable {
    if !cache_enabled() {
        return measure_delay_table_with(runner, build, vctrls, intervals, render);
    }
    let mut fp = Fingerprint::new();
    fp.push_u64(model_key);
    fp.push_usize(vctrls.len());
    for v in vctrls {
        fp.push_f64(v.as_v());
    }
    fp.push_usize(intervals.len());
    for i in intervals {
        fp.push_f64(i.as_s());
    }
    fp.push_f64(render.dt.as_s())
        .push_f64(render.swing.as_v())
        .push_f64(render.rise_time.as_s())
        .push_f64(render.padding.as_s());
    let key = fp.finish();

    // The map lock is held only long enough to fetch/insert the per-key
    // slot; the measurement itself runs inside the slot's `OnceLock`, so
    // misses on *different* keys never serialize each other, while
    // racing misses on the *same* key single-flight: one thread measures,
    // the rest block until the table exists.
    let slot: CacheSlot = cache()
        .lock()
        .expect("cache lock")
        .entry(key)
        .or_default()
        .clone();
    if let Some(table) = slot.get() {
        CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        obs::counter("analog.cache_hits").incr();
        return DelayTable::clone(table);
    }
    let mut measured_here = false;
    let table = slot.get_or_init(|| {
        // Runs exactly once per slot no matter how many callers race, so
        // the miss count equals the measurement count by construction.
        measured_here = true;
        CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        obs::counter("analog.cache_misses").incr();
        let _span = obs::span("analog.characterize_miss_us");
        Arc::new(measure_delay_table_with(
            runner, build, vctrls, intervals, render,
        ))
    });
    if !measured_here {
        SINGLE_FLIGHT_WAITS.fetch_add(1, Ordering::Relaxed);
        obs::counter("analog.single_flight_waits").incr();
    }
    DelayTable::clone(table)
}

/// A table-driven edge-domain delay element with per-edge random jitter —
/// the fast model of a characterized chain.
#[derive(Debug, Clone)]
pub struct CharacterizedDelay {
    table: DelayTable,
    vctrl: Voltage,
    rj_sigma: Time,
    rng: SplitMix64,
    label: String,
}

impl CharacterizedDelay {
    /// Creates a model at the given operating point.
    pub fn new(table: DelayTable, vctrl: Voltage, rj_sigma: Time, seed: u64) -> Self {
        CharacterizedDelay {
            table,
            vctrl,
            rj_sigma,
            rng: SplitMix64::new(seed),
            label: "characterized-delay".to_owned(),
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &DelayTable {
        &self.table
    }

    /// Current control voltage.
    pub fn vctrl(&self) -> Voltage {
        self.vctrl
    }

    /// Reprograms the control voltage.
    pub fn set_vctrl(&mut self, vctrl: Voltage) {
        self.vctrl = vctrl;
    }

    /// Delays a stream using per-edge control voltages (one per edge) —
    /// the jitter-injection path, where `Vctrl` moves with coupled noise.
    ///
    /// # Panics
    ///
    /// Panics if `vctrls.len()` differs from the edge count.
    pub fn transform_with_vctrls(&mut self, input: &EdgeStream, vctrls: &[Voltage]) -> EdgeStream {
        assert_eq!(
            vctrls.len(),
            input.len(),
            "one control voltage per edge required"
        );
        let times = self.displaced_times(input, |i| vctrls[i]);
        input.with_times(&times)
    }

    fn displaced_times(
        &mut self,
        input: &EdgeStream,
        vctrl_of: impl Fn(usize) -> Voltage,
    ) -> Vec<Time> {
        // The first edge has no preceding interval; assume steady state by
        // borrowing the following interval (falling back to the longest
        // characterized one for single-edge streams). Without this, the
        // first edge becomes a large delay outlier that dominates
        // peak-to-peak jitter measurements.
        let long = *self
            .table
            .intervals()
            .last()
            .expect("table grids are non-empty");
        let first_interval = match input.edges() {
            [a, b, ..] => b.time - a.time,
            _ => long,
        };
        let mut prev: Option<Time> = None;
        input
            .edges()
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let interval = prev.map_or(first_interval, |p| e.time - p);
                prev = Some(e.time);
                let mut d = self.table.delay_at(vctrl_of(i), interval);
                if self.rj_sigma > Time::ZERO {
                    d += self.rj_sigma * self.rng.gaussian();
                }
                e.time + d
            })
            .collect()
    }
}

impl EdgeTransform for CharacterizedDelay {
    fn transform(&mut self, input: &EdgeStream) -> EdgeStream {
        let vctrl = self.vctrl;
        let times = self.displaced_times(input, |_| vctrl);
        input.with_times(&times)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tline::TransmissionLine;
    use crate::vga_buffer::{VgaBuffer, VgaBufferConfig};

    /// Tests that assert on the global hit/miss/wait counters must not
    /// interleave with other cache-touching tests in this binary.
    static COUNTER_LOCK: Mutex<()> = Mutex::new(());

    fn counter_lock() -> std::sync::MutexGuard<'static, ()> {
        COUNTER_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn table_2x2() -> DelayTable {
        DelayTable::new(
            vec![Voltage::from_v(0.0), Voltage::from_v(1.0)],
            vec![Time::from_ps(100.0), Time::from_ps(200.0)],
            vec![
                vec![Time::from_ps(10.0), Time::from_ps(20.0)],
                vec![Time::from_ps(30.0), Time::from_ps(40.0)],
            ],
        )
    }

    #[test]
    fn bilinear_interpolation() {
        let t = table_2x2();
        let mid = t.delay_at(Voltage::from_v(0.5), Time::from_ps(150.0));
        assert!((mid.as_ps() - 25.0).abs() < 1e-9);
        // Clamping outside the grid.
        let low = t.delay_at(Voltage::from_v(-5.0), Time::from_ps(50.0));
        assert!((low.as_ps() - 10.0).abs() < 1e-9);
        let high = t.delay_at(Voltage::from_v(5.0), Time::from_ps(500.0));
        assert!((high.as_ps() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn delay_span() {
        assert!((table_2x2().delay_span().as_ps() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn measured_table_of_a_pure_line_is_flat() {
        let build = |_v: Voltage| -> Box<dyn AnalogBlock + Send> {
            Box::new(TransmissionLine::new(Time::from_ps(33.0)))
        };
        let table = measure_delay_table(
            &build,
            &[Voltage::ZERO, Voltage::from_v(1.5)],
            &[Time::from_ps(500.0), Time::from_ps(1000.0)],
            &RenderConfig::default_source(),
        );
        for v in table.vctrls() {
            for i in table.intervals() {
                let d = table.delay_at(*v, *i);
                assert!((d.as_ps() - 33.0).abs() < 0.5, "d {d}");
            }
        }
    }

    #[test]
    fn measured_vga_table_shows_amplitude_dependence() {
        let mut cfg = VgaBufferConfig::paper_default();
        cfg.core.noise_rms = Voltage::ZERO;
        let build = move |v: Voltage| -> Box<dyn AnalogBlock + Send> {
            let mut buf = VgaBuffer::new(cfg.clone(), 1);
            buf.set_vctrl(v);
            Box::new(buf)
        };
        let table = measure_delay_table(
            &build,
            &[Voltage::ZERO, Voltage::from_v(0.75), Voltage::from_v(1.5)],
            &[Time::from_ps(1000.0)],
            &RenderConfig::default_source(),
        );
        let long = Time::from_ps(1000.0);
        let d_lo = table.delay_at(Voltage::ZERO, long);
        let d_hi = table.delay_at(Voltage::from_v(1.5), long);
        let range = (d_hi - d_lo).as_ps();
        assert!((5.0..20.0).contains(&range), "range {range} ps");
    }

    #[test]
    fn characterized_delay_applies_table() {
        let table = table_2x2();
        let mut model = CharacterizedDelay::new(table, Voltage::from_v(1.0), Time::ZERO, 1);
        let stream = EdgeStream::nrz(&BitPattern::clock(10), BitRate::from_bps(1.0 / 200e-12));
        let out = model.transform(&stream);
        let d = vardelay_measure::mean_delay(&stream, &out).unwrap();
        // All intervals are 200 ps → delay 40 ps at vctrl = 1 V.
        assert!((d.as_ps() - 40.0).abs() < 0.1, "d {d}");
    }

    #[test]
    fn per_edge_vctrls_modulate_delay() {
        let table = table_2x2();
        let mut model = CharacterizedDelay::new(table, Voltage::ZERO, Time::ZERO, 1);
        let stream = EdgeStream::nrz(&BitPattern::clock(4), BitRate::from_bps(1.0 / 200e-12));
        let vctrls: Vec<Voltage> = (0..stream.len())
            .map(|i| {
                if i % 2 == 0 {
                    Voltage::ZERO
                } else {
                    Voltage::from_v(1.0)
                }
            })
            .collect();
        let out = model.transform_with_vctrls(&stream, &vctrls);
        let seq = vardelay_measure::delay_sequence(&stream, &out).unwrap();
        assert!((seq[1] - seq[0]).as_ps() > 15.0); // 40 vs 20 ps
    }

    #[test]
    fn measured_table_is_thread_count_invariant() {
        let build = |_v: Voltage| -> Box<dyn AnalogBlock + Send> {
            Box::new(TransmissionLine::new(Time::from_ps(21.0)))
        };
        let vctrls = [Voltage::ZERO, Voltage::from_v(0.7), Voltage::from_v(1.5)];
        let intervals = [Time::from_ps(400.0), Time::from_ps(800.0)];
        let render = RenderConfig::default_source();
        let serial =
            measure_delay_table_with(Runner::serial(), &build, &vctrls, &intervals, &render);
        for threads in [2, 4, 8] {
            let parallel = measure_delay_table_with(
                Runner::new(threads),
                &build,
                &vctrls,
                &intervals,
                &render,
            );
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn cached_table_matches_uncached_and_hits_on_repeat() {
        let _counters = counter_lock();
        let build = |_v: Voltage| -> Box<dyn AnalogBlock + Send> {
            Box::new(TransmissionLine::new(Time::from_ps(11.0)))
        };
        let vctrls = [Voltage::ZERO, Voltage::from_v(1.0)];
        let intervals = [Time::from_ps(600.0)];
        let render = RenderConfig::default_source();
        // A key private to this test so parallel tests cannot collide.
        let key = 0xc0de_cafe_0000_0001;
        let uncached = measure_delay_table(&build, &vctrls, &intervals, &render);
        let first = measure_delay_table_cached(key, &build, &vctrls, &intervals, &render);
        assert_eq!(first, uncached);
        let (hits_before, _) = characterization_cache_stats();
        let second = measure_delay_table_cached(key, &build, &vctrls, &intervals, &render);
        assert_eq!(second, first);
        if cache_enabled() {
            let (hits_after, _) = characterization_cache_stats();
            assert!(hits_after > hits_before, "repeat lookup should hit");
        }
    }

    #[test]
    fn cache_distinguishes_grids_and_keys() {
        let _counters = counter_lock();
        let build = |_v: Voltage| -> Box<dyn AnalogBlock + Send> {
            Box::new(TransmissionLine::new(Time::from_ps(5.0)))
        };
        let render = RenderConfig::default_source();
        let key = 0xc0de_cafe_0000_0002;
        let a = measure_delay_table_cached(
            key,
            &build,
            &[Voltage::ZERO],
            &[Time::from_ps(500.0)],
            &render,
        );
        // Same key, different grid → different cache entry, correct grid out.
        let b = measure_delay_table_cached(
            key,
            &build,
            &[Voltage::ZERO],
            &[Time::from_ps(900.0)],
            &render,
        );
        assert_ne!(a.intervals(), b.intervals());
    }

    /// The cache-stampede regression test (ISSUE 2): two threads missing
    /// on the same key must produce **one** measurement and **one**
    /// counted miss; the loser waits for the winner's table instead of
    /// re-running the full `vctrls × intervals` sweep.
    ///
    /// The barrier forces the race deterministically: the leader's build
    /// closure blocks on the barrier *inside* the single-flight slot, and
    /// the second thread only starts its lookup once the barrier has
    /// released — i.e. provably while the first measurement is still in
    /// flight.
    #[test]
    fn racing_identical_keys_measure_once_and_count_one_miss() {
        if !cache_enabled() {
            return; // VARDELAY_NO_CACHE=1: nothing to single-flight.
        }
        let _counters = counter_lock();
        let key = 0xc0de_cafe_0000_0003;
        let build_calls = std::sync::atomic::AtomicU64::new(0);
        let barrier = std::sync::Barrier::new(2);
        let vctrls = [Voltage::ZERO];
        let intervals = [Time::from_ps(700.0)];
        let render = RenderConfig::default_source();

        let leader_build = |_v: Voltage| -> Box<dyn AnalogBlock + Send> {
            barrier.wait();
            // Hold the measurement in flight long enough for the second
            // thread to reach the cache and block on the slot.
            std::thread::sleep(std::time::Duration::from_millis(200));
            build_calls.fetch_add(1, Ordering::Relaxed);
            Box::new(TransmissionLine::new(Time::from_ps(17.0)))
        };
        let racer_build = |_v: Voltage| -> Box<dyn AnalogBlock + Send> {
            build_calls.fetch_add(1, Ordering::Relaxed);
            Box::new(TransmissionLine::new(Time::from_ps(17.0)))
        };

        let (hits0, misses0) = characterization_cache_stats();
        let waits0 = characterization_single_flight_waits();
        let (a, b) = std::thread::scope(|scope| {
            let leader = scope.spawn(|| {
                measure_delay_table_cached(key, &leader_build, &vctrls, &intervals, &render)
            });
            let racer = scope.spawn(|| {
                // Released exactly when the leader is inside its build
                // closure, i.e. mid-measurement.
                barrier.wait();
                measure_delay_table_cached(key, &racer_build, &vctrls, &intervals, &render)
            });
            (leader.join().unwrap(), racer.join().unwrap())
        });

        assert_eq!(a, b, "racers must observe the same table");
        assert_eq!(
            build_calls.load(Ordering::Relaxed),
            1,
            "exactly one measurement may run for one key"
        );
        let (hits1, misses1) = characterization_cache_stats();
        assert_eq!(misses1 - misses0, 1, "exactly one miss for the race");
        // The racer either blocked on the in-flight measurement (the
        // expected path) or — if wildly descheduled — arrived after
        // completion and counted a plain hit; both prove no stampede.
        let waited = characterization_single_flight_waits() - waits0;
        let hit = hits1 - hits0;
        assert_eq!(waited + hit, 1, "waits {waited} hits {hit}");

        // A later lookup on the same key is a plain hit.
        let again = measure_delay_table_cached(key, &racer_build, &vctrls, &intervals, &render);
        assert_eq!(again, a);
        assert_eq!(characterization_cache_stats().1, misses1, "no extra miss");
        assert_eq!(build_calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn table_grid_validated() {
        let _ = DelayTable::new(
            vec![Voltage::from_v(1.0), Voltage::from_v(0.0)],
            vec![Time::from_ps(1.0)],
            vec![vec![Time::ZERO], vec![Time::ZERO]],
        );
    }
}
