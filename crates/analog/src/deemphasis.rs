//! A transmit de-emphasis (2-tap FFE) driver.
//!
//! The transmitter-side counterpart of the receiver [`crate::Ctle`]:
//! after the first bit of a run, the driver reduces its swing by the
//! de-emphasis ratio, pre-distorting the launched waveform so a lossy
//! channel receives flat-looking data. PCIe Gen1/2 uses −3.5 dB / −6 dB
//! presets of exactly this shape.

use crate::block::{AnalogBlock, EdgeTransform};
use vardelay_siggen::EdgeStream;
use vardelay_units::Time;
use vardelay_waveform::Waveform;

/// A 2-tap FIR de-emphasis driver.
///
/// The output is `x[n] − d·x[n−UI]` normalized so the transition
/// (first-bit) amplitude is preserved; steady-state levels drop by the
/// de-emphasis factor.
///
/// # Examples
///
/// ```
/// use vardelay_analog::DeEmphasis;
/// use vardelay_units::Time;
///
/// let drv = DeEmphasis::new(Time::from_ps(156.25), 3.5);
/// assert!((drv.de_emphasis_db() - 3.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeEmphasis {
    ui: Time,
    de_emphasis_db: f64,
}

impl DeEmphasis {
    /// Creates a driver for signals with unit interval `ui` and the given
    /// de-emphasis in dB (steady-state level relative to the transition
    /// level).
    ///
    /// # Panics
    ///
    /// Panics if `ui` is not positive or the de-emphasis is negative or
    /// ≥ 12 dB (beyond any practical driver).
    pub fn new(ui: Time, de_emphasis_db: f64) -> Self {
        assert!(ui > Time::ZERO, "unit interval must be positive");
        assert!(
            (0.0..12.0).contains(&de_emphasis_db),
            "de-emphasis must be in [0, 12) dB"
        );
        DeEmphasis { ui, de_emphasis_db }
    }

    /// The PCIe Gen1 −3.5 dB preset.
    pub fn pcie_3p5db(ui: Time) -> Self {
        Self::new(ui, 3.5)
    }

    /// The configured de-emphasis in dB.
    pub fn de_emphasis_db(&self) -> f64 {
        self.de_emphasis_db
    }

    /// The post-cursor tap weight `d` with the transition amplitude
    /// normalized to 1: steady-state = `(1−d)/(1+d)` =
    /// `10^(−dB/20)`.
    pub fn tap_weight(&self) -> f64 {
        let ratio = 10f64.powf(-self.de_emphasis_db / 20.0);
        (1.0 - ratio) / (1.0 + ratio)
    }
}

impl AnalogBlock for DeEmphasis {
    fn process(&mut self, input: &Waveform) -> Waveform {
        let d = self.tap_weight();
        let gain = 1.0 / (1.0 + d); // normalize the transition amplitude
        let lag = self.ui;
        let samples: Vec<f64> = (0..input.len())
            .map(|i| {
                let t = input.time_of(i);
                let x = input.samples()[i];
                let x_prev = input.value_at(t - lag);
                // Transition swing = gain·(1+d)·A = A (normalized); runs
                // settle to gain·(1−d)·A = the de-emphasized level.
                gain * (x - d * x_prev)
            })
            .collect();
        Waveform::new(input.t0(), input.dt(), samples)
    }

    fn name(&self) -> &str {
        "de-emphasis"
    }
}

impl EdgeTransform for DeEmphasis {
    /// In the edge domain a de-emphasis driver leaves crossing times
    /// untouched (the FIR is symmetric about the transition): identity.
    fn transform(&mut self, input: &EdgeStream) -> EdgeStream {
        input.clone()
    }

    fn name(&self) -> &str {
        "de-emphasis"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lossy::LossyChannel;
    use vardelay_measure::eye_metrics;
    use vardelay_siggen::BitPattern;
    use vardelay_units::BitRate;
    use vardelay_waveform::{EyeDiagram, RenderConfig};

    fn render(rate: BitRate, bits: usize) -> Waveform {
        let stream = EdgeStream::nrz(&BitPattern::prbs7(1, bits), rate);
        Waveform::render(&stream, &RenderConfig::default_source())
    }

    fn eye_of(wf: &Waveform, ui: Time) -> EyeDiagram {
        let mut eye = EyeDiagram::new(ui, 96, 48, 0.6);
        eye.add_waveform(wf);
        eye
    }

    #[test]
    fn tap_weight_conversion() {
        let drv = DeEmphasis::new(Time::from_ps(100.0), 6.0);
        // 6 dB: ratio 0.501 → d = 0.332.
        assert!((drv.tap_weight() - 0.332).abs() < 0.002);
        assert_eq!(DeEmphasis::new(Time::from_ps(100.0), 0.0).tap_weight(), 0.0);
    }

    #[test]
    fn long_runs_settle_to_the_deemphasized_level() {
        let rate = BitRate::from_gbps(6.4);
        let stream = EdgeStream::nrz(&BitPattern::from_str("0111111100000000").unwrap(), rate);
        let wf = Waveform::render(&stream, &RenderConfig::default_source());
        let mut drv = DeEmphasis::new(rate.bit_period(), 3.5);
        let out = drv.process(&wf);
        // Transition bit keeps the full ±400 mV; the run settles to
        // 400·10^(-3.5/20) ≈ 267 mV.
        let peak_early = out.value_at(Time::from_ps(156.25 * 1.5)).abs();
        let settled = out.value_at(Time::from_ps(156.25 * 7.5)).abs();
        assert!(peak_early > 0.37, "transition {peak_early}");
        assert!((settled - 0.267).abs() < 0.02, "settled {settled}");
    }

    #[test]
    fn matched_deemphasis_cuts_channel_isi() {
        // A severe channel (2.5 GHz two-pole at 6.4 Gb/s) shows the FFE
        // at its best: ~20 ps of ISI-driven crossing spread collapses to
        // a few ps with the matched 3.5 dB preset.
        use vardelay_units::Frequency;
        let rate = BitRate::from_gbps(6.4);
        let wf = render(rate, 400);
        let channel = || LossyChannel::new(Time::from_ns(1.0), 2.0, Frequency::from_ghz(2.5));

        let plain = channel().process(&wf);
        let mut drv = DeEmphasis::pcie_3p5db(rate.bit_period());
        let shaped = channel().process(&drv.process(&wf));

        let before = eye_metrics(&eye_of(&plain, rate.bit_period())).expect("edges");
        let after = eye_metrics(&eye_of(&shaped, rate.bit_period())).expect("edges");
        assert!(
            after.crossing_peak_to_peak < before.crossing_peak_to_peak * 0.5,
            "pp {} -> {}",
            before.crossing_peak_to_peak,
            after.crossing_peak_to_peak
        );
        assert!(after.height >= before.height, "{:?} vs {:?}", before, after);
    }

    #[test]
    fn over_equalization_hurts() {
        // De-emphasis past the channel's deficit re-opens nothing and
        // injects its own ISI — equalization has an optimum.
        use vardelay_units::Frequency;
        let rate = BitRate::from_gbps(6.4);
        let wf = render(rate, 400);
        let channel = || LossyChannel::new(Time::from_ns(1.0), 2.0, Frequency::from_ghz(2.5));
        let pp_at = |db: f64| {
            let mut drv = DeEmphasis::new(rate.bit_period(), db);
            let out = channel().process(&drv.process(&wf));
            eye_metrics(&eye_of(&out, rate.bit_period()))
                .expect("edges")
                .crossing_peak_to_peak
        };
        let matched = pp_at(3.5);
        let over = pp_at(6.5);
        assert!(over > matched * 2.0, "matched {matched} vs over {over}");
    }

    #[test]
    #[should_panic(expected = "de-emphasis")]
    fn absurd_deemphasis_rejected() {
        let _ = DeEmphasis::new(Time::from_ps(100.0), 15.0);
    }
}
