//! The block traits shared by all analog components.

use vardelay_siggen::EdgeStream;
use vardelay_waveform::Waveform;

/// A waveform-domain circuit block.
///
/// Blocks are stateful (noise generators advance their RNG streams) and
/// process one trace at a time. The output trace may have a different time
/// axis (propagation delay) but keeps the input's sample period.
pub trait AnalogBlock {
    /// Transforms an input trace into the block's output trace.
    fn process(&mut self, input: &Waveform) -> Waveform;

    /// A short human-readable block name for chain diagnostics.
    fn name(&self) -> &str;
}

/// An edge-domain circuit block — the fast path for long captures.
pub trait EdgeTransform {
    /// Transforms an input edge stream into the block's output stream.
    fn transform(&mut self, input: &EdgeStream) -> EdgeStream;

    /// A short human-readable block name for chain diagnostics.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_units::Time;

    struct Passthrough;

    impl AnalogBlock for Passthrough {
        fn process(&mut self, input: &Waveform) -> Waveform {
            input.clone()
        }
        fn name(&self) -> &str {
            "passthrough"
        }
    }

    impl EdgeTransform for Passthrough {
        fn transform(&mut self, input: &EdgeStream) -> EdgeStream {
            input.clone()
        }
        fn name(&self) -> &str {
            "passthrough"
        }
    }

    #[test]
    fn traits_are_object_safe() {
        let mut wf_block: Box<dyn AnalogBlock> = Box::new(Passthrough);
        let mut edge_block: Box<dyn EdgeTransform> = Box::new(Passthrough);
        let wf = Waveform::zeros(Time::ZERO, Time::from_ps(1.0), 4);
        assert_eq!(wf_block.process(&wf).len(), 4);
        assert_eq!(AnalogBlock::name(&*wf_block), "passthrough");
        let s = EdgeStream::default();
        assert!(edge_block.transform(&s).is_empty());
    }
}
