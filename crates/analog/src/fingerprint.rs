//! Stable structural fingerprints for cache keys.
//!
//! The characterization cache (see [`crate::characterize`]) must key a
//! measured [`crate::DelayTable`] by *everything that influenced the
//! measurement*: the model configuration, the grids and the render
//! settings. [`Fingerprint`] folds those into a 64-bit FNV-1a hash of
//! the exact bit patterns — two configurations collide only if every
//! folded value is bit-identical, which is precisely the condition under
//! which the measured table is reusable.

/// An incremental FNV-1a hasher over typed values.
///
/// # Examples
///
/// ```
/// use vardelay_analog::Fingerprint;
///
/// let mut a = Fingerprint::new();
/// a.push_f64(1.5).push_u64(4);
/// let mut b = Fingerprint::new();
/// b.push_f64(1.5).push_u64(4);
/// assert_eq!(a.finish(), b.finish());
/// b.push_f64(0.0);
/// assert_ne!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fingerprint {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fingerprint { state: FNV_OFFSET }
    }

    fn push_byte(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Folds a raw 64-bit value.
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        for b in v.to_le_bytes() {
            self.push_byte(b);
        }
        self
    }

    /// Folds a float by its exact bit pattern (so `-0.0 != 0.0` and NaN
    /// payloads are distinguished — the cache must never alias "almost
    /// equal" configurations).
    pub fn push_f64(&mut self, v: f64) -> &mut Self {
        self.push_u64(v.to_bits())
    }

    /// Folds a length/count.
    pub fn push_usize(&mut self, v: usize) -> &mut Self {
        self.push_u64(v as u64)
    }

    /// Folds a string (length-prefixed, so concatenations cannot alias).
    pub fn push_str(&mut self, s: &str) -> &mut Self {
        self.push_usize(s.len());
        for b in s.bytes() {
            self.push_byte(b);
        }
        self
    }

    /// Folds a slice of floats (length-prefixed).
    pub fn push_f64_slice(&mut self, vs: &[f64]) -> &mut Self {
        self.push_usize(vs.len());
        for &v in vs {
            self.push_f64(v);
        }
        self
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_matters() {
        let mut a = Fingerprint::new();
        a.push_f64(1.0).push_f64(2.0);
        let mut b = Fingerprint::new();
        b.push_f64(2.0).push_f64(1.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn length_prefix_prevents_concatenation_aliasing() {
        let mut a = Fingerprint::new();
        a.push_f64_slice(&[1.0]).push_f64_slice(&[2.0, 3.0]);
        let mut b = Fingerprint::new();
        b.push_f64_slice(&[1.0, 2.0]).push_f64_slice(&[3.0]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn negative_zero_is_distinct() {
        let mut a = Fingerprint::new();
        a.push_f64(0.0);
        let mut b = Fingerprint::new();
        b.push_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn strings_fold_with_length() {
        let mut a = Fingerprint::new();
        a.push_str("ab").push_str("c");
        let mut b = Fingerprint::new();
        b.push_str("a").push_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
