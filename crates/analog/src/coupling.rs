//! AC coupling — the noise-injection path onto `Vctrl`.

use crate::block::AnalogBlock;
use vardelay_units::{Frequency, Time, Voltage};
use vardelay_waveform::{RcHighPass, Waveform};

/// An AC-coupling network (series capacitor into the `Vctrl` node): a
/// first-order high-pass with a coupling gain, re-biased onto a DC
/// operating point.
///
/// The paper's §5 modification is exactly this: "AC-coupling a voltage
/// noise source to the Vctrl signal".
///
/// # Examples
///
/// ```
/// use vardelay_analog::AcCoupling;
/// use vardelay_units::{Frequency, Voltage};
///
/// let c = AcCoupling::new(Frequency::from_mhz(1.0), Voltage::from_v(0.75));
/// assert!((c.bias().as_v() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AcCoupling {
    highpass: RcHighPass,
    bias: Voltage,
    gain: f64,
}

impl AcCoupling {
    /// Creates a coupling network with the given high-pass corner and DC
    /// bias (the static `Vctrl` operating point), unity coupling gain.
    pub fn new(corner: Frequency, bias: Voltage) -> Self {
        AcCoupling {
            highpass: RcHighPass::with_corner(corner),
            bias,
            gain: 1.0,
        }
    }

    /// Sets the coupling gain (attenuation of the injection network),
    /// builder style.
    ///
    /// # Panics
    ///
    /// Panics if `gain` is negative.
    pub fn with_gain(mut self, gain: f64) -> Self {
        assert!(gain >= 0.0, "coupling gain must be non-negative");
        self.gain = gain;
        self
    }

    /// The DC bias restored at the output.
    pub fn bias(&self) -> Voltage {
        self.bias
    }

    /// Reprograms the DC bias.
    pub fn set_bias(&mut self, bias: Voltage) {
        self.bias = bias;
    }

    /// Couples a noise trace onto the bias: returns
    /// `bias + gain·highpass(noise)`.
    pub fn couple(&self, noise: &Waveform) -> Waveform {
        let mut out = noise.clone();
        self.highpass.apply(&mut out);
        out.scale(self.gain);
        out.offset(self.bias);
        out
    }

    /// Time constant of the high-pass section.
    pub fn tau(&self) -> Time {
        self.highpass.tau()
    }
}

impl AnalogBlock for AcCoupling {
    fn process(&mut self, input: &Waveform) -> Waveform {
        self.couple(input)
    }

    fn name(&self) -> &str {
        "ac-coupling"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_replaced_by_bias() {
        // A constant 2 V input carries no AC: output settles to the bias.
        let c = AcCoupling::new(Frequency::from_ghz(1.0), Voltage::from_v(0.75));
        let input = Waveform::new(Time::ZERO, Time::from_ps(1.0), vec![2.0; 5000]);
        let out = c.couple(&input);
        assert!((out.samples()[4999] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn fast_noise_passes_on_top_of_bias() {
        let c = AcCoupling::new(Frequency::from_mhz(1.0), Voltage::from_v(0.75));
        // A fast square wave well above the corner passes nearly unattenuated.
        let samples: Vec<f64> = (0..1000)
            .map(|i| if i % 10 < 5 { 0.1 } else { -0.1 })
            .collect();
        let input = Waveform::new(Time::ZERO, Time::from_ps(100.0), samples);
        let out = c.couple(&input);
        let (lo, hi) = out.extremes().unwrap();
        // The high-pass references its starting value as DC, so check the
        // preserved swing (pk-pk), not absolute rails.
        assert!(hi - lo > 0.18, "pp {}", hi - lo);
        // The trace stays centred near the bias.
        let mid = (hi + lo) / 2.0;
        assert!((mid - 0.75).abs() < 0.15, "mid {mid}");
    }

    #[test]
    fn gain_attenuates() {
        let c = AcCoupling::new(Frequency::from_mhz(1.0), Voltage::ZERO).with_gain(0.5);
        let samples: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.2 } else { -0.2 })
            .collect();
        let input = Waveform::new(Time::ZERO, Time::from_ps(100.0), samples);
        let out = c.couple(&input);
        let (lo, hi) = out.extremes().unwrap();
        // Full-gain pk-pk would be 0.4; half gain passes 0.2.
        assert!((hi - lo - 0.2).abs() < 0.03, "pp {}", hi - lo);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn gain_validated() {
        let _ = AcCoupling::new(Frequency::from_mhz(1.0), Voltage::ZERO).with_gain(-1.0);
    }
}
