//! The shared differential-buffer signal path.
//!
//! Every active component in the prototype (variable-gain stages, output
//! stage, fanout, mux) shares one behavioral path:
//!
//! ```text
//! in ──► [+noise] ──► limiting gm (tanh) ──► slew limit ──► one-pole ──► out
//! ```
//!
//! The limiting stage regenerates logic levels at the programmed swing;
//! the slew limiter gives the amplitude-proportional crossing delay that
//! the whole paper exploits; the one-pole models finite bandwidth, which
//! both compresses the swing at high toggle rates (the Fig. 15 range
//! roll-off) and produces inter-symbol interference; and the input-referred
//! noise converts to random jitter at each crossing.

use crate::block::AnalogBlock;
use vardelay_siggen::SplitMix64;
use vardelay_units::{Frequency, Time, Voltage};
use vardelay_waveform::{pool, OnePole, SlewLimiter, Waveform};

/// Per-sample amplitude program for the shared signal path: either a
/// constant half-swing (the plain [`AnalogBlock::process`] path, which
/// needs no buffer at all) or a borrowed per-sample trace (the modulated
/// jitter-injection path).
enum Drive<'a> {
    Const(f64),
    PerSample(&'a [f64]),
}

impl Drive<'_> {
    #[inline]
    fn at(&self, i: usize) -> f64 {
        match self {
            Drive::Const(half) => *half,
            Drive::PerSample(halves) => halves[i],
        }
    }

    fn first(&self) -> f64 {
        match self {
            Drive::Const(half) => *half,
            Drive::PerSample(halves) => halves.first().copied().unwrap_or(0.0),
        }
    }
}

/// Electrical parameters of a buffer path.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferCoreConfig {
    /// Differential output swing (rail-to-rail, i.e. `±swing/2`).
    pub swing: Voltage,
    /// Input linear range of the limiting stage: inputs beyond `±v_lin/2`
    /// saturate. Small values = hard limiting = strong regeneration.
    pub v_lin: Voltage,
    /// Output slew rate in volts per second.
    pub slew_v_per_s: f64,
    /// −3 dB bandwidth of the output pole.
    pub bandwidth: Frequency,
    /// Input-referred RMS voltage noise (converts to RJ at crossings).
    pub noise_rms: Voltage,
    /// Fixed propagation delay (package, interconnect, bias).
    pub prop_delay: Time,
    /// Gain-envelope settling time constant: after every switching event
    /// the stage's current-steering gain control re-develops the
    /// programmed swing with this time constant. When toggles arrive
    /// faster than the envelope settles, the *amplitude-dependent* part of
    /// the propagation delay compresses — the mechanism behind the
    /// paper's Fig. 15 range roll-off. Set at or below the sample period
    /// to disable (fixed-gain buffers).
    pub envelope_tau: Time,
    /// The swing the output snaps to immediately after a switching event,
    /// before the envelope re-develops (amplitude-independent floor).
    pub envelope_floor: Voltage,
}

impl BufferCoreConfig {
    /// A clean full-swing ECL-style buffer comparable to the commercial
    /// parts in the prototype: 800 mV swing, 9 GHz bandwidth,
    /// 0.033 V/ps slew, ~20 ps fixed delay.
    pub fn ecl_default() -> Self {
        BufferCoreConfig {
            swing: Voltage::from_mv(800.0),
            v_lin: Voltage::from_mv(60.0),
            slew_v_per_s: 0.033e12,
            bandwidth: Frequency::from_ghz(9.0),
            noise_rms: Voltage::from_mv(1.2),
            prop_delay: Time::from_ps(20.0),
            envelope_tau: Time::ZERO, // fixed-gain: no envelope dynamics
            envelope_floor: Voltage::from_mv(40.0),
        }
    }

    /// Validates parameter positivity.
    ///
    /// # Panics
    ///
    /// Panics if any physical parameter is non-positive (noise may be zero).
    pub fn validate(&self) {
        assert!(self.swing > Voltage::ZERO, "swing must be positive");
        assert!(self.v_lin > Voltage::ZERO, "linear range must be positive");
        assert!(self.slew_v_per_s > 0.0, "slew rate must be positive");
        assert!(
            self.bandwidth > Frequency::ZERO,
            "bandwidth must be positive"
        );
        assert!(
            self.noise_rms >= Voltage::ZERO,
            "noise must be non-negative"
        );
        assert!(self.prop_delay >= Time::ZERO, "delay must be non-negative");
        assert!(
            self.envelope_tau >= Time::ZERO,
            "envelope time constant must be non-negative"
        );
        assert!(
            self.envelope_floor > Voltage::ZERO,
            "envelope floor must be positive"
        );
    }
}

/// The shared buffer signal path with a programmable output swing.
#[derive(Debug, Clone)]
pub struct BufferCore {
    config: BufferCoreConfig,
    /// Current output swing target; [`crate::VgaBuffer`] retunes this from
    /// `Vctrl`, fixed-gain stages leave it at `config.swing`.
    amplitude: Voltage,
    rng: SplitMix64,
    label: String,
}

impl BufferCore {
    /// Creates a buffer path with the given parameters and noise seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`BufferCoreConfig::validate`]).
    pub fn new(label: &str, config: BufferCoreConfig, seed: u64) -> Self {
        config.validate();
        let amplitude = config.swing;
        BufferCore {
            config,
            amplitude,
            rng: SplitMix64::new(seed),
            label: label.to_owned(),
        }
    }

    /// The electrical configuration.
    pub fn config(&self) -> &BufferCoreConfig {
        &self.config
    }

    /// Current output swing.
    pub fn amplitude(&self) -> Voltage {
        self.amplitude
    }

    /// Reprograms the output swing (clamped to be positive).
    ///
    /// # Panics
    ///
    /// Panics if `amplitude` is not strictly positive.
    pub fn set_amplitude(&mut self, amplitude: Voltage) {
        assert!(amplitude > Voltage::ZERO, "amplitude must be positive");
        self.amplitude = amplitude;
    }
}

impl BufferCore {
    /// Processes with a per-sample amplitude program: `amplitude` is a
    /// voltage trace (full differential swing versus time) sampled onto
    /// the input grid — the waveform-domain model of the jitter-injection
    /// path, where `Vctrl` moves while data flows.
    ///
    /// Amplitudes are clamped to at least 1 mV so the limiter stays
    /// well-defined.
    pub fn process_modulated(&mut self, input: &Waveform, amplitude: &Waveform) -> Waveform {
        let mut halves = pool::take(input.len());
        for i in 0..input.len() {
            halves.push((amplitude.value_at(input.time_of(i)) / 2.0).max(0.0005));
        }
        let out = self.process_inner(input, Drive::PerSample(&halves));
        pool::recycle(halves);
        out
    }

    fn process_inner(&mut self, input: &Waveform, drive: Drive<'_>) -> Waveform {
        let v_lin = self.config.v_lin.as_v();
        let noise = self.config.noise_rms.as_v();

        let mut out = Waveform::new(input.t0(), input.dt(), pool::take_copy(input.samples()));
        // Input-referred noise: white Gaussian per sample would have
        // unbounded bandwidth, so draw it band-limited by reusing the
        // output pole's time constant via an exponential-smoothing walk.
        if noise > 0.0 {
            let tau = self.config.bandwidth.one_pole_tau();
            let beta = (-(input.dt() / tau)).exp();
            // Scale the innovation so the stationary RMS equals noise_rms.
            let innov = noise * (1.0 - beta * beta).sqrt();
            let mut n = self.rng.gaussian() * noise;
            for s in out.samples_mut() {
                *s += n;
                n = beta * n + innov * self.rng.gaussian();
            }
        }
        // Limiting transconductor: regenerate at the programmed swing.
        // The envelope models the gain control re-developing after every
        // switching event: the output snaps to ±floor, then grows toward
        // ±swing/2 with tau_env. With tau_env at/below the sample period
        // (fixed-gain stages) the envelope is always settled.
        let tau_env = self.config.envelope_tau;
        if tau_env > input.dt() {
            let alpha = 1.0 - (-(input.dt() / tau_env)).exp();
            let floor_half = self.config.envelope_floor.as_v() / 2.0;
            let mut env = drive.first();
            let mut prev_positive = out.samples().first().is_some_and(|&v| v >= 0.0);
            for (i, s) in out.samples_mut().iter_mut().enumerate() {
                let half = drive.at(i);
                let u = (2.0 * *s / v_lin).tanh();
                let positive = u >= 0.0;
                if positive != prev_positive {
                    env = floor_half.min(half);
                    prev_positive = positive;
                } else {
                    env += (half - env) * alpha;
                }
                *s = u * env;
            }
        } else {
            for (i, s) in out.samples_mut().iter_mut().enumerate() {
                *s = drive.at(i) * (2.0 * *s / v_lin).tanh();
            }
        }
        // Finite slew of the output emitter followers.
        SlewLimiter::new(self.config.slew_v_per_s).apply(&mut out);
        // Output pole.
        OnePole::with_corner(self.config.bandwidth).apply(&mut out);
        // Fixed propagation delay.
        out.shift(self.config.prop_delay);
        out
    }
}

impl AnalogBlock for BufferCore {
    fn process(&mut self, input: &Waveform) -> Waveform {
        self.process_inner(input, Drive::Const(self.amplitude.as_v() / 2.0))
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_measure::mean_delay;
    use vardelay_siggen::{BitPattern, EdgeStream};
    use vardelay_units::BitRate;
    use vardelay_waveform::{to_edge_stream, RenderConfig};

    fn quiet(mut cfg: BufferCoreConfig) -> BufferCoreConfig {
        cfg.noise_rms = Voltage::ZERO;
        cfg
    }

    fn process_stream(
        core: &mut BufferCore,
        rate: BitRate,
        bits: usize,
    ) -> (EdgeStream, EdgeStream) {
        let stream = EdgeStream::nrz(&BitPattern::clock(bits), rate);
        let wf = Waveform::render(&stream, &RenderConfig::default_source());
        let out = core.process(&wf);
        let out_stream = to_edge_stream(&out, 0.0, rate.bit_period());
        (stream, out_stream)
    }

    #[test]
    fn regenerates_full_swing() {
        let mut core = BufferCore::new("b", quiet(BufferCoreConfig::ecl_default()), 1);
        let (_, out) = process_stream(&mut core, BitRate::from_gbps(1.0), 16);
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn larger_amplitude_means_longer_delay() {
        // The paper's core effect: delay grows with programmed swing.
        let cfg = quiet(BufferCoreConfig::ecl_default());
        let rate = BitRate::from_gbps(1.0);
        let stream = EdgeStream::nrz(&BitPattern::clock(16), rate);
        let wf = Waveform::render(&stream, &RenderConfig::default_source());

        let mut delays = Vec::new();
        for mv in [100.0, 400.0, 750.0] {
            let mut core = BufferCore::new("b", cfg.clone(), 1);
            core.set_amplitude(Voltage::from_mv(mv));
            let out = core.process(&wf);
            let out_stream = to_edge_stream(&out, 0.0, rate.bit_period());
            delays.push(mean_delay(&stream, &out_stream).unwrap());
        }
        assert!(delays[1] > delays[0], "{:?}", delays);
        assert!(delays[2] > delays[1], "{:?}", delays);
        // Expected range ~ (0.75-0.1)/(2*0.033) ≈ 9.8 ps per stage.
        let range = (delays[2] - delays[0]).as_ps();
        assert!((5.0..20.0).contains(&range), "range {range} ps");
    }

    #[test]
    fn noise_produces_crossing_jitter() {
        let mut cfg = BufferCoreConfig::ecl_default();
        cfg.noise_rms = Voltage::from_mv(8.0);
        let rate = BitRate::from_gbps(1.0);
        let mut core = BufferCore::new("b", cfg, 42);
        let (input, out) = process_stream(&mut core, rate, 400);
        let seq = vardelay_measure::delay_sequence(&input, &out).unwrap();
        let stats = vardelay_measure::JitterStats::from_times(&seq).unwrap();
        assert!(
            stats.rms > Time::from_fs(50.0),
            "noise produced no jitter: {stats}"
        );
        assert!(stats.rms < Time::from_ps(5.0), "implausibly large jitter");
    }

    #[test]
    fn bandwidth_compresses_swing_at_high_rate() {
        let mut cfg = quiet(BufferCoreConfig::ecl_default());
        cfg.bandwidth = Frequency::from_ghz(4.0);
        let mut core = BufferCore::new("b", cfg, 1);
        let stream = EdgeStream::rz_clock(Frequency::from_ghz(6.4), 40);
        let wf = Waveform::render(&stream, &RenderConfig::default_source());
        let out = core.process(&wf);
        let (lo, hi) = out.extremes().unwrap();
        // 800 mV programmed swing cannot settle within a 78 ps pulse.
        assert!(hi < 0.4 && lo > -0.4, "no compression: {lo}..{hi}");
        assert!(hi > 0.05, "signal vanished: {lo}..{hi}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut cfg = BufferCoreConfig::ecl_default();
        cfg.noise_rms = Voltage::from_mv(5.0);
        let wf = Waveform::render(
            &EdgeStream::nrz(&BitPattern::clock(10), BitRate::from_gbps(1.0)),
            &RenderConfig::default_source(),
        );
        let a = BufferCore::new("b", cfg.clone(), 7).process(&wf);
        let b = BufferCore::new("b", cfg, 7).process(&wf);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn amplitude_validated() {
        let mut core = BufferCore::new("b", BufferCoreConfig::ecl_default(), 1);
        core.set_amplitude(Voltage::ZERO);
    }
}
