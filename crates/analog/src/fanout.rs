//! The 1:4 fanout buffer.

use crate::block::AnalogBlock;
use crate::buffer_core::{BufferCore, BufferCoreConfig};
use vardelay_units::Time;
use vardelay_waveform::Waveform;

/// A 1:N fanout buffer: one regenerating input stage feeding N outputs,
/// each with its own small static skew — the front of the coarse delay
/// section (paper Fig. 8 uses 1:4).
///
/// # Examples
///
/// ```
/// use vardelay_analog::FanoutBuffer;
/// use vardelay_units::Time;
///
/// let fan = FanoutBuffer::ecl(4, 7);
/// assert_eq!(fan.outputs(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct FanoutBuffer {
    core: BufferCore,
    output_skews: Vec<Time>,
}

impl FanoutBuffer {
    /// Creates a fanout with `outputs` branches on the given core path and
    /// zero output skews.
    ///
    /// # Panics
    ///
    /// Panics if `outputs == 0` or the configuration is invalid.
    pub fn new(outputs: usize, config: BufferCoreConfig, seed: u64) -> Self {
        assert!(outputs > 0, "fanout needs at least one output");
        FanoutBuffer {
            core: BufferCore::new("fanout", config, seed),
            output_skews: vec![Time::ZERO; outputs],
        }
    }

    /// Creates a default ECL-style fanout.
    pub fn ecl(outputs: usize, seed: u64) -> Self {
        Self::new(outputs, BufferCoreConfig::ecl_default(), seed)
    }

    /// Sets per-output static skews (e.g. routing mismatch), builder style.
    ///
    /// # Panics
    ///
    /// Panics if `skews.len()` differs from the number of outputs.
    pub fn with_output_skews(mut self, skews: Vec<Time>) -> Self {
        assert_eq!(
            skews.len(),
            self.output_skews.len(),
            "one skew per output required"
        );
        self.output_skews = skews;
        self
    }

    /// Number of output branches.
    pub fn outputs(&self) -> usize {
        self.output_skews.len()
    }

    /// Processes the input once through the shared stage and returns all
    /// branch outputs (identical up to their static skews).
    pub fn fan_out(&mut self, input: &Waveform) -> Vec<Waveform> {
        let regenerated = self.core.process(input);
        self.output_skews
            .iter()
            .map(|&skew| regenerated.delayed(skew))
            .collect()
    }

    /// Fixed propagation delay of the shared stage.
    pub fn prop_delay(&self) -> Time {
        self.core.config().prop_delay
    }
}

impl AnalogBlock for FanoutBuffer {
    /// Processing a fanout as a single block yields branch 0.
    fn process(&mut self, input: &Waveform) -> Waveform {
        self.fan_out(input).swap_remove(0)
    }

    fn name(&self) -> &str {
        "fanout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_siggen::{BitPattern, EdgeStream};
    use vardelay_units::{BitRate, Voltage};
    use vardelay_waveform::{to_edge_stream, RenderConfig};

    fn quiet() -> BufferCoreConfig {
        let mut cfg = BufferCoreConfig::ecl_default();
        cfg.noise_rms = Voltage::ZERO;
        cfg
    }

    #[test]
    fn branches_are_identical_without_skew() {
        let stream = EdgeStream::nrz(&BitPattern::clock(8), BitRate::from_gbps(1.0));
        let wf = Waveform::render(&stream, &RenderConfig::default_source());
        let mut fan = FanoutBuffer::new(4, quiet(), 1);
        let outs = fan.fan_out(&wf);
        assert_eq!(outs.len(), 4);
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[2], outs[3]);
    }

    #[test]
    fn skews_displace_branches() {
        let rate = BitRate::from_gbps(1.0);
        let stream = EdgeStream::nrz(&BitPattern::clock(8), rate);
        let wf = Waveform::render(&stream, &RenderConfig::default_source());
        let mut fan = FanoutBuffer::new(2, quiet(), 1)
            .with_output_skews(vec![Time::ZERO, Time::from_ps(5.0)]);
        let outs = fan.fan_out(&wf);
        let a = to_edge_stream(&outs[0], 0.0, rate.bit_period());
        let b = to_edge_stream(&outs[1], 0.0, rate.bit_period());
        let d = vardelay_measure::mean_delay(&a, &b).unwrap();
        assert!((d.as_ps() - 5.0).abs() < 0.2, "d {d}");
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn zero_outputs_rejected() {
        let _ = FanoutBuffer::new(0, quiet(), 1);
    }

    #[test]
    #[should_panic(expected = "one skew per output")]
    fn skew_count_validated() {
        let _ = FanoutBuffer::new(4, quiet(), 1).with_output_skews(vec![Time::ZERO]);
    }
}
