//! The 4:1 multiplexer — the coarse-tap selector.

use crate::block::AnalogBlock;
use crate::buffer_core::{BufferCore, BufferCoreConfig};
use vardelay_units::Time;
use vardelay_waveform::Waveform;

/// A 4:1 differential multiplexer: two select lines pick one of four
/// inputs, which is regenerated through a buffer stage (paper Fig. 8).
///
/// # Examples
///
/// ```
/// use vardelay_analog::Mux4;
///
/// let mut mux = Mux4::ecl(3);
/// mux.select(2).expect("tap index in range");
/// assert_eq!(mux.selected(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Mux4 {
    core: BufferCore,
    selected: usize,
    /// Residual coupling from unselected inputs (0.0 = ideal isolation).
    crosstalk: f64,
}

/// Error returned by [`Mux4::select`] for tap indices outside `0..4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectTapError {
    /// The rejected index.
    pub index: usize,
}

impl core::fmt::Display for SelectTapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "mux tap index {} out of range 0..4", self.index)
    }
}

impl std::error::Error for SelectTapError {}

impl Mux4 {
    /// Creates a mux with ideal isolation on the given core path.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: BufferCoreConfig, seed: u64) -> Self {
        Mux4 {
            core: BufferCore::new("mux4", config, seed),
            selected: 0,
            crosstalk: 0.0,
        }
    }

    /// Creates a default ECL-style mux.
    pub fn ecl(seed: u64) -> Self {
        Self::new(BufferCoreConfig::ecl_default(), seed)
    }

    /// Adds residual coupling from unselected inputs, builder style.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= fraction < 1`.
    pub fn with_crosstalk(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "crosstalk fraction must be in [0, 1)"
        );
        self.crosstalk = fraction;
        self
    }

    /// Selects input `index`.
    ///
    /// # Errors
    ///
    /// Returns [`SelectTapError`] if `index >= 4`.
    pub fn select(&mut self, index: usize) -> Result<(), SelectTapError> {
        if index >= 4 {
            return Err(SelectTapError { index });
        }
        self.selected = index;
        Ok(())
    }

    /// Currently selected input index.
    pub fn selected(&self) -> usize {
        self.selected
    }

    /// Passes the selected input (plus any crosstalk residue from the
    /// others) through the output stage.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not contain exactly four waveforms.
    pub fn mux(&mut self, inputs: &[Waveform]) -> Waveform {
        assert_eq!(inputs.len(), 4, "a 4:1 mux needs exactly four inputs");
        let mut picked = inputs[self.selected].clone();
        if self.crosstalk > 0.0 {
            for (i, other) in inputs.iter().enumerate() {
                if i != self.selected {
                    let mut leak = other.clone();
                    leak.scale(self.crosstalk);
                    picked.add(&leak);
                }
            }
        }
        self.core.process(&picked)
    }

    /// Fixed propagation delay of the output stage.
    pub fn prop_delay(&self) -> Time {
        self.core.config().prop_delay
    }
}

impl AnalogBlock for Mux4 {
    /// Processing as a single block treats the input as all four taps
    /// carrying the same signal.
    fn process(&mut self, input: &Waveform) -> Waveform {
        let inputs = [input.clone(), input.clone(), input.clone(), input.clone()];
        self.mux(&inputs)
    }

    fn name(&self) -> &str {
        "mux4"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_siggen::{BitPattern, EdgeStream};
    use vardelay_units::{BitRate, Voltage};
    use vardelay_waveform::{to_edge_stream, RenderConfig};

    fn quiet() -> BufferCoreConfig {
        let mut cfg = BufferCoreConfig::ecl_default();
        cfg.noise_rms = Voltage::ZERO;
        cfg
    }

    fn four_taps() -> (EdgeStream, Vec<Waveform>) {
        let rate = BitRate::from_gbps(1.0);
        let stream = EdgeStream::nrz(&BitPattern::clock(8), rate);
        let wf = Waveform::render(&stream, &RenderConfig::default_source());
        let taps = (0..4)
            .map(|i| wf.delayed(Time::from_ps(33.0 * i as f64)))
            .collect();
        (stream, taps)
    }

    #[test]
    fn selection_picks_the_right_tap() {
        let (stream, taps) = four_taps();
        let rate_ui = BitRate::from_gbps(1.0).bit_period();
        let mut mux = Mux4::new(quiet(), 1);
        let mut delays = Vec::new();
        for tap in 0..4 {
            mux.select(tap).unwrap();
            let out = mux.mux(&taps);
            let out_stream = to_edge_stream(&out, 0.0, rate_ui);
            delays.push(
                vardelay_measure::mean_delay(&stream, &out_stream)
                    .unwrap()
                    .as_ps(),
            );
        }
        for tap in 1..4 {
            let step = delays[tap] - delays[tap - 1];
            assert!((step - 33.0).abs() < 1.0, "step {step}");
        }
    }

    #[test]
    fn out_of_range_select_is_an_error() {
        let mut mux = Mux4::new(quiet(), 1);
        assert_eq!(mux.select(4), Err(SelectTapError { index: 4 }));
        assert_eq!(mux.selected(), 0);
        assert!(mux.select(3).is_ok());
        assert_eq!(mux.selected(), 3);
    }

    #[test]
    fn crosstalk_perturbs_but_does_not_break() {
        let (stream, taps) = four_taps();
        let mut mux = Mux4::new(quiet(), 1).with_crosstalk(0.02);
        mux.select(0).unwrap();
        let out = mux.mux(&taps);
        let out_stream = to_edge_stream(&out, 0.0, BitRate::from_gbps(1.0).bit_period());
        assert_eq!(out_stream.len(), stream.len());
    }

    #[test]
    #[should_panic(expected = "four inputs")]
    fn input_count_enforced() {
        let (_, taps) = four_taps();
        let mut mux = Mux4::new(quiet(), 1);
        let _ = mux.mux(&taps[..3]);
    }
}
