//! A continuous-time linear equalizer (CTLE).
//!
//! The receiver-side peaking amplifier that undoes a lossy channel's
//! high-frequency roll-off: one zero below the Nyquist frequency lifts
//! the edges, two poles above it bound the gain. Pairing
//! [`crate::LossyChannel`] with a [`Ctle`] closes the loop on the
//! end-to-end link story: the delay circuit's jitter budget has to
//! survive the channel *and* the equalizer.

use crate::block::AnalogBlock;
use vardelay_units::Frequency;
use vardelay_waveform::{OnePole, Waveform};

/// A first-order-zero, two-pole peaking equalizer.
///
/// Transfer shape: `H(s) = g·(1 + s/ωz) / ((1 + s/ωp)²)` with DC gain `g`
/// and peaking `ωp/ωz` at mid-band.
///
/// # Examples
///
/// ```
/// use vardelay_analog::Ctle;
/// use vardelay_units::Frequency;
///
/// let eq = Ctle::new(Frequency::from_ghz(2.4), Frequency::from_ghz(6.5), 1.0);
/// assert!((eq.peaking_db() - 8.7).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ctle {
    zero: Frequency,
    pole: OnePole,
    pole_corner: Frequency,
    dc_gain: f64,
}

impl Ctle {
    /// Creates an equalizer with the given zero, pole corner and DC gain.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < zero < pole` and `dc_gain > 0`.
    pub fn new(zero: Frequency, pole: Frequency, dc_gain: f64) -> Self {
        assert!(zero > Frequency::ZERO, "zero must be positive");
        assert!(pole > zero, "pole must sit above the zero");
        assert!(dc_gain > 0.0, "DC gain must be positive");
        Ctle {
            zero,
            pole: OnePole::with_corner(pole),
            pole_corner: pole,
            dc_gain,
        }
    }

    /// An equalizer matched to [`crate::LossyChannel::backplane`] at
    /// 6.4 Gb/s: the ~4 dB of relative high-frequency deficit at the
    /// 3.2 GHz Nyquist tone calls for a zero near 2.4 GHz with poles at
    /// 6.5 GHz — over-peaking just re-closes the eye with overshoot.
    pub fn for_backplane() -> Self {
        Self::new(Frequency::from_ghz(2.4), Frequency::from_ghz(6.5), 1.0)
    }

    /// The zero frequency.
    pub fn zero(&self) -> Frequency {
        self.zero
    }

    /// The pole corner.
    pub fn pole(&self) -> Frequency {
        self.pole_corner
    }

    /// Mid-band peaking in dB, `20·log10(pole/zero)`.
    pub fn peaking_db(&self) -> f64 {
        20.0 * (self.pole_corner / self.zero).log10()
    }
}

impl AnalogBlock for Ctle {
    fn process(&mut self, input: &Waveform) -> Waveform {
        // y = g·(x + x'/ωz), then two poles. The derivative term is the
        // peaking path.
        let dt = input.dt().as_s();
        let inv_wz = 1.0 / (2.0 * core::f64::consts::PI * self.zero.as_hz());
        let samples = input.samples();
        let mut boosted = Vec::with_capacity(samples.len());
        let mut prev = samples.first().copied().unwrap_or(0.0);
        for &x in samples {
            let derivative = (x - prev) / dt;
            prev = x;
            boosted.push(self.dc_gain * (x + derivative * inv_wz));
        }
        let mut out = Waveform::new(input.t0(), input.dt(), boosted);
        self.pole.apply(&mut out);
        self.pole.apply(&mut out);
        out
    }

    fn name(&self) -> &str {
        "ctle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lossy::LossyChannel;
    use vardelay_measure::eye_metrics;
    use vardelay_siggen::{BitPattern, EdgeStream};
    use vardelay_units::{BitRate, Time};
    use vardelay_waveform::{EyeDiagram, RenderConfig};

    fn eye_of(wf: &Waveform, ui: Time) -> EyeDiagram {
        let mut eye = EyeDiagram::new(ui, 96, 48, 0.6);
        eye.add_waveform(wf);
        eye
    }

    #[test]
    fn reopens_a_backplane_eye() {
        let rate = BitRate::from_gbps(6.4);
        let stream = EdgeStream::nrz(&BitPattern::prbs7(1, 400), rate);
        let wf = Waveform::render(&stream, &RenderConfig::default_source());
        let mut channel = LossyChannel::backplane();
        let degraded = channel.process(&wf);
        let mut eq = Ctle::for_backplane();
        let equalized = eq.process(&degraded);

        let before = eye_metrics(&eye_of(&degraded, rate.bit_period())).expect("edges");
        let after = eye_metrics(&eye_of(&equalized, rate.bit_period())).expect("edges");
        // The CTLE widens the eye and cuts the ISI-driven crossing spread.
        assert!(
            after.width > before.width,
            "width {} -> {}",
            before.width,
            after.width
        );
        assert!(
            after.crossing_peak_to_peak < before.crossing_peak_to_peak,
            "pp {} -> {}",
            before.crossing_peak_to_peak,
            after.crossing_peak_to_peak
        );
    }

    #[test]
    fn dc_behaviour_is_unity_gain() {
        let mut eq = Ctle::new(Frequency::from_ghz(1.0), Frequency::from_ghz(10.0), 1.0);
        let wf = Waveform::new(Time::ZERO, Time::from_ps(1.0), vec![0.3; 2000]);
        let out = eq.process(&wf);
        assert!((out.samples()[1999] - 0.3).abs() < 1e-6);
    }

    #[test]
    fn peaking_figure() {
        let eq = Ctle::new(Frequency::from_ghz(1.0), Frequency::from_ghz(10.0), 1.0);
        assert!((eq.peaking_db() - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "above the zero")]
    fn inverted_corners_rejected() {
        let _ = Ctle::new(Frequency::from_ghz(10.0), Frequency::from_ghz(1.0), 1.0);
    }
}
