//! Composition of blocks into signal chains.

use crate::block::{AnalogBlock, EdgeTransform};
use vardelay_siggen::EdgeStream;
use vardelay_waveform::Waveform;

/// An ordered chain of waveform-domain blocks processed front to back.
///
/// # Examples
///
/// ```
/// use vardelay_analog::{Chain, TransmissionLine};
/// use vardelay_units::Time;
///
/// let chain = Chain::new("taps")
///     .with(TransmissionLine::new(Time::from_ps(33.0)))
///     .with(TransmissionLine::new(Time::from_ps(33.0)));
/// assert_eq!(chain.len(), 2);
/// ```
pub struct Chain {
    blocks: Vec<Box<dyn AnalogBlock + Send>>,
    label: String,
}

impl Chain {
    /// Creates an empty chain.
    pub fn new(label: &str) -> Self {
        Chain {
            blocks: Vec::new(),
            label: label.to_owned(),
        }
    }

    /// Appends a block, builder style.
    pub fn with<B: AnalogBlock + Send + 'static>(mut self, block: B) -> Self {
        self.blocks.push(Box::new(block));
        self
    }

    /// Appends a boxed block.
    pub fn push(&mut self, block: Box<dyn AnalogBlock + Send>) {
        self.blocks.push(block);
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` if the chain holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block names, front to back.
    pub fn block_names(&self) -> Vec<&str> {
        self.blocks.iter().map(|b| b.name()).collect()
    }
}

impl core::fmt::Debug for Chain {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Chain")
            .field("label", &self.label)
            .field("blocks", &self.block_names())
            .finish()
    }
}

impl AnalogBlock for Chain {
    fn process(&mut self, input: &Waveform) -> Waveform {
        // Feed `input` to the first block directly (no defensive copy),
        // then recycle each intermediate trace's buffer as soon as the
        // next block has consumed it — steady state is zero allocations
        // per stage.
        let mut iter = self.blocks.iter_mut();
        let Some(first) = iter.next() else {
            return input.clone();
        };
        let mut wf = first.process(input);
        for block in iter {
            let next = block.process(&wf);
            vardelay_waveform::pool::recycle(core::mem::replace(&mut wf, next).into_samples());
        }
        wf
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// An ordered chain of edge-domain blocks processed front to back.
pub struct EdgeChain {
    blocks: Vec<Box<dyn EdgeTransform + Send>>,
    label: String,
}

impl EdgeChain {
    /// Creates an empty chain.
    pub fn new(label: &str) -> Self {
        EdgeChain {
            blocks: Vec::new(),
            label: label.to_owned(),
        }
    }

    /// Appends a block, builder style.
    pub fn with<B: EdgeTransform + Send + 'static>(mut self, block: B) -> Self {
        self.blocks.push(Box::new(block));
        self
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` if the chain holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

impl core::fmt::Debug for EdgeChain {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EdgeChain")
            .field("label", &self.label)
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

impl EdgeTransform for EdgeChain {
    fn transform(&mut self, input: &EdgeStream) -> EdgeStream {
        let mut s = input.clone();
        for block in &mut self.blocks {
            s = block.transform(&s);
        }
        s
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tline::TransmissionLine;
    use vardelay_siggen::BitPattern;
    use vardelay_units::{BitRate, Time};
    use vardelay_waveform::RenderConfig;

    #[test]
    fn chain_composes_delays() {
        let stream = EdgeStream::nrz(&BitPattern::clock(8), BitRate::from_gbps(1.0));
        let wf = Waveform::render(&stream, &RenderConfig::default_source());
        let mut chain = Chain::new("two-lines")
            .with(TransmissionLine::new(Time::from_ps(10.0)))
            .with(TransmissionLine::new(Time::from_ps(23.0)));
        let out = chain.process(&wf);
        assert!((out.t0() - wf.t0() - Time::from_ps(33.0)).abs() < Time::from_fs(1.0));
        assert_eq!(chain.block_names(), vec!["tline-10ps", "tline-23ps"]);
    }

    #[test]
    fn edge_chain_composes_delays() {
        let stream = EdgeStream::nrz(&BitPattern::clock(8), BitRate::from_gbps(1.0));
        let mut chain = EdgeChain::new("two-lines")
            .with(TransmissionLine::new(Time::from_ps(10.0)))
            .with(TransmissionLine::new(Time::from_ps(23.0)));
        let out = chain.transform(&stream);
        let d = vardelay_measure::mean_delay(&stream, &out).unwrap();
        assert!((d.as_ps() - 33.0).abs() < 1e-9);
    }

    #[test]
    fn empty_chain_is_identity() {
        let stream = EdgeStream::nrz(&BitPattern::clock(4), BitRate::from_gbps(1.0));
        let wf = Waveform::render(&stream, &RenderConfig::default_source());
        let mut chain = Chain::new("empty");
        assert!(chain.is_empty());
        assert_eq!(chain.process(&wf), wf);
    }
}
