//! A lossy interconnect channel: the PCB trace / cable between the delay
//! circuit and the DUT.
//!
//! Modeled as bulk delay + flat (DC) loss + a two-pole high-frequency
//! roll-off approximating skin effect and dielectric loss. Unlike the
//! controlled-length [`crate::TransmissionLine`] taps, a lossy channel
//! visibly closes the eye and adds inter-symbol interference, which is
//! what makes deskew margins matter at the DUT end.

use crate::block::AnalogBlock;
use vardelay_units::{Frequency, Time};
use vardelay_waveform::{OnePole, Waveform};

/// A lossy differential interconnect.
///
/// # Examples
///
/// ```
/// use vardelay_analog::LossyChannel;
/// use vardelay_units::{Frequency, Time};
///
/// // ~25 cm of FR-4: 1.5 ns of flight, 2 dB flat loss, 9 GHz roll-off.
/// let ch = LossyChannel::new(Time::from_ns(1.5), 2.0, Frequency::from_ghz(9.0));
/// assert!((ch.flight_time().as_ns() - 1.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LossyChannel {
    flight_time: Time,
    dc_loss_db: f64,
    pole: OnePole,
    label: String,
}

impl LossyChannel {
    /// Creates a channel with the given flight time, flat loss in dB and
    /// the corner of its two-pole high-frequency roll-off.
    ///
    /// # Panics
    ///
    /// Panics if the flight time or loss is negative.
    pub fn new(flight_time: Time, dc_loss_db: f64, corner: Frequency) -> Self {
        assert!(
            flight_time >= Time::ZERO,
            "flight time must be non-negative"
        );
        assert!(dc_loss_db >= 0.0, "loss must be non-negative");
        LossyChannel {
            flight_time,
            dc_loss_db,
            pole: OnePole::with_corner(corner),
            label: format!("channel-{:.1}dB", dc_loss_db),
        }
    }

    /// A short, clean test-fixture path: 300 ps, 0.5 dB, 25 GHz.
    pub fn fixture() -> Self {
        Self::new(Time::from_ps(300.0), 0.5, Frequency::from_ghz(25.0))
    }

    /// A long, lossy backplane-class path: 2 ns, 6 dB, 4 GHz.
    pub fn backplane() -> Self {
        Self::new(Time::from_ns(2.0), 6.0, Frequency::from_ghz(4.0))
    }

    /// The bulk flight time.
    pub fn flight_time(&self) -> Time {
        self.flight_time
    }

    /// The flat loss in dB.
    pub fn dc_loss_db(&self) -> f64 {
        self.dc_loss_db
    }

    /// The flat-loss amplitude factor.
    pub fn dc_gain(&self) -> f64 {
        10f64.powf(-self.dc_loss_db / 20.0)
    }
}

impl AnalogBlock for LossyChannel {
    fn process(&mut self, input: &Waveform) -> Waveform {
        let mut out = input.delayed(self.flight_time);
        out.scale(self.dc_gain());
        // Two cascaded identical poles approximate the gradual skin-effect
        // roll-off better than a single pole.
        self.pole.apply(&mut out);
        self.pole.apply(&mut out);
        out
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_siggen::{BitPattern, EdgeStream};
    use vardelay_units::BitRate;
    use vardelay_waveform::{EyeDiagram, RenderConfig};

    fn eye_through(channel: &mut LossyChannel, rate_gbps: f64) -> EyeDiagram {
        let rate = BitRate::from_gbps(rate_gbps);
        let stream = EdgeStream::nrz(&BitPattern::prbs7(1, 400), rate);
        let wf = Waveform::render(&stream, &RenderConfig::default_source());
        let out = channel.process(&wf);
        let mut eye = EyeDiagram::new(rate.bit_period(), 96, 48, 0.5);
        eye.add_waveform(&out);
        eye
    }

    #[test]
    fn dc_gain_conversion() {
        let ch = LossyChannel::new(Time::ZERO, 6.0, Frequency::from_ghz(10.0));
        assert!((ch.dc_gain() - 0.501).abs() < 0.001);
    }

    #[test]
    fn backplane_closes_the_eye_more_than_the_fixture() {
        let fixture_eye = eye_through(&mut LossyChannel::fixture(), 6.4);
        let backplane_eye = eye_through(&mut LossyChannel::backplane(), 6.4);
        let f = vardelay_measure::eye_metrics(&fixture_eye).expect("open eye");
        let b = vardelay_measure::eye_metrics(&backplane_eye).expect("edges exist");
        assert!(b.height < f.height, "{} vs {}", b.height, f.height);
        assert!(b.width < f.width, "{} vs {}", b.width, f.width);
    }

    #[test]
    fn channel_adds_deterministic_jitter() {
        // ISI from the band-limited channel shows up as crossing spread on
        // PRBS data even with zero input jitter.
        let eye = eye_through(&mut LossyChannel::backplane(), 6.4);
        let pp = eye.crossing_peak_to_peak().expect("edges exist");
        assert!(pp > Time::from_ps(2.0), "no ISI: {pp}");
    }

    #[test]
    fn flight_time_shifts_the_output() {
        let mut ch = LossyChannel::new(Time::from_ps(500.0), 0.0, Frequency::from_ghz(50.0));
        let wf = Waveform::zeros(Time::ZERO, Time::from_ps(1.0), 8);
        let out = ch.process(&wf);
        assert!((out.t0().as_ps() - 500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_loss_rejected() {
        let _ = LossyChannel::new(Time::ZERO, -1.0, Frequency::from_ghz(1.0));
    }
}
