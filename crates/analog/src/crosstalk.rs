//! Aggressor-to-victim crosstalk coupling.
//!
//! Adjacent channels in a cable bundle or under-DIB flex couple
//! capacitively: the victim picks up the *derivative* of the aggressor
//! (near-end crosstalk's characteristic shape). For the deskew
//! application this matters because all eight channels toggle
//! simultaneously — the coupling converts neighbour edges into victim
//! timing noise.

use vardelay_units::Time;
use vardelay_waveform::Waveform;

/// A capacitive (derivative) coupling path from one aggressor to a victim.
///
/// # Examples
///
/// ```
/// use vardelay_analog::CrosstalkCoupling;
/// use vardelay_units::Time;
///
/// let xtalk = CrosstalkCoupling::new(0.03, Time::from_ps(25.0));
/// assert!((xtalk.coupling() - 0.03).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrosstalkCoupling {
    coupling: f64,
    /// Differentiation time scale: the victim sees
    /// `coupling · τ · d(aggressor)/dt`.
    tau: Time,
}

impl CrosstalkCoupling {
    /// Creates a coupling path with the given strength (fraction of the
    /// aggressor's slew picked up, typical 0.01–0.05) and time scale.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= coupling < 1` and `tau > 0`.
    pub fn new(coupling: f64, tau: Time) -> Self {
        assert!((0.0..1.0).contains(&coupling), "coupling must be in [0, 1)");
        assert!(tau > Time::ZERO, "coupling time scale must be positive");
        CrosstalkCoupling { coupling, tau }
    }

    /// The coupling strength.
    pub fn coupling(&self) -> f64 {
        self.coupling
    }

    /// Adds the aggressor's coupled noise onto the victim, resampling the
    /// aggressor onto the victim's grid.
    pub fn couple_into(&self, victim: &mut Waveform, aggressor: &Waveform) {
        if self.coupling == 0.0 {
            return;
        }
        let dt = victim.dt();
        let k = self.coupling * (self.tau / dt);
        let n = victim.len();
        let mut noise = Vec::with_capacity(n);
        let mut prev = aggressor.value_at(victim.time_of(0) - dt);
        for i in 0..n {
            let a = aggressor.value_at(victim.time_of(i));
            noise.push(k * (a - prev));
            prev = a;
        }
        for (s, x) in victim.samples_mut().iter_mut().zip(noise) {
            *s += x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_measure::{tie_sequence, JitterStats};
    use vardelay_siggen::{BitPattern, EdgeStream};
    use vardelay_units::BitRate;
    use vardelay_waveform::{to_edge_stream, RenderConfig};

    fn wave(seed: u64, bits: usize) -> Waveform {
        let stream = EdgeStream::nrz(&BitPattern::prbs7(seed, bits), BitRate::from_gbps(6.4));
        Waveform::render(&stream, &RenderConfig::default_source())
    }

    #[test]
    fn quiet_aggressor_couples_nothing() {
        let mut victim = wave(1, 64);
        let reference = victim.clone();
        let flat = Waveform::new(victim.t0(), victim.dt(), vec![0.2; victim.len()]);
        CrosstalkCoupling::new(0.05, Time::from_ps(25.0)).couple_into(&mut victim, &flat);
        for (a, b) in victim.samples().iter().zip(reference.samples()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn coupling_injects_timing_noise() {
        let rate = BitRate::from_gbps(6.4);
        let mut victim = wave(1, 600);
        let aggressor = wave(77, 600); // different data, same bundle
        CrosstalkCoupling::new(0.04, Time::from_ps(25.0)).couple_into(&mut victim, &aggressor);

        let stream = to_edge_stream(&victim, 0.0, rate.bit_period());
        let tj = JitterStats::from_times(&tie_sequence(&stream))
            .expect("edges exist")
            .peak_to_peak;
        assert!(tj > Time::from_ps(1.0), "no crosstalk jitter: {tj}");
        assert!(tj < Time::from_ps(30.0), "implausible: {tj}");
    }

    #[test]
    fn stronger_coupling_means_more_jitter() {
        let rate = BitRate::from_gbps(6.4);
        let tj_at = |k: f64| {
            let mut victim = wave(1, 600);
            let aggressor = wave(77, 600);
            CrosstalkCoupling::new(k, Time::from_ps(25.0)).couple_into(&mut victim, &aggressor);
            let stream = to_edge_stream(&victim, 0.0, rate.bit_period());
            JitterStats::from_times(&tie_sequence(&stream))
                .expect("edges exist")
                .peak_to_peak
        };
        assert!(tj_at(0.06) > tj_at(0.02));
    }

    #[test]
    #[should_panic(expected = "[0, 1)")]
    fn coupling_strength_validated() {
        let _ = CrosstalkCoupling::new(1.5, Time::from_ps(10.0));
    }
}
