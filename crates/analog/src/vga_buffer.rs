//! The variable-gain buffer and the fixed output stage.

use crate::block::AnalogBlock;
use crate::buffer_core::{BufferCore, BufferCoreConfig};
use vardelay_units::{Time, Voltage};
use vardelay_waveform::Waveform;

/// Parameters of the variable-gain buffer: a [`BufferCoreConfig`] plus the
/// `Vctrl` → output-amplitude control characteristic.
///
/// The control law is a soft-saturating sigmoid between `amp_min` and
/// `amp_max` over the `vctrl_min..vctrl_max` span: approximately linear in
/// the mid-range with slope flattening near the extremes — the shape the
/// paper measures in Fig. 7.
#[derive(Debug, Clone, PartialEq)]
pub struct VgaBufferConfig {
    /// The shared buffer path parameters (swing is overridden by `Vctrl`).
    pub core: BufferCoreConfig,
    /// Output amplitude at the bottom of the control range (paper: 100 mV).
    pub amp_min: Voltage,
    /// Output amplitude at the top of the control range (paper: 750 mV).
    pub amp_max: Voltage,
    /// Bottom of the control-voltage range.
    pub vctrl_min: Voltage,
    /// Top of the control-voltage range (paper sweeps ≈1.5 V).
    pub vctrl_max: Voltage,
    /// Sigmoid sharpness of the control law; larger = harder saturation at
    /// the extremes. Typical: 5–7.
    pub control_sharpness: f64,
}

impl VgaBufferConfig {
    /// The paper-tuned variable-gain buffer: 100–750 mV swing over a
    /// 0–1.5 V control span, on the ECL-style core path.
    pub fn paper_default() -> Self {
        VgaBufferConfig {
            core: BufferCoreConfig::ecl_default(),
            amp_min: Voltage::from_mv(100.0),
            amp_max: Voltage::from_mv(750.0),
            vctrl_min: Voltage::ZERO,
            vctrl_max: Voltage::from_v(1.5),
            control_sharpness: 6.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on non-positive amplitudes, inverted ranges or a
    /// non-positive sharpness.
    pub fn validate(&self) {
        self.core.validate();
        assert!(
            Voltage::ZERO < self.amp_min && self.amp_min < self.amp_max,
            "amplitude range must satisfy 0 < amp_min < amp_max"
        );
        assert!(
            self.vctrl_min < self.vctrl_max,
            "control range must be non-empty"
        );
        assert!(
            self.control_sharpness > 0.0,
            "control sharpness must be positive"
        );
    }

    /// The output amplitude programmed by `vctrl` (clamped to the control
    /// range).
    pub fn amplitude_for(&self, vctrl: Voltage) -> Voltage {
        let x = ((vctrl - self.vctrl_min) / (self.vctrl_max - self.vctrl_min)).clamp(0.0, 1.0);
        let k = self.control_sharpness;
        let sig = |t: f64| 1.0 / (1.0 + (-t).exp());
        // Normalized sigmoid pinned to 0 at x=0 and 1 at x=1.
        let lo = sig(-k / 2.0);
        let hi = sig(k / 2.0);
        let f = (sig(k * (x - 0.5)) - lo) / (hi - lo);
        self.amp_min.lerp(self.amp_max, f)
    }
}

/// A variable-gain (variable-output-amplitude) differential buffer — the
/// paper's fine-delay element.
///
/// Adjusting `Vctrl` changes the programmed output swing, and because the
/// output path has a finite slew rate, the 50 % crossing moves by roughly
/// `ΔA/(2·SR)` ≈ 10 ps across the full control range (paper §2).
///
/// # Examples
///
/// ```
/// use vardelay_analog::{VgaBuffer, VgaBufferConfig};
/// use vardelay_units::Voltage;
///
/// let mut buf = VgaBuffer::new(VgaBufferConfig::paper_default(), 1);
/// buf.set_vctrl(Voltage::from_v(0.75));
/// let mid = buf.amplitude();
/// buf.set_vctrl(Voltage::from_v(1.5));
/// assert!(buf.amplitude() > mid);
/// ```
#[derive(Debug, Clone)]
pub struct VgaBuffer {
    config: VgaBufferConfig,
    core: BufferCore,
    vctrl: Voltage,
}

impl VgaBuffer {
    /// Creates a buffer with the mid-range control voltage applied.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: VgaBufferConfig, seed: u64) -> Self {
        config.validate();
        let core = BufferCore::new("vga", config.core.clone(), seed);
        let mid = config.vctrl_min.lerp(config.vctrl_max, 0.5);
        let mut buf = VgaBuffer {
            config,
            core,
            vctrl: mid,
        };
        buf.set_vctrl(mid);
        buf
    }

    /// The configuration.
    pub fn config(&self) -> &VgaBufferConfig {
        &self.config
    }

    /// Currently applied control voltage.
    pub fn vctrl(&self) -> Voltage {
        self.vctrl
    }

    /// Applies a control voltage (clamped into the control range) and
    /// retunes the output amplitude.
    pub fn set_vctrl(&mut self, vctrl: Voltage) {
        self.vctrl = vctrl.clamp(self.config.vctrl_min, self.config.vctrl_max);
        self.core
            .set_amplitude(self.config.amplitude_for(self.vctrl));
    }

    /// Currently programmed output amplitude.
    pub fn amplitude(&self) -> Voltage {
        self.core.amplitude()
    }

    /// Processes with a time-varying control voltage: `vctrl` is a
    /// voltage trace sampled onto the input grid; each sample is mapped
    /// through the control law to an instantaneous output amplitude.
    /// This is the waveform-domain jitter-injection path (paper §5).
    pub fn process_modulated(&mut self, input: &Waveform, vctrl: &Waveform) -> Waveform {
        let amp_samples: Vec<f64> = (0..input.len())
            .map(|i| {
                let v = Voltage::from_v(vctrl.value_at(input.time_of(i)));
                self.config.amplitude_for(v).as_v()
            })
            .collect();
        let amp = Waveform::new(input.t0(), input.dt(), amp_samples);
        self.core.process_modulated(input, &amp)
    }
}

impl AnalogBlock for VgaBuffer {
    fn process(&mut self, input: &Waveform) -> Waveform {
        self.core.process(input)
    }

    fn name(&self) -> &str {
        "vga"
    }
}

/// A fixed-swing limiting buffer — the output stage that recovers full
/// logic amplitude after the variable-gain cascade (paper Fig. 3).
#[derive(Debug, Clone)]
pub struct LimitingBuffer {
    core: BufferCore,
}

impl LimitingBuffer {
    /// Creates an output stage with the given path parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: BufferCoreConfig, seed: u64) -> Self {
        LimitingBuffer {
            core: BufferCore::new("output-stage", config, seed),
        }
    }

    /// Creates the default ECL-style output stage.
    pub fn ecl(seed: u64) -> Self {
        Self::new(BufferCoreConfig::ecl_default(), seed)
    }

    /// Fixed propagation delay of the stage.
    pub fn prop_delay(&self) -> Time {
        self.core.config().prop_delay
    }
}

impl AnalogBlock for LimitingBuffer {
    fn process(&mut self, input: &Waveform) -> Waveform {
        self.core.process(input)
    }

    fn name(&self) -> &str {
        "output-stage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_measure::mean_delay;
    use vardelay_siggen::{BitPattern, EdgeStream};
    use vardelay_units::BitRate;
    use vardelay_waveform::{to_edge_stream, RenderConfig};

    #[test]
    fn control_law_endpoints_and_monotonicity() {
        let cfg = VgaBufferConfig::paper_default();
        let at = |v: f64| cfg.amplitude_for(Voltage::from_v(v)).as_mv();
        assert!((at(0.0) - 100.0).abs() < 1e-6);
        assert!((at(1.5) - 750.0).abs() < 1e-6);
        let mut prev = at(0.0);
        for i in 1..=30 {
            let a = at(1.5 * i as f64 / 30.0);
            assert!(a >= prev, "control law not monotone at step {i}");
            prev = a;
        }
        // Clamping outside the range.
        assert!((at(-1.0) - 100.0).abs() < 1e-6);
        assert!((at(9.0) - 750.0).abs() < 1e-6);
    }

    #[test]
    fn control_law_flattens_at_extremes() {
        let cfg = VgaBufferConfig::paper_default();
        let at = |v: f64| cfg.amplitude_for(Voltage::from_v(v)).as_mv();
        let slope_mid = at(0.80) - at(0.70);
        let slope_edge = at(1.50) - at(1.40);
        assert!(
            slope_mid > 2.0 * slope_edge,
            "mid {slope_mid} vs edge {slope_edge}"
        );
    }

    #[test]
    fn vctrl_sweep_moves_delay_monotonically() {
        let mut cfg = VgaBufferConfig::paper_default();
        cfg.core.noise_rms = Voltage::ZERO;
        let rate = BitRate::from_gbps(1.0);
        let stream = EdgeStream::nrz(&BitPattern::clock(16), rate);
        let wf = Waveform::render(&stream, &RenderConfig::default_source());

        let mut prev: Option<Time> = None;
        for i in 0..=6 {
            let mut buf = VgaBuffer::new(cfg.clone(), 1);
            buf.set_vctrl(Voltage::from_v(1.5 * i as f64 / 6.0));
            let out = buf.process(&wf);
            let d = mean_delay(&stream, &to_edge_stream(&out, 0.0, rate.bit_period())).unwrap();
            if let Some(p) = prev {
                assert!(
                    d >= p - Time::from_fs(200.0),
                    "delay not monotone: {d} < {p}"
                );
            }
            prev = Some(d);
        }
    }

    #[test]
    fn output_stage_restores_full_swing() {
        // A 100 mV intermediate signal must come back to ~800 mV.
        let mut cfg = VgaBufferConfig::paper_default();
        cfg.core.noise_rms = Voltage::ZERO;
        let rate = BitRate::from_gbps(1.0);
        let stream = EdgeStream::nrz(&BitPattern::clock(12), rate);
        let wf = Waveform::render(&stream, &RenderConfig::default_source());

        let mut vga = VgaBuffer::new(cfg, 1);
        vga.set_vctrl(Voltage::ZERO); // 100 mV swing
        let small = vga.process(&wf);
        assert!(small.peak() < 0.08); // ±50 mV rails, pole-settled

        let mut cfg_out = BufferCoreConfig::ecl_default();
        cfg_out.noise_rms = Voltage::ZERO;
        let mut out_stage = LimitingBuffer::new(cfg_out, 2);
        let restored = out_stage.process(&small);
        assert!(restored.peak() > 0.35, "peak {}", restored.peak());
    }

    #[test]
    #[should_panic(expected = "amp_min < amp_max")]
    fn config_validates_amplitude_order() {
        let mut cfg = VgaBufferConfig::paper_default();
        cfg.amp_max = Voltage::from_mv(50.0);
        let _ = VgaBuffer::new(cfg, 1);
    }
}
