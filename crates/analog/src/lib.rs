//! Behavioral analog block library.
//!
//! The paper's delay circuit is built from seven active components: four
//! variable-gain buffers, an output stage, a 1:4 fanout buffer and a 4:1
//! multiplexer, plus four controlled-length transmission lines. This crate
//! models each of them behaviorally in two domains:
//!
//! * **Waveform domain** ([`AnalogBlock`]): blocks transform sampled
//!   differential traces through a limiting amplifier → slew limiter →
//!   one-pole bandwidth path. The paper's central effect — propagation
//!   delay that grows with programmed output amplitude because a bigger
//!   swing takes `A/(2·SR)` longer to cross the 50 % threshold — *emerges*
//!   from this signal path rather than being table-driven (paper Figs. 4–5).
//! * **Edge domain** ([`EdgeTransform`]): a fast path for long captures.
//!   [`characterize`] builds a delay-vs-(Vctrl, preceding-interval) lookup
//!   table *by measuring the waveform model*, exactly the way one would
//!   characterize the physical prototype on a bench; the table then drives
//!   a per-edge model that reproduces amplitude- and frequency-dependent
//!   delay plus data-dependent jitter at a fraction of the cost.
//!
//! Blocks:
//!
//! * [`VgaBuffer`] — the variable-gain buffer (100–750 mV swing).
//! * [`LimitingBuffer`] — the fixed-swing output/recovery stage.
//! * [`FanoutBuffer`] — 1:4 copy with per-output skew.
//! * [`Mux4`] — the 4:1 tap selector.
//! * [`TransmissionLine`] — controlled-length differential pair.
//! * [`AcCoupling`], [`OuNoise`] — the jitter-injection path onto `Vctrl`.

pub mod block;
pub mod buffer_core;
pub mod chain;
pub mod characterize;
pub mod coupling;
pub mod crosstalk;
pub mod ctle;
pub mod deemphasis;
pub mod fanout;
pub mod fingerprint;
pub mod lossy;
pub mod mux;
pub mod noise;
pub mod tline;
pub mod vga_buffer;

pub use block::{AnalogBlock, EdgeTransform};
pub use buffer_core::{BufferCore, BufferCoreConfig};
pub use chain::{Chain, EdgeChain};
pub use characterize::{
    characterization_cache_stats, characterization_single_flight_waits,
    clear_characterization_cache, measure_delay_table, measure_delay_table_cached,
    measure_delay_table_cached_with, measure_delay_table_with, try_measure_delay_table,
    try_measure_delay_table_with, CharacterizeError, CharacterizedDelay, DelayTable,
};
pub use coupling::AcCoupling;
pub use crosstalk::CrosstalkCoupling;
pub use ctle::Ctle;
pub use deemphasis::DeEmphasis;
pub use fanout::FanoutBuffer;
pub use fingerprint::Fingerprint;
pub use lossy::LossyChannel;
pub use mux::{Mux4, SelectTapError};
pub use noise::OuNoise;
pub use tline::TransmissionLine;
pub use vga_buffer::{LimitingBuffer, VgaBuffer, VgaBufferConfig};
