//! Controlled-length differential transmission-line segments.

use crate::block::{AnalogBlock, EdgeTransform};
use vardelay_siggen::EdgeStream;
use vardelay_units::{Frequency, Time};
use vardelay_waveform::{OnePole, Waveform};

/// A passive differential transmission line with a controlled propagation
/// delay, flat attenuation, and optional first-order dispersion — the
/// element that realizes the coarse 0/33/66/99 ps taps (paper §3).
///
/// # Examples
///
/// ```
/// use vardelay_analog::TransmissionLine;
/// use vardelay_units::Time;
///
/// let line = TransmissionLine::new(Time::from_ps(33.0));
/// assert!((line.delay().as_ps() - 33.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransmissionLine {
    delay: Time,
    /// Linear amplitude factor (1.0 = lossless).
    attenuation: f64,
    /// Optional skin-effect-style dispersion pole.
    dispersion: Option<OnePole>,
    label: String,
}

impl TransmissionLine {
    /// Creates a lossless, dispersionless line with the given delay.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative.
    pub fn new(delay: Time) -> Self {
        assert!(delay >= Time::ZERO, "line delay must be non-negative");
        TransmissionLine {
            delay,
            attenuation: 1.0,
            dispersion: None,
            label: format!("tline-{:.0}ps", delay.as_ps()),
        }
    }

    /// Adds flat attenuation, builder style.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn with_attenuation(mut self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "attenuation factor must be in (0, 1]"
        );
        self.attenuation = factor;
        self
    }

    /// Adds a first-order dispersion pole, builder style. Longer physical
    /// lines get lower corners; the coarse-tap model uses this to make the
    /// 99 ps tap slightly slower-edged than the 0 ps tap.
    pub fn with_dispersion(mut self, corner: Frequency) -> Self {
        self.dispersion = Some(OnePole::with_corner(corner));
        self
    }

    /// The propagation delay.
    pub fn delay(&self) -> Time {
        self.delay
    }

    /// The flat attenuation factor.
    pub fn attenuation(&self) -> f64 {
        self.attenuation
    }
}

impl AnalogBlock for TransmissionLine {
    fn process(&mut self, input: &Waveform) -> Waveform {
        let mut out = input.delayed(self.delay);
        if self.attenuation != 1.0 {
            out.scale(self.attenuation);
        }
        if let Some(pole) = self.dispersion {
            pole.apply(&mut out);
        }
        out
    }

    fn name(&self) -> &str {
        &self.label
    }
}

impl EdgeTransform for TransmissionLine {
    fn transform(&mut self, input: &EdgeStream) -> EdgeStream {
        // A passive line shifts crossings by its delay. Dispersion widens
        // edges but moves the 50 % point only marginally; the edge-domain
        // model treats the line as a pure delay.
        input.delayed(self.delay)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vardelay_siggen::BitPattern;
    use vardelay_units::{BitRate, Voltage};
    use vardelay_waveform::{crossings, RenderConfig};

    fn test_wave() -> (EdgeStream, Waveform) {
        let stream = EdgeStream::nrz(&BitPattern::clock(8), BitRate::from_gbps(1.0));
        let cfg = RenderConfig::new(
            Time::from_ps(0.5),
            Voltage::from_mv(800.0),
            Time::from_ps(30.0),
        );
        let wf = Waveform::render(&stream, &cfg);
        (stream, wf)
    }

    #[test]
    fn pure_delay_shifts_crossings() {
        let (stream, wf) = test_wave();
        let mut line = TransmissionLine::new(Time::from_ps(33.0));
        let out = line.process(&wf);
        let xs = crossings(&out, 0.0);
        assert_eq!(xs.len(), stream.len());
        let shift = xs[0].time - stream.edges()[0].time;
        assert!((shift.as_ps() - 33.0).abs() < 0.6, "shift {shift}");
    }

    #[test]
    fn attenuation_scales_amplitude() {
        let (_, wf) = test_wave();
        let mut line = TransmissionLine::new(Time::ZERO).with_attenuation(0.5);
        let out = line.process(&wf);
        assert!((out.peak() - wf.peak() * 0.5).abs() < 1e-9);
    }

    #[test]
    fn dispersion_slows_edges_but_keeps_midpoint() {
        let (stream, wf) = test_wave();
        let mut line =
            TransmissionLine::new(Time::from_ps(10.0)).with_dispersion(Frequency::from_ghz(8.0));
        let out = line.process(&wf);
        let xs = crossings(&out, 0.0);
        assert_eq!(xs.len(), stream.len());
        // The pole adds its own group delay on top of the line delay.
        let shift = (xs[2].time - stream.edges()[2].time).as_ps();
        assert!(shift > 10.0 && shift < 45.0, "shift {shift}");
    }

    #[test]
    fn edge_domain_matches_delay() {
        let (stream, _) = test_wave();
        let mut line = TransmissionLine::new(Time::from_ps(66.0));
        let out = EdgeTransform::transform(&mut line, &stream);
        let d = vardelay_measure::mean_delay(&stream, &out).unwrap();
        assert!((d.as_ps() - 66.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delay_rejected() {
        let _ = TransmissionLine::new(Time::from_ps(-1.0));
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn attenuation_validated() {
        let _ = TransmissionLine::new(Time::ZERO).with_attenuation(1.5);
    }
}
