//! Band-limited Gaussian noise sources.
//!
//! The jitter-injection experiment AC-couples "900 mV (peak-to-peak)
//! Gaussian voltage noise" from an external generator onto `Vctrl`
//! (paper §5). [`OuNoise`] models such a generator as an
//! Ornstein–Uhlenbeck (Gauss–Markov) process: stationary Gaussian noise
//! with an exponential autocorrelation set by the generator's bandwidth.
//! It can be sampled at arbitrary instants, which lets the waveform and
//! edge engines share one noise model.

use vardelay_siggen::SplitMix64;
use vardelay_units::{Frequency, Time, Voltage};
use vardelay_waveform::Waveform;

/// Crest factor used to convert a generator's "peak-to-peak" rating to an
/// RMS value: `Vpp ≈ 6·σ` covers 99.7 % of Gaussian excursions, the usual
/// lab convention.
pub const GAUSSIAN_PP_PER_SIGMA: f64 = 6.0;

/// A stationary band-limited Gaussian noise source.
///
/// # Examples
///
/// ```
/// use vardelay_analog::OuNoise;
/// use vardelay_units::{Frequency, Time, Voltage};
///
/// let mut noise = OuNoise::from_peak_to_peak(
///     Voltage::from_mv(900.0),
///     Frequency::from_mhz(500.0),
///     42,
/// );
/// let v0 = noise.advance(Time::from_ps(100.0));
/// let v1 = noise.advance(Time::from_ps(100.0));
/// assert!(v0.as_v().is_finite() && v1.as_v().is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct OuNoise {
    sigma: Voltage,
    tau: Time,
    state: f64,
    rng: SplitMix64,
}

impl OuNoise {
    /// Creates a source with RMS value `sigma` and autocorrelation time
    /// constant set by `bandwidth` (one-pole equivalent).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or `bandwidth` non-positive.
    pub fn new(sigma: Voltage, bandwidth: Frequency, seed: u64) -> Self {
        assert!(sigma >= Voltage::ZERO, "noise RMS must be non-negative");
        assert!(
            bandwidth > Frequency::ZERO,
            "noise bandwidth must be positive"
        );
        let mut rng = SplitMix64::new(seed);
        let state = rng.gaussian() * sigma.as_v(); // start in stationarity
        OuNoise {
            sigma,
            tau: bandwidth.one_pole_tau(),
            state,
            rng,
        }
    }

    /// Creates a source from a generator-style peak-to-peak rating
    /// (`Vpp = 6·σ`, see [`GAUSSIAN_PP_PER_SIGMA`]).
    pub fn from_peak_to_peak(vpp: Voltage, bandwidth: Frequency, seed: u64) -> Self {
        Self::new(vpp / GAUSSIAN_PP_PER_SIGMA, bandwidth, seed)
    }

    /// The RMS value.
    pub fn sigma(&self) -> Voltage {
        self.sigma
    }

    /// The autocorrelation time constant.
    pub fn tau(&self) -> Time {
        self.tau
    }

    /// Advances the process by `dt` and returns the new value. Exact
    /// discretization: stationary for any step size, so edge-domain models
    /// can sample at irregular edge spacings.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative.
    pub fn advance(&mut self, dt: Time) -> Voltage {
        assert!(dt >= Time::ZERO, "time must advance forward");
        let rho = (-(dt / self.tau)).exp();
        let innovation = self.sigma.as_v() * (1.0 - rho * rho).sqrt();
        self.state = rho * self.state + innovation * self.rng.gaussian();
        Voltage::from_v(self.state)
    }

    /// Generates a noise waveform of `n` samples spaced `dt` starting at
    /// `t0`.
    pub fn waveform(&mut self, t0: Time, dt: Time, n: usize) -> Waveform {
        let samples = (0..n).map(|_| self.advance(dt).as_v()).collect();
        Waveform::new(t0, dt, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_rms_matches_sigma() {
        let sigma = Voltage::from_mv(150.0);
        let mut n = OuNoise::new(sigma, Frequency::from_mhz(500.0), 3);
        let dt = Time::from_ps(500.0);
        let vals: Vec<f64> = (0..100_000).map(|_| n.advance(dt).as_v()).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let rms = (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt();
        assert!(mean.abs() < 0.005, "mean {mean}");
        assert!((rms - 0.15).abs() < 0.01, "rms {rms}");
    }

    #[test]
    fn correlation_decays_with_bandwidth() {
        // Samples 1 ps apart from a 100 MHz-bandwidth source are highly
        // correlated; 100 ns apart they are nearly independent.
        let mut n = OuNoise::new(Voltage::from_mv(100.0), Frequency::from_mhz(100.0), 5);
        let close: Vec<f64> = (0..5000)
            .map(|_| n.advance(Time::from_ps(1.0)).as_v())
            .collect();
        let mut diffs = 0.0;
        for w in close.windows(2) {
            diffs += (w[1] - w[0]).powi(2);
        }
        let step_rms = (diffs / (close.len() - 1) as f64).sqrt();
        assert!(step_rms < 0.01, "step rms {step_rms}"); // tiny steps

        let far: Vec<f64> = (0..5000)
            .map(|_| n.advance(Time::from_ns(100.0)).as_v())
            .collect();
        let mut fdiffs = 0.0;
        for w in far.windows(2) {
            fdiffs += (w[1] - w[0]).powi(2);
        }
        let far_rms = (fdiffs / (far.len() - 1) as f64).sqrt();
        // Independent samples: diff RMS ≈ sqrt(2)*sigma ≈ 0.141.
        assert!((far_rms - 0.141).abs() < 0.02, "far rms {far_rms}");
    }

    #[test]
    fn pp_rating_converts_to_sigma() {
        let n = OuNoise::from_peak_to_peak(Voltage::from_mv(900.0), Frequency::from_mhz(1.0), 1);
        assert!((n.sigma().as_mv() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn waveform_generation() {
        let mut n = OuNoise::new(Voltage::from_mv(50.0), Frequency::from_ghz(1.0), 9);
        let wf = n.waveform(Time::ZERO, Time::from_ps(1.0), 1000);
        assert_eq!(wf.len(), 1000);
        assert!(wf.peak() > 0.0);
    }

    #[test]
    fn zero_sigma_is_silent() {
        let mut n = OuNoise::new(Voltage::ZERO, Frequency::from_ghz(1.0), 2);
        for _ in 0..100 {
            assert_eq!(n.advance(Time::from_ps(10.0)).as_v(), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn negative_dt_rejected() {
        let mut n = OuNoise::new(Voltage::from_mv(1.0), Frequency::from_ghz(1.0), 1);
        let _ = n.advance(Time::from_ps(-1.0));
    }
}
